"""Hierarchical state management (paper Section 3.2).

Fine-grain precise local state per node, coarse-grain threshold-triggered
global state, and the rotating virtual-link aggregation role.
"""

from repro.state.aggregation import AggregationManager, RotationPolicy
from repro.state.global_state import GlobalStateManager
from repro.state.local_state import LocalStateError, LocalStateProvider, LocalStateView

__all__ = [
    "AggregationManager",
    "RotationPolicy",
    "GlobalStateManager",
    "LocalStateProvider",
    "LocalStateView",
    "LocalStateError",
]
