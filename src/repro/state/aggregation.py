"""Virtual-link state aggregation with a rotating aggregation node.

Section 3.2: "we select one node (e.g., the least loaded node) as the
aggregation node to calculate the states of all virtual links.  All other
nodes send significant QoS/resource state variations of their adjacent
overlay links to the aggregation node.  The aggregation node periodically
updates the global state with the states of all virtual links between all
pairs of nodes in the overlay mesh at large time interval (e.g., 10
minutes).  For load sharing, we switch the aggregation role among all
system nodes (e.g., round robin or least loaded first)."

:class:`AggregationManager` models the role and its costs.  The *content*
of the aggregation (bottleneck-over-stale-links) lives in
:meth:`GlobalStateManager.virtual_link_available_kbps`; what this class
adds is (a) which node currently carries the aggregation role, (b) the
periodic dissemination of the refreshed virtual-link table to every node —
counted as one message per receiving node — and (c) the two rotation
policies the paper names.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.state.global_state import GlobalStateManager
from repro.topology.overlay import OverlayNetwork


class RotationPolicy(enum.Enum):
    """How the aggregation role moves between nodes."""

    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"


def _load_fraction(network: OverlayNetwork, node_id: int) -> float:
    """A node's load as the max allocated fraction over resource dimensions."""
    node = network.node(node_id)
    worst = 0.0
    for allocated, capacity in zip(node.allocated.values, node.capacity.values):
        if capacity > 0:
            worst = max(worst, allocated / capacity)
    return worst


class AggregationManager:
    """The rotating virtual-link aggregation role."""

    def __init__(
        self,
        network: OverlayNetwork,
        global_state: GlobalStateManager,
        policy: RotationPolicy = RotationPolicy.ROUND_ROBIN,
        period_s: float = 600.0,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.network = network
        self.global_state = global_state
        self.policy = policy
        self.period_s = period_s
        self._aggregation_node_id = self._pick_next(None)
        #: messages spent disseminating the periodic virtual-link refresh
        self.broadcast_messages = 0
        #: how many aggregation rounds have run
        self.rounds = 0
        self._history: List[int] = [self._aggregation_node_id]

    @property
    def aggregation_node_id(self) -> int:
        return self._aggregation_node_id

    @property
    def history(self) -> List[int]:
        """Aggregation node ids in role order (diagnostics/tests)."""
        return list(self._history)

    def _pick_next(self, current: Optional[int]) -> int:
        if self.policy is RotationPolicy.ROUND_ROBIN:
            if current is None:
                return 0
            return (current + 1) % len(self.network)
        # least loaded first
        return min(
            range(len(self.network)),
            key=lambda node_id: (_load_fraction(self.network, node_id), node_id),
        )

    def run_round(self) -> int:
        """One periodic aggregation round.

        Recomputes the virtual-link table from reported overlay-link states
        (a no-op computationally here — the global state derives it on
        demand from the same reports) and disseminates it to every other
        node, then rotates the role.  Returns the messages this round cost.
        """
        messages = len(self.network) - 1  # table push to every other node
        self.broadcast_messages += messages
        self.rounds += 1
        self._aggregation_node_id = self._pick_next(self._aggregation_node_id)
        self._history.append(self._aggregation_node_id)
        return messages
