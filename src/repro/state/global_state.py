"""Coarse-grain global state maintenance (Section 3.2).

"The global state consists of: (1) the QoS and resource states of all
nodes, and (2) the QoS and resource states of all virtual links between all
pairs of nodes. ... For scalability, the global state update is performed
at a coarse-grain level.  The global state update is triggered only when
state variations on a node or an overlay link exceed a specified threshold."

:class:`GlobalStateManager` keeps *stale snapshots* of every node's
available resources and every overlay link's available bandwidth.  It
subscribes to entity change events and refreshes a snapshot — counting one
update message — only when the drift since the last report exceeds
``threshold_fraction`` of the metric's maximum value (the paper's
experiments use 10 %; its running examples are "100 KB of memory",
"200 kbps of bandwidth" absolute thresholds, which the fraction
generalises).

Virtual-link state is *derived*: overlay-link reports flow to the current
aggregation node (see ``repro.state.aggregation``), and the global view of
a virtual link's bandwidth is the bottleneck over the *stale* states of its
constituent overlay links — so a consumer of the global state sees exactly
the coarse-grain picture the paper describes, while live entities may have
drifted within the threshold.

Component QoS values are static in this system, so their global snapshot is
exact and free (the paper's QoS-state updates follow the same threshold
rule; with static QoS they simply never fire).
"""

from __future__ import annotations

import random
import sys
from typing import Dict, Iterable, Optional

import numpy as np

from repro.model.node import Node
from repro.model.resources import ResourceVector
from repro.topology.overlay import OverlayLink, OverlayNetwork


class GlobalStateManager:
    """Threshold-triggered coarse-grain snapshots of nodes and links.

    ``quantization_levels`` optionally coarsens the *values* as well as the
    update cadence: reported availabilities are rounded to one of L buckets
    of the entity's capacity.  This models a global state that carries
    coarse-grain summaries ("about half free") rather than exact figures;
    the state-granularity ablation sweeps it.  ``None`` reports exact
    values at threshold-triggered times.
    """

    def __init__(
        self,
        network: OverlayNetwork,
        threshold_fraction: float = 0.1,
        quantization_levels: Optional[int] = None,
    ) -> None:
        if not 0.0 <= threshold_fraction <= 1.0:
            raise ValueError(
                f"threshold_fraction must be in [0, 1], got {threshold_fraction}"
            )
        if quantization_levels is not None and quantization_levels < 1:
            raise ValueError(
                f"quantization_levels must be >= 1, got {quantization_levels}"
            )
        self.network = network
        self.threshold_fraction = threshold_fraction
        self.quantization_levels = quantization_levels
        self._closed = False
        #: messages spent on node state updates since construction
        self.node_update_messages = 0
        #: messages spent on overlay-link reports to the aggregation node
        self.link_update_messages = 0
        #: update messages the (lossy) management plane dropped; the
        #: snapshot they carried stays stale until the next drift trigger
        self.node_updates_lost = 0
        self.link_updates_lost = 0
        # state-update loss is off by default; see set_update_loss()
        self._update_loss_probability = 0.0
        self._loss_rng: Optional[random.Random] = None
        #: monotone epochs, bumped whenever a published snapshot changes;
        #: consumers (``repro.core.fastscore``) key derived caches on them
        self.node_version = 0
        self.link_version = 0

        self._node_snapshots: Dict[int, ResourceVector] = {}
        # link snapshots live in a dense array (link ids are dense 0..m-1)
        # so bulk consumers — the per-source bottleneck-bandwidth rows of
        # repro.core.fastscore — read the whole coarse-grain link state in
        # one vectorised gather
        self._link_snapshots = np.zeros(len(network.links))
        self._link_snapshot_view = self._link_snapshots.view()
        self._link_snapshot_view.setflags(write=False)
        # raw values at the last report: the threshold compares against
        # these, not the (possibly quantized) published snapshots, so value
        # quantization cannot re-trigger updates by itself
        self._node_reported: Dict[int, ResourceVector] = {}
        self._link_reported: Dict[int, float] = {}
        # per-dimension absolute thresholds derived from entity capacities
        self._node_thresholds: Dict[int, ResourceVector] = {}
        self._link_thresholds: Dict[int, float] = {}

        for node in network.nodes:
            self._node_snapshots[node.node_id] = self._quantize_node(node)
            self._node_reported[node.node_id] = node.available
            self._node_thresholds[node.node_id] = node.capacity.scaled(
                threshold_fraction
            )
            node.add_change_listener(self._on_node_change)
        for link in network.links:
            self._link_snapshots[link.link_id] = self._quantize_link(link)
            self._link_reported[link.link_id] = link.available_kbps
            self._link_thresholds[link.link_id] = (
                link.capacity_kbps * threshold_fraction
            )
            link.add_change_listener(self._on_link_change)

    def close(self) -> None:
        """Detach from the network's node/link change streams.

        A state manager observes every node and link; one that is replaced
        (fresh managers per experiment on a shared network) must deregister
        or the entities keep notifying — and referencing — the dead
        manager forever.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for node in self.network.nodes:
            node.remove_change_listener(self._on_node_change)
        for link in self.network.links:
            link.remove_change_listener(self._on_link_change)

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident bytes per state substructure.

        Dense link snapshots are exact ``nbytes``; the per-node dicts are
        ``sys.getsizeof`` estimates (container + vectors).  BENCH_scale
        uses this to attribute memory per subsystem.
        """
        node_state = 0
        for mapping in (
            self._node_snapshots,
            self._node_reported,
            self._node_thresholds,
        ):
            node_state += sys.getsizeof(mapping)
            for vector in mapping.values():
                node_state += sys.getsizeof(vector) + sys.getsizeof(vector.values)
        link_state = int(self._link_snapshots.nbytes)
        for link_mapping in (self._link_reported, self._link_thresholds):
            link_state += sys.getsizeof(link_mapping)
            link_state += 32 * len(link_mapping)  # float keys/values boxes
        footprint = {"node_state": int(node_state), "link_state": link_state}
        footprint["total"] = sum(footprint.values())
        return footprint

    # -- quantization -----------------------------------------------------------

    def _quantize_value(self, value: float, capacity: float) -> float:
        levels = self.quantization_levels
        if levels is None or capacity <= 0.0:
            return value
        bucket = round(value / capacity * levels)
        return min(capacity, max(0.0, bucket * capacity / levels))

    def _quantize_node(self, node: Node) -> ResourceVector:
        available = node.available
        if self.quantization_levels is None:
            return available
        return ResourceVector(
            available.schema,
            [
                self._quantize_value(value, cap)
                for value, cap in zip(available.values, node.capacity.values)
            ],
        )

    def _quantize_link(self, link: OverlayLink) -> float:
        return self._quantize_value(link.available_kbps, link.capacity_kbps)

    # -- update path ---------------------------------------------------------

    def set_update_loss(
        self, probability: float, rng: Optional[random.Random] = None
    ) -> None:
        """Make the management plane lossy: each triggered update message is
        dropped independently with ``probability``.

        A dropped update leaves both the published snapshot *and* the
        last-reported raw value untouched, so the entity keeps re-triggering
        at every subsequent drift event until a report gets through — the
        snapshot goes genuinely stale rather than merely
        threshold-quantised.  The loss draws come from a dedicated ``rng``
        stream (never a composer's), so enabling zero-probability loss
        changes nothing.
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"probability must be in [0, 1), got {probability}")
        self._update_loss_probability = probability
        if probability > 0.0:
            self._loss_rng = rng if rng is not None else random.Random(0)

    def _update_lost(self) -> bool:
        if self._update_loss_probability <= 0.0:
            return False
        assert self._loss_rng is not None
        return self._loss_rng.random() < self._update_loss_probability

    def _on_node_change(self, node: Node) -> None:
        reported = self._node_reported[node.node_id]
        threshold = self._node_thresholds[node.node_id]
        current = node.available
        drift_exceeds = any(
            abs(cur - rep) > thr
            for cur, rep, thr in zip(
                current.values, reported.values, threshold.values
            )
        )
        if drift_exceeds:
            if self._update_lost():
                self.node_updates_lost += 1
                return
            self._node_snapshots[node.node_id] = self._quantize_node(node)
            self._node_reported[node.node_id] = current
            self.node_update_messages += 1
            self.node_version += 1

    def _on_link_change(self, link: OverlayLink) -> None:
        reported = self._link_reported[link.link_id]
        if abs(link.available_kbps - reported) > self._link_thresholds[link.link_id]:
            if self._update_lost():
                self.link_updates_lost += 1
                return
            self._link_snapshots[link.link_id] = self._quantize_link(link)
            self._link_reported[link.link_id] = link.available_kbps
            self.link_update_messages += 1
            self.link_version += 1

    def force_refresh(self) -> None:
        """Snapshot everything (used by tests and by a fresh system)."""
        for node in self.network.nodes:
            self._node_snapshots[node.node_id] = self._quantize_node(node)
            self._node_reported[node.node_id] = node.available
        for link in self.network.links:
            self._link_snapshots[link.link_id] = self._quantize_link(link)
            self._link_reported[link.link_id] = link.available_kbps
        self.node_version += 1
        self.link_version += 1

    # -- query path (what ACP's candidate selection reads) --------------------

    def node_available(self, node_id: int) -> ResourceVector:
        """Coarse-grain available resources of a node."""
        return self._node_snapshots[node_id]

    def link_available_kbps(self, link_id: int) -> float:
        """Coarse-grain available bandwidth of one overlay link."""
        return float(self._link_snapshots[link_id])

    @property
    def link_available_array(self) -> np.ndarray:
        """Coarse-grain available bandwidth of every overlay link, indexed
        by link id (a read-only view; snapshot refreshes show through).
        Bulk consumers pair it with :attr:`link_version`."""
        return self._link_snapshot_view

    def virtual_link_available_kbps(self, overlay_link_ids: Iterable[int]) -> float:
        """Coarse-grain bottleneck bandwidth of a virtual link.

        This is the aggregation-node computation of Section 3.2:
        ``ba_li = min(ba_e1, ..., ba_ek)`` over the *reported* link states.
        The empty path (co-located components) has infinite bandwidth.
        """
        available = float("inf")
        for link_id in overlay_link_ids:
            available = min(available, float(self._link_snapshots[link_id]))
        return available

    @property
    def total_update_messages(self) -> int:
        return self.node_update_messages + self.link_update_messages

    @property
    def total_updates_lost(self) -> int:
        return self.node_updates_lost + self.link_updates_lost

    def max_drift_fraction(self) -> float:
        """Largest current drift as a fraction of capacity (diagnostics)."""
        worst = 0.0
        for node in self.network.nodes:
            snapshot = self._node_snapshots[node.node_id]
            for cur, snap, cap in zip(
                node.available.values, snapshot.values, node.capacity.values
            ):
                if cap > 0:
                    worst = max(worst, abs(cur - snap) / cap)
        for link in self.network.links:
            snapshot = self._link_snapshots[link.link_id]
            worst = max(
                worst,
                abs(link.available_kbps - snapshot) / link.capacity_kbps,
            )
        return worst
