"""Fine-grain local state (Section 3.2).

"The local state of a node consists of the QoS/resource states of its
neighbor nodes in the overlay mesh, and its adjacent overlay links.  Each
node keeps its local state with high precision using frequent proactive
measurement at short time interval (e.g., 10 seconds).  For scalability,
the precise local state is not disseminated to other nodes."

In the simulator the proactive measurement loop always converges to ground
truth between composition events, so the local state view reads the live
entities directly — that *is* the precise state a node would have measured.
The value of the class is the access discipline it enforces: a consumer
holding a :class:`LocalStateView` for node *v* can only read *v*, *v*'s
mesh neighbours, and *v*'s adjacent overlay links, exactly the scope the
paper grants to per-hop probe processing.
"""

from __future__ import annotations

from typing import Tuple

from repro.model.node import Node
from repro.model.qos import QoSVector
from repro.model.resources import ResourceVector
from repro.topology.overlay import OverlayLink, OverlayNetwork


class LocalStateError(KeyError):
    """Raised when a query leaves the local-state scope of the owning node."""


class LocalStateView:
    """Precise state of one node's overlay neighbourhood."""

    __slots__ = ("_network", "_node_id", "_scope")

    def __init__(self, network: OverlayNetwork, node_id: int) -> None:
        self._network = network
        self._node_id = node_id
        self._scope = frozenset((node_id,) + network.neighbors(node_id))

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def scope(self) -> frozenset:
        """Node ids visible from this view (self plus mesh neighbours)."""
        return self._scope

    def _check_scope(self, node_id: int) -> None:
        if node_id not in self._scope:
            raise LocalStateError(
                f"node v{node_id} is outside the local state of v{self._node_id} "
                f"(scope: self + mesh neighbours)"
            )

    def node_available(self, node_id: int) -> ResourceVector:
        """Precise available resources of self or a mesh neighbour."""
        self._check_scope(node_id)
        return self._network.node(node_id).available

    def component_qos(self, node_id: int, component_id: int) -> QoSVector:
        """Precise QoS of a component hosted within scope."""
        self._check_scope(node_id)
        for component in self._network.node(node_id).components:
            if component.component_id == component_id:
                return component.qos
        raise LocalStateError(
            f"component c{component_id} is not hosted on v{node_id}"
        )

    def adjacent_links(self) -> Tuple[OverlayLink, ...]:
        """The owning node's adjacent overlay links (precise, live)."""
        return self._network.adjacent_links(self._node_id)

    def link_available_kbps(self, link_id: int) -> float:
        """Precise available bandwidth of an adjacent overlay link."""
        for link in self._network.adjacent_links(self._node_id):
            if link.link_id == link_id:
                return link.available_kbps
        raise LocalStateError(
            f"overlay link e{link_id} is not adjacent to v{self._node_id}"
        )


class LocalStateProvider:
    """Factory of per-node local state views over one overlay network."""

    def __init__(self, network: OverlayNetwork) -> None:
        self._network = network
        self._views = {}

    def view(self, node_id: int) -> LocalStateView:
        view = self._views.get(node_id)
        if view is None:
            view = LocalStateView(self._network, node_id)
            self._views[node_id] = view
        return view

    def node(self, node_id: int) -> Node:
        """Direct precise access used by probe processing *at* the node."""
        return self._network.node(node_id)
