"""The rule catalog: code → one-line description.

Kept as data (not docstrings) so the CLI's ``--list-rules``, the tests,
and DEVELOPMENT.md can all enumerate the same source of truth.
"""

from __future__ import annotations

from typing import Dict

ALL_RULES: Dict[str, str] = {
    "DET101": (
        "process-global RNG use: random.<draw>() module calls, imports of "
        "module-level draws, unseeded Random()/default_rng(), the random "
        "module passed as an RNG object"
    ),
    "DET102": (
        "wall-clock read (time.time/perf_counter/monotonic, datetime.now "
        "family) outside repro.observability.recorder"
    ),
    "DET103": (
        "statically set-typed (or dict.keys()) expression feeding an "
        "ordering-sensitive sink without sorted(...)"
    ),
    "LAY201": (
        "upward or same-rank import against the declared layer DAG "
        "(including imports out of observability or into analysis)"
    ),
    "LAY202": "import cycle between top-level packages (chain printed)",
    "LAY203": "top-level package missing from the declared layer DAG",
    "REC301": (
        "recorder.emit/inc/observe/set_gauge call on a hot path "
        "(repro.core, repro.topology.routing) without an `.enabled` guard"
    ),
    "PAR001": "file does not parse (reported so CI cannot skip broken files)",
}


def rule_catalog() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    width = max(len(code) for code in ALL_RULES)
    return "\n".join(
        f"{code.ljust(width)}  {description}"
        for code, description in sorted(ALL_RULES.items())
    )
