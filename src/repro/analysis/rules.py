"""The rule catalog: code → one-line description.

Kept as data (not docstrings) so the CLI's ``--list-rules``, the tests,
and DEVELOPMENT.md can all enumerate the same source of truth.
"""

from __future__ import annotations

from typing import Dict

ALL_RULES: Dict[str, str] = {
    "DET101": (
        "process-global RNG use: random.<draw>() module calls, imports of "
        "module-level draws, unseeded Random()/default_rng(), the random "
        "module passed as an RNG object"
    ),
    "DET102": (
        "wall-clock read (time.time/perf_counter/monotonic, datetime.now "
        "family) outside repro.observability.recorder"
    ),
    "DET103": (
        "statically set-typed (or dict.keys()) expression feeding an "
        "ordering-sensitive sink without sorted(...)"
    ),
    "DET150": (
        "seed derivation (Random(seed + k) / seed=... arithmetic) with no "
        "matching slot in repro.analysis.seeds.REGISTRY"
    ),
    "DET151": (
        "seed derivation whose declared slot collides with another slot "
        "at the same absolute stream (two subsystems, one sequence)"
    ),
    "DET152": (
        "RNG from a declared slot flowing into a module outside the "
        "slot's declared consumer (the stream escapes its subsystem)"
    ),
    "DET153": (
        "RNG draws interleaved across a config-flag-dependent branch — "
        "toggling the flag shifts every later draw from the stream"
    ),
    "LAY201": (
        "upward or same-rank import against the declared layer DAG "
        "(including imports out of observability or into analysis)"
    ),
    "LAY202": "import cycle between top-level packages (chain printed)",
    "LAY203": "top-level package missing from the declared layer DAG",
    "REC301": (
        "recorder.emit/inc/observe/set_gauge call on a hot path "
        "(repro.core, repro.topology.routing) without an `.enabled` guard"
    ),
    "SHR401": (
        "module-level mutable container in a runtime package — "
        "process-global state that diverges per worker under sharding"
    ),
    "SHR402": (
        "instance cache (self.*cache*/*memo*) on a bare dict instead of "
        "repro.model.lru.LRUDict (the bounded-cache rule)"
    ),
    "SHR403": (
        "add_*_listener registration in a class with no matching "
        "remove_*_listener teardown (the PR 6 leak class)"
    ),
    "SHR404": (
        "attribute write on an object owned by another subsystem, "
        "bypassing the GlobalStateManager funnel"
    ),
    "HOT501": (
        "list/tuple/sorted materialisation of an O(N)-shaped iterable "
        "inside an @hot_path function or its callees"
    ),
    "HOT502": (
        "dense square numpy allocation (np.zeros((n, n)) family) inside "
        "an @hot_path function — O(N²) resident memory"
    ),
    "HOT503": (
        "full .items()/.keys()/.values() scan of an instance map inside "
        "an @hot_path function"
    ),
    "HOT504": (
        "f-string allocation inside an @hot_path function outside a "
        "recorder guard or raise"
    ),
    "HOT505": "print/logging call inside an @hot_path function",
    "HOT506": (
        "hot-path marker problem: a budget-table function missing "
        "@hot_path, or a marker without an O(...) budget string"
    ),
    "PAR001": "file does not parse (reported so CI cannot skip broken files)",
}


def rule_catalog() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    width = max(len(code) for code in ALL_RULES)
    return "\n".join(
        f"{code.ljust(width)}  {description}"
        for code, description in sorted(ALL_RULES.items())
    )
