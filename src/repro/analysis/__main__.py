"""``python -m repro.analysis`` — the repro-lint entry point."""

import sys

from repro.analysis.cli import main

sys.exit(main())
