"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Usage::

    repro-lint                      # lint src/repro with src/ as the root
    repro-lint path/to/file.py      # lint specific files/directories
    repro-lint --format json        # machine-readable report
    repro-lint --format github      # GitHub inline annotations
    repro-lint --list-rules         # print the rule catalog
    repro-lint --layers             # print the declared layer DAG
    repro-lint --seed-table         # print the seed-slot registry table

Exit status is 0 when clean, 1 on violations, 2 on usage errors or a
crashed rule pass — so ``make lint`` and CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.layering import (
    TOOL_PACKAGES,
    UNIVERSAL_PACKAGES,
    declared_dag_rows,
)
from repro.analysis.rules import rule_catalog
from repro.analysis.seeds import slot_table_markdown, validate_registry


def _default_paths() -> Tuple[List[str], Optional[str]]:
    """(paths, src_root) for a bare invocation from the repo checkout."""
    for candidate in ("src", os.path.join("..", "src")):
        target = os.path.join(candidate, "repro")
        if os.path.isdir(target):
            return [target], candidate
    return ["."], None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism, layering, recorder-discipline, RNG-provenance, "
            "shard-safety, and hot-path-budget linter for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--src-root",
        default=None,
        help=(
            "directory module names are computed against (default: src when "
            "linting the default tree); layering, provenance, and hot-path "
            "rules need it"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "violation output: text (default, path:line:col: CODE), json "
            "(one machine-readable document), github (workflow-command "
            "annotations for inline PR review)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--layers", action="store_true", help="print the declared layer DAG"
    )
    parser.add_argument(
        "--seed-table",
        action="store_true",
        help="print the seed-slot registry as the DEVELOPMENT.md table",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _report(result: LintResult, output_format: str, quiet: bool) -> None:
    if output_format == "json":
        print(result.formatted_json())
        return
    if output_format == "github":
        if result.violations:
            print(result.formatted_github())
        for error in result.internal_errors:
            print(f"::error title=repro-lint internal error::{error}")
        return
    if result.violations:
        print(result.formatted())
    for error in result.internal_errors:
        print(f"repro-lint: internal error: {error}", file=sys.stderr)
    if not quiet:
        noun = "file" if result.files_checked == 1 else "files"
        if result.ok:
            print(f"repro-lint: {result.files_checked} {noun} clean")
        else:
            count = len(result.violations)
            vnoun = "violation" if count == 1 else "violations"
            print(
                f"repro-lint: {count} {vnoun} in {result.files_checked} {noun}",
                file=sys.stderr,
            )


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # ``repro-lint --list-rules | head`` closes stdout early; swap in
        # devnull so the interpreter's exit-time flush cannot raise again
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rule_catalog())
        return 0
    if args.layers:
        for rank, package in declared_dag_rows():
            print(f"{rank}  {package}")
        print(f"*  {', '.join(sorted(UNIVERSAL_PACKAGES))} (importable by all, imports none)")
        print(f"*  {', '.join(sorted(TOOL_PACKAGES))} (build tooling, no runtime imports)")
        return 0
    if args.seed_table:
        errors = validate_registry()
        if errors:
            for error in errors:
                print(f"repro-lint: seed registry: {error}", file=sys.stderr)
            return 2
        print(slot_table_markdown())
        return 0

    paths = args.paths
    src_root = args.src_root
    if not paths:
        paths, src_root = _default_paths()
        if args.src_root is not None:
            src_root = args.src_root
    result = lint_paths(paths, src_root=src_root)
    _report(result, args.format, args.quiet)
    if result.internal_errors:
        return 2
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
