"""Determinism rules: seeded RNG only, no wall clocks, no unordered iteration.

==========  =============================================================
code        what it flags
==========  =============================================================
``DET101``  the process-global RNG: ``random.<draw>()`` module calls,
            ``from random import choice``-style imports of draw
            functions, ``random.Random()`` constructed without a seed,
            the ``random`` module object passed around as an RNG, and
            ``numpy.random`` global draws / unseeded ``default_rng()``.
``DET102``  wall-clock reads — ``time.time``/``perf_counter``/
            ``monotonic`` (call or import) and ``datetime.now``-family —
            anywhere outside the observability timer module.  Simulated
            time comes from the event scheduler; profiling timers live
            behind the :class:`~repro.observability.recorder.Recorder`.
``DET103``  iteration over an expression that is statically a ``set``
            (or ``dict.keys()`` call) feeding an ordering-sensitive sink
            — a ``for`` loop or comprehension, ``list``/``tuple``/
            ``enumerate``/``fromiter`` materialisation, or an RNG draw
            such as ``rng.sample`` — without an explicit ``sorted(...)``.
            Order-insensitive folds (``min``/``max``/``sum``/``len``/
            ``any``/``all``/``set``/``frozenset``/membership) are fine.
==========  =============================================================

Set-ness is tracked syntactically, per function scope: set literals and
comprehensions, ``set(...)``/``frozenset(...)`` calls, set-operator
expressions over known sets, names assigned or annotated as sets in the
enclosing scope, and ``self.<attr>`` fields the module assigns or
annotates as sets anywhere.  This is deliberately a conservative
whole-file approximation — a false positive on provably order-free code
takes a one-line justified suppression, a false negative takes a flaky
experiment report.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.violations import Violation

#: module-level draw functions on ``random`` (the shared global RNG)
_GLOBAL_RANDOM_DRAWS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

_WALLCLOCK_TIME_NAMES = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: modules allowed to read the wall clock (the profiling timer lives here)
WALLCLOCK_ALLOWED_MODULES = frozenset({"repro.observability.recorder"})

#: callables whose argument order is observable in the result
_ORDER_SENSITIVE_CALLEES = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "fromiter"}
)
_ORDER_SENSITIVE_METHODS = frozenset(
    {"sample", "choice", "choices", "shuffle", "fromiter", "extend"}
)
#: callables that fold without observing order (never flag these sinks)
_ORDER_FREE_CALLEES = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _is_set_annotation(node: ast.expr) -> bool:
    """``Set[...]``/``FrozenSet[...]``/``set[...]``/``frozenset[...]``."""
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in {"Set", "FrozenSet", "set", "frozenset", "AbstractSet"}
    if isinstance(target, ast.Attribute):  # typing.Set, typing.FrozenSet
        return target.attr in {"Set", "FrozenSet", "AbstractSet"}
    return False


class _ScopeFrame:
    """Names (and self-attributes) known to hold sets in one scope."""

    def __init__(self, names: Set[str], attrs: Set[str]) -> None:
        self.names = names
        self.attrs = attrs


class DeterminismChecker:
    """Runs DET101/DET102/DET103 over one module's AST."""

    def __init__(self, path: str, tree: ast.Module, module: Optional[str]) -> None:
        self.path = path
        self.tree = tree
        self.module = module
        self.violations: List[Violation] = []
        #: Name nodes consumed as ``random.<attr>`` (not bare module refs)
        self._attribute_value_ids: Set[int] = set()
        #: attributes assigned/annotated as sets anywhere in the module
        self._set_attrs: Set[str] = set()
        #: comprehensions consumed by an order-free fold (``any(x in s)``)
        self._order_free_comprehensions: Set[int] = set()

    # -- entry point --------------------------------------------------------

    def run(self) -> List[Violation]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Attribute):
                self._attribute_value_ids.add(id(node.value))
        self._collect_set_attrs()
        self._check_imports()
        self._check_rng_and_clock_calls()
        module_frame = _ScopeFrame(set(), self._set_attrs)
        self._collect_set_names(self.tree, module_frame.names)
        self._check_scope(self.tree, module_frame)
        return self.violations

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, node.col_offset + 1, code, message)
        )

    # -- DET101 / DET102: imports -----------------------------------------------

    def _wallclock_allowed(self) -> bool:
        return self.module in WALLCLOCK_ALLOWED_MODULES

    def _check_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    drawn = [
                        alias.name
                        for alias in node.names
                        if alias.name in _GLOBAL_RANDOM_DRAWS
                    ]
                    if drawn:
                        self._emit(
                            node,
                            "DET101",
                            "import of module-level random draw(s) "
                            f"{', '.join(sorted(drawn))} — inject a seeded "
                            "random.Random instead",
                        )
                elif node.module == "time" and not self._wallclock_allowed():
                    clocks = [
                        alias.name
                        for alias in node.names
                        if alias.name in _WALLCLOCK_TIME_NAMES
                    ]
                    if clocks:
                        self._emit(
                            node,
                            "DET102",
                            f"wall-clock import ({', '.join(sorted(clocks))}) "
                            "outside the observability timer module — use the "
                            "simulation clock or a Recorder phase timer",
                        )

    # -- DET101 / DET102: calls and bare module references ----------------------

    def _check_rng_and_clock_calls(self) -> None:
        wallclock_ok = self._wallclock_allowed()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, wallclock_ok)
            elif isinstance(node, ast.Name):
                if (
                    node.id == "random"
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in self._attribute_value_ids
                ):
                    self._emit(
                        node,
                        "DET101",
                        "the random module object used as an RNG value — "
                        "pass a seeded random.Random instance",
                    )

    def _check_call(self, node: ast.Call, wallclock_ok: bool) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "Random" and not node.args and not node.keywords:
                self._emit(
                    node, "DET101", "Random() constructed without a seed"
                )
            elif func.id == "default_rng" and not node.args:
                self._emit(
                    node, "DET101", "default_rng() constructed without a seed"
                )
            elif (
                func.id in _WALLCLOCK_TIME_NAMES
                and not wallclock_ok
                and self._name_is_time_import(func.id)
            ):
                self._emit(
                    node,
                    "DET102",
                    f"wall-clock call {func.id}() outside the observability "
                    "timer module",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id == "random":
                if func.attr in _GLOBAL_RANDOM_DRAWS:
                    self._emit(
                        node,
                        "DET101",
                        f"module-level random.{func.attr}() draws from the "
                        "process-global RNG — inject a seeded random.Random",
                    )
                elif func.attr == "SystemRandom":
                    self._emit(
                        node, "DET101", "SystemRandom() is entropy-backed and "
                        "unseedable",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._emit(
                        node, "DET101", "random.Random() constructed without a seed"
                    )
            elif owner.id == "time":
                if func.attr in _WALLCLOCK_TIME_NAMES and not wallclock_ok:
                    self._emit(
                        node,
                        "DET102",
                        f"wall-clock call time.{func.attr}() outside the "
                        "observability timer module",
                    )
            elif owner.id in {"datetime", "date"}:
                if func.attr in _WALLCLOCK_DATETIME_ATTRS and not wallclock_ok:
                    self._emit(
                        node,
                        "DET102",
                        f"wall-clock call {owner.id}.{func.attr}() outside "
                        "the observability timer module",
                    )
        elif isinstance(owner, ast.Attribute):
            # np.random.<draw>() / numpy.random.default_rng()
            if owner.attr == "random" and isinstance(owner.value, ast.Name):
                if func.attr == "default_rng":
                    if not node.args:
                        self._emit(
                            node, "DET101", "default_rng() constructed without a seed"
                        )
                elif func.attr not in {"Generator", "RandomState", "SeedSequence"}:
                    self._emit(
                        node,
                        "DET101",
                        f"global numpy RNG draw {owner.value.id}.random."
                        f"{func.attr}() — use a seeded Generator",
                    )
            # datetime.datetime.now() chains
            elif (
                func.attr in _WALLCLOCK_DATETIME_ATTRS
                and owner.attr in {"datetime", "date"}
                and not wallclock_ok
            ):
                self._emit(
                    node,
                    "DET102",
                    f"wall-clock call datetime.{owner.attr}.{func.attr}() "
                    "outside the observability timer module",
                )

    def _name_is_time_import(self, name: str) -> bool:
        """True if ``name`` was imported from :mod:`time` in this module."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if (alias.asname or alias.name) == name:
                        return True
        return False

    # -- DET103: set-typed expressions feeding ordered sinks ---------------------

    def _collect_set_attrs(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and self._is_set_expr(
                        node.value, _ScopeFrame(set(), set())
                    ):
                        self._set_attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Attribute) and _is_set_annotation(
                    node.annotation
                ):
                    self._set_attrs.add(node.target.attr)

    def _collect_set_names(self, scope: ast.AST, names: Set[str]) -> None:
        """Names assigned/annotated as sets directly in ``scope``'s body."""
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg, annotation in _annotated_args(scope):
                if annotation is not None and _is_set_annotation(annotation):
                    names.add(arg)
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                if self._is_set_expr(node.value, _ScopeFrame(names, self._set_attrs)):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    names.add(node.target.id)

    def _is_set_expr(self, node: ast.expr, frame: _ScopeFrame) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in {
                "set",
                "frozenset",
            }:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return True  # dict.keys(): iterate the dict itself, or sort
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "union", "intersection", "difference", "symmetric_difference",
            }:
                return self._is_set_expr(node.func.value, frame)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(node.left, frame) or self._is_set_expr(
                node.right, frame
            )
        if isinstance(node, ast.Name):
            return node.id in frame.names
        if isinstance(node, ast.Attribute):
            return node.attr in frame.attrs
        return False

    def _check_scope(self, scope: ast.AST, frame: _ScopeFrame) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = _ScopeFrame(set(frame.names), frame.attrs)
                self._collect_set_names(node, inner.names)
                self._check_scope(node, inner)
                continue
            self._check_node(node, frame)
            self._check_scope(node, frame)

    def _check_node(self, node: ast.AST, frame: _ScopeFrame) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._flag_if_set(node.iter, frame, "for-loop iteration")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if id(node) in self._order_free_comprehensions:
                return
            for generator in node.generators:
                self._flag_if_set(
                    generator.iter, frame, "comprehension iteration"
                )
        elif isinstance(node, ast.Call):
            self._check_sink_call(node, frame)
        elif isinstance(node, ast.Starred):
            self._flag_if_set(node.value, frame, "unpacking")

    def _check_sink_call(self, node: ast.Call, frame: _ScopeFrame) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_FREE_CALLEES:
                # a generator folded order-free (``any(x > 0 for x in s)``)
                # may iterate an unordered set without observing order
                for arg in node.args:
                    if isinstance(
                        arg, (ast.ListComp, ast.GeneratorExp, ast.SetComp)
                    ):
                        self._order_free_comprehensions.add(id(arg))
                return
            if func.id in _ORDER_SENSITIVE_CALLEES and node.args:
                self._flag_if_set(node.args[0], frame, f"{func.id}(...)")
        elif isinstance(func, ast.Attribute):
            if func.attr in _ORDER_SENSITIVE_METHODS and node.args:
                self._flag_if_set(node.args[0], frame, f".{func.attr}(...)")

    def _flag_if_set(self, node: ast.expr, frame: _ScopeFrame, sink: str) -> None:
        if self._is_set_expr(node, frame):
            self._emit(
                node,
                "DET103",
                f"unordered set/dict-keys expression feeds {sink} — wrap in "
                "sorted(...) or justify with a suppression",
            )


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``scope`` without entering nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _annotated_args(node: ast.AST) -> List:
    args = node.args
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return [(a.arg, a.annotation) for a in every]


def check_determinism(
    path: str, tree: ast.Module, module: Optional[str]
) -> List[Violation]:
    """All DET1xx violations for one parsed module."""
    return DeterminismChecker(path, tree, module).run()
