"""File walking, the analysis context, rule dispatch, suppression filtering.

:func:`lint_paths` is the single entry point both the CLI and the
self-tests use.  Given files and/or directories it:

1. collects ``*.py`` files (sorted, so output order is deterministic —
   the linter holds itself to its own rules);
2. parses each file once into a :class:`~repro.analysis.context.ModuleInfo`
   and runs the per-file rule families (determinism, recorder
   discipline);
3. assembles the parsed modules into one
   :class:`~repro.analysis.context.AnalysisContext` and runs the
   whole-program families: layering, RNG provenance (DET15x), shard
   safety (SHR4xx), hot-path budgets (HOT5xx);
4. filters everything through ``# repro-lint: disable=...`` line
   suppressions.

Module names matter: the wall-clock allowlist, hot-path matching, the
layer DAG, and the seed registry are all keyed on ``repro.<package>...``
names, so a file outside ``src_root`` (or with no ``src_root`` given)
gets only the location-independent determinism checks.

A rule pass that *crashes* is reported, not swallowed: the exception is
recorded on :attr:`LintResult.internal_errors` and the CLI exits 2, so
CI can never mistake a broken linter for a clean tree.
"""

from __future__ import annotations

import ast
import json
import os
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.analysis.context import AnalysisContext, ModuleInfo
from repro.analysis.determinism import check_determinism
from repro.analysis.hotpath import check_hot_paths
from repro.analysis.layering import ImportEdge, check_layering, collect_import_edges
from repro.analysis.recorder_discipline import check_recorder_discipline
from repro.analysis.rngflow import check_rngflow
from repro.analysis.seeds import REGISTRY, SeedSlot
from repro.analysis.shard_safety import check_shard_safety
from repro.analysis.violations import (
    Violation,
    apply_suppressions,
    parse_suppressions,
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: rule passes that crashed ("family: exception"); non-empty means
    #: the run is unreliable and the CLI exits 2
    internal_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.internal_errors

    def formatted(self) -> str:
        return "\n".join(v.format() for v in sorted(self.violations))

    def formatted_json(self) -> str:
        """Machine-readable report (``--format json``)."""
        return json.dumps(
            {
                "clean": self.ok,
                "files_checked": self.files_checked,
                "violations": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "code": v.code,
                        "message": v.message,
                    }
                    for v in sorted(self.violations)
                ],
                "internal_errors": list(self.internal_errors),
            },
            indent=2,
        )

    def formatted_github(self) -> str:
        """GitHub workflow-command annotations (``--format github``)."""
        return "\n".join(
            f"::error file={v.path},line={v.line},col={v.col},"
            f"title={v.code}::{v.message}"
            for v in sorted(self.violations)
        )


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.add(path)
    return sorted(found)


def module_name(path: str, src_root: Optional[str]) -> Optional[str]:
    """Dotted module for ``path`` relative to ``src_root``, or None."""
    if src_root is None:
        return None
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(src_root))
    if relative.startswith(".."):
        return None
    parts = relative.split(os.sep)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts or any(not part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


def lint_paths(
    paths: Iterable[str],
    src_root: Optional[str] = None,
    seed_registry: Optional[Sequence[SeedSlot]] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths``; see the module docstring.

    ``seed_registry`` overrides the shipped seed-slot registry for the
    RNG-provenance pass — the fixture tests declare slots for fixture
    modules this way; production runs use the default.
    """
    result = LintResult()
    modules: List[ModuleInfo] = []
    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    edges: List[ImportEdge] = []

    def run_family(family: str, check: Callable[[], List[Violation]]) -> List[Violation]:
        try:
            return check()
        except Exception:
            result.internal_errors.append(
                f"{family} crashed: {traceback.format_exc(limit=3).strip()}"
            )
            return []

    for path in iter_python_files(list(paths)):
        result.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            result.violations.append(
                Violation(path, line, 1, "PAR001", f"does not parse: {error}")
            )
            continue
        module = module_name(path, src_root)
        suppressions = parse_suppressions(source)
        suppressions_by_path[path] = suppressions
        file_violations = run_family(
            "determinism", lambda: check_determinism(path, tree, module)
        )
        file_violations += run_family(
            "recorder-discipline",
            lambda: check_recorder_discipline(path, tree, module),
        )
        if module is not None:
            edges.extend(collect_import_edges(path, tree, module))
            modules.append(
                ModuleInfo(
                    path=path,
                    module=module,
                    tree=tree,
                    source=source,
                    suppressions=suppressions,
                )
            )
        result.violations.extend(
            apply_suppressions(file_violations, suppressions)
        )

    # -- whole-program passes over the shared context ------------------------

    program: List[Violation] = []
    program += run_family("layering", lambda: check_layering(edges))
    if modules:
        context = AnalysisContext(modules)
        registry = tuple(seed_registry) if seed_registry is not None else REGISTRY
        program += run_family(
            "rng-provenance", lambda: check_rngflow(context, registry)
        )
        program += run_family(
            "shard-safety", lambda: check_shard_safety(context)
        )
        program += run_family("hot-path", lambda: check_hot_paths(context))

    by_path: Dict[str, List[Violation]] = {}
    for violation in program:
        by_path.setdefault(violation.path, []).append(violation)
    for path, group in by_path.items():
        suppressions = suppressions_by_path.get(path)
        if suppressions is None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    suppressions = parse_suppressions(handle.read())
            except OSError:
                suppressions = {}
        result.violations.extend(apply_suppressions(group, suppressions))

    result.violations.sort()
    return result
