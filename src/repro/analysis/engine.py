"""File walking, per-file dispatch, suppression filtering.

:func:`lint_paths` is the single entry point both the CLI and the
self-tests use.  Given files and/or directories it:

1. collects ``*.py`` files (sorted, so output order is deterministic —
   the linter holds itself to its own rules);
2. parses each file once and runs the per-file rule families
   (determinism, recorder discipline);
3. derives each file's dotted module name relative to ``src_root`` and
   feeds the cross-file import edges to the layering check;
4. filters everything through ``# repro-lint: disable=...`` line
   suppressions.

Module names matter: the wall-clock allowlist, hot-path matching, and
the layer DAG are all keyed on ``repro.<package>...`` names, so a file
outside ``src_root`` (or with no ``src_root`` given) gets only the
location-independent determinism checks.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.analysis.determinism import check_determinism
from repro.analysis.layering import ImportEdge, check_layering, collect_import_edges
from repro.analysis.recorder_discipline import check_recorder_discipline
from repro.analysis.violations import (
    Violation,
    apply_suppressions,
    parse_suppressions,
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def formatted(self) -> str:
        return "\n".join(v.format() for v in sorted(self.violations))


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.add(path)
    return sorted(found)


def module_name(path: str, src_root: Optional[str]) -> Optional[str]:
    """Dotted module for ``path`` relative to ``src_root``, or None."""
    if src_root is None:
        return None
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(src_root))
    if relative.startswith(".."):
        return None
    parts = relative.split(os.sep)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts or any(not part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


def lint_paths(
    paths: Iterable[str], src_root: Optional[str] = None
) -> LintResult:
    """Lint every ``*.py`` under ``paths``; see the module docstring."""
    result = LintResult()
    edges: List[ImportEdge] = []
    for path in iter_python_files(list(paths)):
        result.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            result.violations.append(
                Violation(path, line, 1, "PAR001", f"does not parse: {error}")
            )
            continue
        module = module_name(path, src_root)
        file_violations = check_determinism(path, tree, module)
        file_violations += check_recorder_discipline(path, tree, module)
        if module is not None:
            edges.extend(collect_import_edges(path, tree, module))
        result.violations.extend(
            apply_suppressions(file_violations, parse_suppressions(source))
        )

    layering = check_layering(edges)
    if layering:
        # layer violations honour suppressions on their import lines too
        by_path: dict = {}
        for violation in layering:
            by_path.setdefault(violation.path, []).append(violation)
        for path, group in by_path.items():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    suppressions = parse_suppressions(handle.read())
            except OSError:
                suppressions = {}
            result.violations.extend(apply_suppressions(group, suppressions))

    result.violations.sort()
    return result
