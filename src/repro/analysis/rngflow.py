"""RNG-stream provenance rules: derivations declared, flows honoured.

The determinism contract keys every subsystem's randomness to a declared
seed slot (``repro.analysis.seeds``).  This pass proves the code matches
the declaration:

==========  =============================================================
code        what it flags
==========  =============================================================
``DET150``  a seed derivation (``Random(seed + k)``, ``seed=spec.seed*7+1``
            — any affine arithmetic over a seed-named value) with no
            matching slot in the registry.  Claim a slot first; the
            registry is the single source of truth for offsets.
``DET151``  a derivation whose slot collides with another slot — both
            resolve to the same absolute stream off the same root, so two
            subsystems would consume identical random sequences.
``DET152``  an RNG constructed from a declared slot flowing (as a call
            argument, through the static call graph) into a module
            outside the slot's declared consumer — the stream escapes
            its owning subsystem.
``DET153``  RNG draws interleaved across a config-flag-dependent branch:
            a draw inside ``if <config/spec/plan...>:`` followed by more
            draws from the *same* stream after the branch.  Toggling the
            flag shifts every later draw — give the branch its own slot.
==========  =============================================================

Pass-through constructions (``Random(seed)``, ``Random(0)``) are not
derivations and need no slot; the registry tracks *stream splits*, which
is where two-subsystem collisions come from.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import AnalysisContext, ClassInfo, ModuleInfo
from repro.analysis.seeds import (
    REGISTRY,
    SeedSlot,
    absolute_derivation,
    render_derivation,
)
from repro.analysis.violations import Violation

#: draw methods that advance an RNG stream (random.Random + numpy
#: Generator vocabulary, minus state inspection)
DRAW_METHODS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate", "integers", "normal", "poisson", "exponential",
        "standard_normal", "permutation",
    }
)

#: names whose attributes read like run configuration — branching on
#: these while drawing makes draw order depend on the flag
_CONFIG_OWNERS = frozenset(
    {"config", "spec", "plan", "options", "settings", "flags", "faults"}
)
_CONFIG_ATTR_PREFIXES = ("enable", "use_", "with_", "injects_")

#: modules the provenance pass skips (the tool package mentions seed
#: arithmetic as data/patterns, not as streams)
_EXCLUDED_PREFIX = "repro.analysis"

Affine = Tuple[str, int, int]  # (symbol, multiplier, offset)


def _as_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def seed_affine(node: ast.expr) -> Optional[Affine]:
    """Parse ``expr`` as ``multiplier * <seed symbol> + offset``, or None.

    The symbol is any name/attribute whose terminal identifier contains
    ``seed`` (``spec.workload_seed`` → ``workload_seed``).  Expressions
    combining two seed symbols, or non-affine arithmetic, return None.
    """
    if isinstance(node, ast.Name):
        return (node.id, 1, 0) if "seed" in node.id.lower() else None
    if isinstance(node, ast.Attribute):
        return (node.attr, 1, 0) if "seed" in node.attr.lower() else None
    if isinstance(node, ast.BinOp):
        left, right = seed_affine(node.left), seed_affine(node.right)
        if isinstance(node.op, ast.Add):
            if left is not None and right is None:
                constant = _as_int(node.right)
                if constant is not None:
                    return (left[0], left[1], left[2] + constant)
            elif right is not None and left is None:
                constant = _as_int(node.left)
                if constant is not None:
                    return (right[0], right[1], right[2] + constant)
        elif isinstance(node.op, ast.Sub) and left is not None and right is None:
            constant = _as_int(node.right)
            if constant is not None:
                return (left[0], left[1], left[2] - constant)
        elif isinstance(node.op, ast.Mult):
            affine, const_node = (left, node.right) if left is not None else (
                right,
                node.left,
            )
            if affine is not None:
                constant = _as_int(const_node)
                if constant is not None:
                    return (affine[0], affine[1] * constant, affine[2] * constant)
    return None


def _is_rng_constructor(call: ast.Call) -> bool:
    """``random.Random(...)`` / ``Random(...)`` / ``default_rng(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in {"Random", "default_rng"}
    if isinstance(func, ast.Attribute):
        return func.attr in {"Random", "default_rng"}
    return False


class _Site:
    """One detected seed derivation."""

    __slots__ = ("node", "affine", "construction", "module_info")

    def __init__(
        self,
        node: ast.expr,
        affine: Affine,
        construction: Optional[ast.Call],
        module_info: ModuleInfo,
    ) -> None:
        self.node = node
        self.affine = affine
        #: the Random()/default_rng() call, when the derivation seeds one
        self.construction = construction
        self.module_info = module_info


class RngFlowChecker:
    """Runs DET150–DET153 over the whole program."""

    def __init__(
        self,
        context: AnalysisContext,
        registry: Sequence[SeedSlot] = REGISTRY,
    ) -> None:
        self.context = context
        self.registry = tuple(registry)
        self.by_name = {slot.name: slot for slot in self.registry}
        self.violations: List[Violation] = []
        self._colliding = self._collision_slots()

    def _collision_slots(self) -> Set[str]:
        absolute: Dict[Tuple[str, int, int], List[str]] = {}
        for slot in self.registry:
            try:
                key = absolute_derivation(slot, self.by_name)
            except ValueError:
                continue
            absolute.setdefault(key, []).append(slot.name)
        return {
            name
            for names in absolute.values()
            if len(names) > 1
            for name in names
        }

    def run(self) -> List[Violation]:
        for info in self.context.modules.values():
            if info.module.startswith(_EXCLUDED_PREFIX):
                continue
            self._check_module(info)
        return self.violations

    def _emit(
        self, info: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        self.violations.append(
            Violation(
                info.path, node.lineno, node.col_offset + 1, code, message
            )
        )

    # -- DET150/DET151: derivation sites ------------------------------------

    def _check_module(self, info: ModuleInfo) -> None:
        sites = self._collect_sites(info)
        for site in sites:
            slot = self._match(info, site)
            if slot is None:
                symbol, multiplier, offset = site.affine
                self._emit(
                    info,
                    site.node,
                    "DET150",
                    f"undeclared seed derivation "
                    f"{render_derivation(symbol, multiplier, offset)} — claim "
                    "a slot in repro.analysis.seeds.REGISTRY before splitting "
                    "a stream (the registry is the offset map)",
                )
                continue
            if slot.name in self._colliding:
                root, multiplier, offset = absolute_derivation(
                    slot, self.by_name
                )
                self._emit(
                    info,
                    site.node,
                    "DET151",
                    f"slot '{slot.name}' collides with another declared slot "
                    f"at absolute stream "
                    f"{render_derivation(root, multiplier, offset)} — two "
                    "subsystems would draw identical sequences",
                )
            if site.construction is not None:
                self._check_flow(info, site, slot)
        self._check_branch_interleaving(info)

    def _collect_sites(self, info: ModuleInfo) -> List[_Site]:
        sites: List[_Site] = []
        seen: Set[int] = set()
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_rng_constructor(node) and node.args:
                affine = seed_affine(node.args[0])
                if affine is not None and affine[1:] != (1, 0):
                    seen.add(id(node.args[0]))
                    sites.append(_Site(node.args[0], affine, node, info))
            for keyword in node.keywords:
                if keyword.arg is None or id(keyword.value) in seen:
                    continue
                name = keyword.arg.lower()
                if name != "seed" and not name.endswith("_seed"):
                    continue
                affine = seed_affine(keyword.value)
                if affine is not None and affine[1:] != (1, 0):
                    sites.append(_Site(keyword.value, affine, None, info))
        return sites

    def _match(self, info: ModuleInfo, site: _Site) -> Optional[SeedSlot]:
        symbol, multiplier, offset = site.affine
        for slot in self.registry:
            if (
                slot.module == info.module
                and slot.symbol == symbol
                and slot.multiplier == multiplier
                and slot.offset == offset
            ):
                return slot
        return None

    # -- DET152: stream escape ----------------------------------------------

    def _check_flow(
        self, info: ModuleInfo, site: _Site, slot: SeedSlot
    ) -> None:
        """Does the constructed RNG flow into the declared consumer?"""
        assert site.construction is not None
        function, current_class = _enclosing_function(
            info.tree, site.construction, info.module
        )
        param_classes = (
            self.context.param_classes_for(info, function)
            if function is not None
            else {}
        )
        targets: List[Tuple[str, ast.AST]] = []
        enclosing_call = _enclosing_call(info.tree, site.construction)
        if enclosing_call is not None:
            resolved = self.context.resolve_call(
                info, enclosing_call, current_class, param_classes
            )
            if resolved is not None:
                targets.append((resolved[0], enclosing_call))
        name = _assigned_name(info.tree, site.construction)
        if name is not None and function is not None:
            for call in ast.walk(function):
                if isinstance(call, ast.Call) and _passes_name(call, name):
                    resolved = self.context.resolve_call(
                        info, call, current_class, param_classes
                    )
                    if resolved is not None:
                        targets.append((resolved[0], call))
        for target_module, at in targets:
            if target_module == info.module:
                continue
            if target_module == slot.consumer or target_module.startswith(
                slot.consumer + "."
            ):
                continue
            self._emit(
                info,
                at,
                "DET152",
                f"stream of slot '{slot.name}' ({slot.subsystem}) flows into "
                f"{target_module}, outside its declared consumer "
                f"{slot.consumer} — route it through a declared slot or fix "
                "the registry",
            )

    # -- DET153: config-dependent draw interleaving ---------------------------

    def _check_branch_interleaving(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function_branches(info, node)

    def _check_function_branches(
        self, info: ModuleInfo, function: ast.AST
    ) -> None:
        rng_names = _tracked_rngs(function)

        def scan_block(block: List[ast.stmt]) -> None:
            for index, statement in enumerate(block):
                if (
                    isinstance(statement, ast.If)
                    and _config_dependent(statement.test)
                ):
                    branch_draws = _draws_in(statement, rng_names)
                    if branch_draws:
                        for later in block[index + 1 :]:
                            for receiver, draw in _draws_in(later, rng_names):
                                if receiver in {r for r, _ in branch_draws}:
                                    self._emit(
                                        info,
                                        draw,
                                        "DET153",
                                        f"draw from '{receiver}' follows a "
                                        "config-dependent branch (line "
                                        f"{statement.lineno}) that also draws "
                                        "from it — toggling the flag shifts "
                                        "this stream; give the branch its own "
                                        "seed slot",
                                    )
                for child_block in _child_blocks(statement):
                    scan_block(child_block)

        scan_block(list(getattr(function, "body", [])))


# -- helpers -----------------------------------------------------------------


def _child_blocks(statement: ast.stmt) -> List[List[ast.stmt]]:
    blocks = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(statement, field, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            blocks.append(block)
    for handler in getattr(statement, "handlers", []):
        blocks.append(handler.body)
    return blocks


def _config_dependent(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute):
            if node.attr.startswith(_CONFIG_ATTR_PREFIXES):
                return True
            value = node.value
            if isinstance(value, ast.Name) and value.id in _CONFIG_OWNERS:
                return True
            if isinstance(value, ast.Attribute) and value.attr in _CONFIG_OWNERS:
                return True
    return False


def _receiver_key(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        owner = _receiver_key(node.value)
        return f"{owner}.{node.attr}" if owner is not None else None
    return None


def _tracked_rngs(function: ast.AST) -> Set[str]:
    """Receivers that definitely hold RNGs in this function: names
    assigned from RNG constructors, plus anything whose terminal
    identifier mentions rng/random."""
    tracked: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_rng_constructor(node.value):
                for target in node.targets:
                    key = _receiver_key(target)
                    if key is not None:
                        tracked.add(key)
    return tracked


def _is_rng_receiver(key: str, tracked: Set[str]) -> bool:
    if key in tracked:
        return True
    terminal = key.rsplit(".", 1)[-1].lower()
    return "rng" in terminal or terminal == "random"


def _draws_in(
    statement: ast.stmt, tracked: Set[str]
) -> List[Tuple[str, ast.Call]]:
    draws = []
    for node in ast.walk(statement):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
        ):
            key = _receiver_key(node.func.value)
            if key is not None and _is_rng_receiver(key, tracked):
                draws.append((key, node))
    return draws


def _enclosing_function(
    tree: ast.Module, target: ast.AST, module: str
) -> Tuple[Optional[ast.FunctionDef], Optional[ClassInfo]]:
    """The function (and, if a method, a minimal ClassInfo) containing
    ``target``."""
    from repro.analysis.context import _build_class  # shared builder

    path: List[ast.AST] = []

    def walk(node: ast.AST) -> bool:
        if node is target:
            return True
        for child in ast.iter_child_nodes(node):
            path.append(child)
            if walk(child):
                return True
            path.pop()
        return False

    if not walk(tree):
        return None, None
    function: Optional[ast.FunctionDef] = None
    cls: Optional[ClassInfo] = None
    for node in reversed(path):
        if isinstance(node, ast.FunctionDef) and function is None:
            function = node
        elif isinstance(node, ast.ClassDef) and function is not None:
            cls = _build_class(module, node)
            break
    return function, cls


def _enclosing_call(tree: ast.Module, target: ast.Call) -> Optional[ast.Call]:
    """The nearest call that receives ``target`` as (part of) an argument."""
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    node: ast.AST = target
    while True:
        parent = parents.get(id(node))
        if parent is None or isinstance(parent, ast.stmt):
            return None
        if isinstance(parent, ast.Call) and parent is not target:
            in_args = any(
                node is argument or _contains(argument, node)
                for argument in list(parent.args)
                + [keyword.value for keyword in parent.keywords]
            )
            if in_args:
                return parent
        node = parent


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(child is target for child in ast.walk(root))


def _assigned_name(tree: ast.Module, construction: ast.Call) -> Optional[str]:
    """The name bound to the RNG itself (``r = Random(s)``, including
    through a fallback ``r = rng or Random(s)``) — NOT a name bound to a
    value the construction merely flows into."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value: ast.expr = node.value
        candidates = (
            list(value.values) if isinstance(value, ast.BoolOp) else [value]
        )
        if construction in candidates:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
    return None


def _passes_name(call: ast.Call, name: str) -> bool:
    for argument in call.args:
        if isinstance(argument, ast.Name) and argument.id == name:
            return True
    for keyword in call.keywords:
        if isinstance(keyword.value, ast.Name) and keyword.value.id == name:
            return True
    return False


def check_rngflow(
    context: AnalysisContext, registry: Sequence[SeedSlot] = REGISTRY
) -> List[Violation]:
    """All DET15x violations for one whole-program context."""
    return RngFlowChecker(context, registry).run()
