"""Static analysis for the reproduction's two load-bearing invariants.

Every numeric claim this repo makes rests on properties no single test
can check globally:

* **Determinism** — a :class:`~repro.simulation.system.SystemConfig` seed
  must pin every decision.  The differential churn tests (incremental vs
  eager routing), the traced == untraced equivalence, and the paper's
  ACP-vs-baseline comparisons all replay the same run twice and demand
  identical answers; one unseeded RNG draw or one iteration over an
  unordered ``set`` feeding a tie-break silently voids them.
* **Layering** — packages only import downward through a declared DAG
  (model → topology → state/discovery → allocation/placement → core →
  middleware → simulation → experiments/cli), with ``observability``
  importable by everyone and importing no one.  Upward imports are how
  "the simulator reaches into the prober's internals" regressions start.

``repro-lint`` (also ``python -m repro.analysis``) walks the AST of every
file under ``src/repro`` and enforces both, plus the recorder discipline
that keeps the disabled-tracing path within its ≤5 % budget.  Rule codes,
the layer DAG, and the suppression syntax are documented in
``DEVELOPMENT.md``; suppress a single line with
``# repro-lint: disable=CODE`` plus a justification.

This package is a build tool: it imports nothing from the runtime layers
and nothing imports it.
"""

from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.rules import ALL_RULES, rule_catalog
from repro.analysis.violations import Violation

__all__ = [
    "ALL_RULES",
    "LintResult",
    "Violation",
    "lint_paths",
    "rule_catalog",
]
