"""Layering rules: the declared package DAG and its enforcement.

The architecture is a strict stack — a package may import only packages
on *lower* ranks (never its own rank, never above):

====  =======================================
rank  packages
====  =======================================
0     ``model``
1     ``topology``
2     ``state``, ``discovery``
3     ``allocation``, ``placement``
4     ``core``
5     ``middleware``
6     ``simulation``
7     ``experiments``
8     ``cli``
====  =======================================

Two sidecars sit outside the stack: ``observability`` may be imported by
every ranked package but imports none of them, and ``analysis`` (this
tool) neither imports nor is imported by anything at runtime.

==========  ==========================================================
code        what it flags
==========  ==========================================================
``LAY201``  an upward or same-rank import (including any runtime
            import *into* ``analysis`` or *out of* ``observability``)
``LAY202``  an import cycle between packages, printed as a chain
``LAY203``  a package absent from the declared DAG — extending the
            tree means declaring where the new package sits
==========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.violations import Violation

#: the declared stack: package → rank (imports must strictly descend)
LAYERS: Dict[str, int] = {
    "model": 0,
    "topology": 1,
    "state": 2,
    "discovery": 2,
    "allocation": 3,
    "placement": 3,
    "core": 4,
    "middleware": 5,
    "simulation": 6,
    "experiments": 7,
    "cli": 8,
}

#: importable by every ranked package; imports no ranked package
UNIVERSAL_PACKAGES = frozenset({"observability"})

#: imports nothing at runtime and nothing imports it (build tooling)
TOOL_PACKAGES = frozenset({"analysis"})

ROOT_PACKAGE = "repro"


class ImportEdge:
    """One ``repro.*`` import statement, located for reporting."""

    __slots__ = ("source", "target", "path", "line", "col")

    def __init__(self, source: str, target: str, path: str, line: int, col: int) -> None:
        self.source = source
        self.target = target
        self.path = path
        self.line = line
        self.col = col


def top_package(module: str) -> Optional[str]:
    """``repro.core.prober`` → ``core``; ``repro`` itself → None."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != ROOT_PACKAGE:
        return None
    return parts[1]


def collect_import_edges(
    path: str, tree: ast.Module, module: str
) -> List[ImportEdge]:
    """Every cross-package ``repro.*`` import in one module."""
    source = top_package(module)
    if source is None:
        return []
    edges: List[ImportEdge] = []

    def add(target_module: str, node: ast.stmt) -> None:
        target = top_package(target_module)
        if target is not None and target != source:
            edges.append(
                ImportEdge(source, target, path, node.lineno, node.col_offset + 1)
            )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against this module
                base = module.split(".")[: -node.level]
                absolute = ".".join(base + ([node.module] if node.module else []))
                add(absolute, node)
            elif node.module is not None and node.module.startswith(ROOT_PACKAGE):
                if node.module == ROOT_PACKAGE:
                    # ``from repro import core`` — each alias is a package
                    for alias in node.names:
                        add(f"{ROOT_PACKAGE}.{alias.name}", node)
                else:
                    add(node.module, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(ROOT_PACKAGE + "."):
                    add(alias.name, node)
    return edges


def check_layering(edges: List[ImportEdge]) -> List[Violation]:
    """LAY201/LAY202/LAY203 over the collected cross-package edges."""
    violations: List[Violation] = []
    known = set(LAYERS) | UNIVERSAL_PACKAGES | TOOL_PACKAGES
    flagged_unknown = set()

    for edge in edges:
        for package in (edge.source, edge.target):
            if package not in known and (edge.path, package) not in flagged_unknown:
                flagged_unknown.add((edge.path, package))
                violations.append(
                    Violation(
                        edge.path,
                        edge.line,
                        edge.col,
                        "LAY203",
                        f"package '{package}' is not in the declared layer "
                        "DAG — add it to repro.analysis.layering.LAYERS",
                    )
                )
        violation = _edge_violation(edge)
        if violation is not None:
            violations.append(violation)

    violations.extend(_cycle_violations(edges))
    return violations


def _edge_violation(edge: ImportEdge) -> Optional[Violation]:
    source, target = edge.source, edge.target
    if target in UNIVERSAL_PACKAGES:
        return None  # observability is importable from anywhere
    if source in TOOL_PACKAGES:
        return _lay201(
            edge,
            f"tool package '{source}' must not import runtime package "
            f"'{target}'",
        )
    if source in UNIVERSAL_PACKAGES:
        return _lay201(
            edge,
            f"'{source}' must stay import-free of the stack but imports "
            f"'{target}'",
        )
    if target in TOOL_PACKAGES:
        return _lay201(
            edge, f"runtime package '{source}' must not import tool '{target}'"
        )
    source_rank = LAYERS.get(source)
    target_rank = LAYERS.get(target)
    if source_rank is None or target_rank is None:
        return None  # LAY203 already reported the unknown package
    if target_rank >= source_rank:
        direction = "same-rank" if target_rank == source_rank else "upward"
        return _lay201(
            edge,
            f"{direction} import: '{source}' (rank {source_rank}) must not "
            f"import '{target}' (rank {target_rank})",
        )
    return None


def _lay201(edge: ImportEdge, message: str) -> Violation:
    return Violation(edge.path, edge.line, edge.col, "LAY201", message)


def _cycle_violations(edges: List[ImportEdge]) -> List[Violation]:
    """Detect package-level cycles and print one offending chain each."""
    graph: Dict[str, Dict[str, ImportEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.source, {}).setdefault(edge.target, edge)

    violations: List[Violation] = []
    reported: Set[FrozenSet[str]] = set()
    state: Dict[str, int] = {}  # 0 absent, 1 on stack, 2 done
    stack: List[str] = []

    def visit(package: str) -> None:
        state[package] = 1
        stack.append(package)
        for target in sorted(graph.get(package, ())):
            if state.get(target, 0) == 1:
                chain = stack[stack.index(target) :] + [target]
                key = frozenset(chain)
                if key not in reported:
                    reported.add(key)
                    edge = graph[package][target]
                    violations.append(
                        Violation(
                            edge.path,
                            edge.line,
                            edge.col,
                            "LAY202",
                            "import cycle between packages: "
                            + " -> ".join(chain),
                        )
                    )
            elif state.get(target, 0) == 0:
                visit(target)
        stack.pop()
        state[package] = 2

    for package in sorted(graph):
        if state.get(package, 0) == 0:
            visit(package)
    return violations


def declared_dag_rows() -> List[Tuple[int, str]]:
    """(rank, package) rows for documentation and ``--layers`` output."""
    rows = sorted((rank, package) for package, rank in LAYERS.items())
    return rows
