"""Recorder-discipline rule: hot paths pay for tracing only when it is on.

The observability layer's contract (PR 3) is that the *disabled* trace
path costs one predictable branch — ``benchmarks/
test_observability_overhead.py`` bounds it at ≤ 5 % of a composition.
That only holds if every recorder call on a hot path sits behind an
``enabled`` check, so argument construction (f-strings, dict packing,
len() calls) is skipped when nobody is tracing.

==========  ==========================================================
code        what it flags
==========  ==========================================================
``REC301``  a ``recorder.emit/inc/observe/set_gauge/record`` call in a
            hot-path module that is neither (a) inside an ``if`` whose
            test reads ``.enabled`` (directly or via a local alias like
            ``observing = recorder.enabled``) nor (b) preceded, in the
            same block, by an early exit of the form
            ``if not <enabled-flag>: return/continue/raise``.
==========  ==========================================================

Hot-path modules are the per-request compose machinery: everything in
``repro.core`` plus ``repro.topology.routing``.  Cold paths (setup,
reporting, the simulator's once-per-window bookkeeping) may call the
recorder unguarded — the no-op methods are cheap enough there.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.violations import Violation

#: modules whose recorder calls must be guarded
HOT_PATH_PACKAGES = frozenset({"repro.core"})
HOT_PATH_MODULES = frozenset({"repro.topology.routing"})

_RECORD_METHODS = frozenset({"emit", "inc", "observe", "set_gauge", "record"})
_RECORDER_NAMES = frozenset({"recorder", "_recorder"})
_EARLY_EXITS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def is_hot_path(module: Optional[str]) -> bool:
    """True when ``module`` carries the guarded-recorder requirement."""
    if module is None:
        return False
    if module in HOT_PATH_MODULES:
        return True
    return any(
        module == package or module.startswith(package + ".")
        for package in HOT_PATH_PACKAGES
    )


def _is_recorder_chain(node: ast.expr) -> bool:
    """``recorder`` / ``self.recorder`` / ``context.recorder`` etc."""
    if isinstance(node, ast.Name):
        return node.id in _RECORDER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _RECORDER_NAMES
    return False


def _mentions_enabled(node: ast.expr, aliases: Set[str]) -> bool:
    """Does a test expression read ``.enabled`` or a known alias of it?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "enabled":
            return True
        if isinstance(child, ast.Name) and child.id in aliases:
            return True
    return False


class RecorderDisciplineChecker:
    """Runs REC301 over one hot-path module."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.violations: List[Violation] = []
        self._parents: Dict[int, ast.AST] = {}
        self._aliases: Set[str] = set()

    def run(self) -> List[Violation]:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "enabled":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._aliases.add(target.id)
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORD_METHODS
                and _is_recorder_chain(node.func.value)
            ):
                if not self._is_guarded(node):
                    self.violations.append(
                        Violation(
                            self.path,
                            node.lineno,
                            node.col_offset + 1,
                            "REC301",
                            f"unguarded recorder.{node.func.attr}() on a hot "
                            "path — branch on `.enabled` (or an early "
                            "`if not <enabled>: return`) first",
                        )
                    )
        return self.violations

    # -- guard detection ----------------------------------------------------

    def _is_guarded(self, call: ast.Call) -> bool:
        node: ast.AST = call
        while True:
            parent = self._parents.get(id(node))
            if parent is None:
                return False
            if isinstance(parent, ast.If) and _mentions_enabled(
                parent.test, self._aliases
            ):
                return True
            if isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._has_early_exit_guard(parent, node):
                return True
            if self._statement_list_guard(parent, node):
                return True
            node = parent

    def _statement_list_guard(self, parent: ast.AST, node: ast.AST) -> bool:
        """An earlier ``if not <enabled>: return`` in the enclosing block."""
        for field in ("body", "orelse", "finalbody"):
            block = getattr(parent, field, None)
            if not isinstance(block, list) or node not in block:
                continue
            index = block.index(node)
            for statement in block[:index]:
                if (
                    isinstance(statement, ast.If)
                    and isinstance(statement.test, ast.UnaryOp)
                    and isinstance(statement.test.op, ast.Not)
                    and _mentions_enabled(statement.test.operand, self._aliases)
                    and statement.body
                    and isinstance(statement.body[-1], _EARLY_EXITS)
                ):
                    return True
        return False

    def _has_early_exit_guard(self, function: ast.AST, upto: ast.AST) -> bool:
        """The function opens with ``if not <enabled>: return`` before
        the statement containing the call."""
        body = function.body
        if upto in body:
            boundary = body.index(upto)
        else:
            boundary = len(body)
        for statement in body[:boundary]:
            if (
                isinstance(statement, ast.If)
                and isinstance(statement.test, ast.UnaryOp)
                and isinstance(statement.test.op, ast.Not)
                and _mentions_enabled(statement.test.operand, self._aliases)
                and statement.body
                and isinstance(statement.body[-1], _EARLY_EXITS)
            ):
                return True
        return False


def check_recorder_discipline(
    path: str, tree: ast.Module, module: Optional[str]
) -> List[Violation]:
    """All REC3xx violations for one parsed module (hot paths only)."""
    if not is_hot_path(module):
        return []
    return RecorderDisciplineChecker(path, tree).run()
