"""Shard-safety rules: state that breaks under partitioned simulation.

ROADMAP item 5 splits the simulator across workers (self-clustering
partitioning à la D'Angelo, PAPERS.md).  Every finding here is a piece
of state that is *already* a latent hazard — shared, unbounded, or
mutated across an ownership boundary — and becomes a nondeterminism or
leak bug the moment the tree is sharded.  Each message names the shard
boundary the pattern would break.

==========  =============================================================
code        what it flags
==========  =============================================================
``SHR401``  a module-level mutable container (dict/list/set literal or
            constructor) in a runtime package.  Module globals are
            process-global: under sharding each worker mutates its own
            silently-diverging copy.  Freeze it (tuple / frozenset /
            ``MappingProxyType``) or move it into owned instance state.
``SHR402``  an instance cache (``self.*cache*``/``self.*memo*``) built on
            a bare dict instead of ``repro.model.lru.LRUDict`` — the
            bounded-cache rule.  Unbounded per-shard caches keyed on
            node/source identity are the leak class the LRU bounds exist
            to prevent (DEVELOPMENT.md complexity-budget table).
``SHR403``  a listener registration (``add_*_listener(...)``) in a class
            with no matching ``remove_*_listener`` teardown anywhere in
            the class — the PR 6 leak class.  Under sharding, migrating
            or tearing down a partition must detach its listeners or the
            mesh keeps dead shards alive.
``SHR404``  mutation of an object received from another subsystem
            (attribute write through a parameter whose annotation
            resolves to a class in a different top-level package),
            bypassing the ``GlobalStateManager`` funnel.  Cross-shard
            writes must go through one auditable seam.
==========  =============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.context import AnalysisContext, ClassInfo, ModuleInfo
from repro.analysis.violations import Violation

#: value expressions that build a mutable container
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: packages exempt from the module-level-state rule (the tool package is
#: not runtime state; fixtures under other roots never match "repro.")
_TOOL_PREFIX = "repro.analysis"

#: the sanctioned cross-subsystem mutation funnel
_FUNNEL_MODULES = frozenset({"repro.state.global_state"})


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
            return True
    return False


def _is_lru_dict(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "LRUDict":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "LRUDict":
            return True
    return False


def _top_package(module: str) -> Optional[str]:
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1]


class ShardSafetyChecker:
    """Runs SHR401–SHR404 over the whole program."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        for info in self.context.modules.values():
            if (
                info.module == _TOOL_PREFIX
                or info.module.startswith(_TOOL_PREFIX + ".")
                or _top_package(info.module) is None
            ):
                continue
            self._check_module_globals(info)
            for cls in info.classes.values():
                self._check_instance_caches(info, cls)
                self._check_listener_teardown(info, cls)
            self._check_cross_subsystem_mutation(info)
        return self.violations

    def _emit(
        self, info: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        self.violations.append(
            Violation(
                info.path, node.lineno, node.col_offset + 1, code, message
            )
        )

    # -- SHR401: module-level mutable containers -----------------------------

    def _check_module_globals(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_container(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends are import-time only
                self._emit(
                    info,
                    node,
                    "SHR401",
                    f"module-level mutable container '{name}' is "
                    "process-global state — each worker of a sharded run "
                    "(ROADMAP item 5) would mutate a diverging copy; freeze "
                    "it (tuple/frozenset/MappingProxyType) or move it into "
                    "owned instance state",
                )

    # -- SHR402: unbounded instance caches -----------------------------------

    def _check_instance_caches(self, info: ModuleInfo, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    name = target.attr.lower()
                    if "cache" not in name and "memo" not in name:
                        continue
                    if _is_lru_dict(value) or not _is_mutable_container(value):
                        continue
                    self._emit(
                        info,
                        node,
                        "SHR402",
                        f"cache 'self.{target.attr}' in {cls.name} is a bare "
                        "mutable container — unbounded per-shard growth; use "
                        "repro.model.lru.LRUDict (counted, traced evictions) "
                        "or justify the bound",
                    )

    # -- SHR403: listener registrations without teardown ----------------------

    def _check_listener_teardown(self, info: ModuleInfo, cls: ClassInfo) -> None:
        registered: List[ast.Call] = []
        removed: Set[str] = set()
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                receiver = node.func.value
                is_self = (
                    isinstance(receiver, ast.Name) and receiver.id == "self"
                )
                if (
                    attr.startswith("add_")
                    and attr.endswith("_listener")
                    and not is_self
                ):
                    registered.append(node)
                elif attr.startswith("remove_") and attr.endswith("_listener"):
                    removed.add(attr[len("remove_") : -len("_listener")])
        for call in registered:
            func = call.func
            assert isinstance(func, ast.Attribute)
            kind = func.attr[len("add_") : -len("_listener")]
            if kind in removed:
                continue
            self._emit(
                info,
                call,
                "SHR403",
                f"{cls.name} registers an {func.attr}() callback but never "
                f"calls remove_{kind}_listener — the PR 6 leak class; under "
                "sharding a migrated/torn-down partition must detach its "
                "listeners (add a close() teardown)",
            )

    # -- SHR404: cross-subsystem mutation bypassing the funnel -----------------

    def _check_cross_subsystem_mutation(self, info: ModuleInfo) -> None:
        if info.module in _FUNNEL_MODULES:
            return
        own_package = _top_package(info.module)
        functions: List[ast.FunctionDef] = list(info.functions.values())
        for cls in info.classes.values():
            functions.extend(cls.methods.values())
        for function in functions:
            param_classes = self.context.param_classes_for(info, function)
            foreign = {
                name: cls
                for name, cls in param_classes.items()
                if name not in ("self", "cls")
                and _top_package(cls.module) not in (own_package, None)
            }
            if not foreign:
                continue
            for node in ast.walk(function):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    for assign_target in node.targets:
                        if isinstance(assign_target, ast.Attribute):
                            target = assign_target
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Attribute
                ):
                    target = node.target
                if target is None:
                    continue
                assert isinstance(target, ast.Attribute)
                owner = target.value
                if not (
                    isinstance(owner, ast.Name) and owner.id in foreign
                ):
                    continue
                holder = foreign[owner.id]
                self._emit(
                    info,
                    node,
                    "SHR404",
                    f"writes '{owner.id}.{target.attr}' on a "
                    f"{holder.name} owned by {holder.module} — a "
                    "cross-subsystem mutation outside the GlobalStateManager "
                    "funnel; under sharding this is a cross-shard write with "
                    "no ordering guarantee",
                )


def check_shard_safety(context: AnalysisContext) -> List[Violation]:
    """All SHR4xx violations for one whole-program context."""
    return ShardSafetyChecker(context).run()
