"""Violation records and the inline suppression syntax.

A violation pins one rule code to one source line.  Suppressions are
trailing comments on the *flagged* line, or — when the line has no room —
a comment-only line directly above it::

    for node_id in dirty:  # repro-lint: disable=DET103 -- patch order is commutative

    # repro-lint: disable=DET103 -- feeds .any() only; order unobservable
    np.fromiter(dirty, dtype=np.int64)

Everything after ``--`` is free-form justification.  Multiple codes
separate with commas (``disable=DET103,REC301``); ``disable=all``
silences every rule on that line.  Suppressions are deliberately
line-scoped — there is no file- or block-level off switch, so every
exception stays next to the code it excuses.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """pyflakes-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*(?:--|$))"
)

#: sentinel code meaning "every rule" in a suppression set
SUPPRESS_ALL = "ALL"


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number → rule codes suppressed on that line.

    Tokenizes rather than regex-scanning raw lines so a suppression
    marker inside a string literal is not honoured.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if not codes:
                continue
            line = _anchor_line(lines, token.start[0])
            suppressions[line] = codes | suppressions.get(line, frozenset())
    except tokenize.TokenError:
        pass  # a syntactically broken file reports a parse violation instead
    return suppressions


#: how far an anchor may travel past decorators to reach its def/class
_DECORATOR_SCAN_LIMIT = 20


def _anchor_line(lines: List[str], comment_line: int) -> int:
    """The source line a suppression comment shields.

    A trailing marker anchors to its own line.  A comment-only line
    anchors to the next *code* line — skipping further comment-only and
    blank lines (so stacked comments above a statement all anchor to the
    statement, not to each other).  When that code line is a decorator,
    the anchor continues to the decorated ``def``/``class`` line, because
    def-anchored rules report at the ``def``, not at the decorator.
    """
    index = comment_line - 1  # 0-based
    if index >= len(lines) or not lines[index].lstrip().startswith("#"):
        return comment_line  # trailing marker: own line
    index += 1
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped and not stripped.startswith("#"):
            break
        index += 1
    if index >= len(lines):
        return comment_line
    if lines[index].lstrip().startswith("@"):
        for scan in range(index + 1, min(index + 1 + _DECORATOR_SCAN_LIMIT, len(lines))):
            stripped = lines[scan].lstrip()
            if stripped.startswith(("def ", "async def ", "class ")):
                return scan + 1
    return index + 1


def apply_suppressions(
    violations: List[Violation], suppressions: Dict[int, FrozenSet[str]]
) -> List[Violation]:
    """Drop violations whose line carries a matching suppression."""
    kept: List[Violation] = []
    for violation in violations:
        codes = suppressions.get(violation.line)
        if codes is not None and (
            SUPPRESS_ALL in codes or violation.code in codes
        ):
            continue
        kept.append(violation)
    return kept
