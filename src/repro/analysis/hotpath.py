"""Hot-path budget rules: marked inner loops stay inside their O(...).

``@hot_path(budget="O(P × k)")`` (``repro.observability.hotpath``)
attaches DEVELOPMENT.md's complexity-budget table to the functions that
implement it.  This pass walks every marked function *and* its
statically-resolved callees (through the shared
:class:`~repro.analysis.context.AnalysisContext` call graph) and flags
O(N)-shaped work — the patterns PR 7 identified as what the 100k push
keeps re-introducing.

==========  =============================================================
code        what it flags
==========  =============================================================
``HOT501``  an O(N) materialisation — ``list``/``tuple``/``sorted`` over
            a node-indexed iterable (``.items()``/``.keys()``/
            ``.values()``, ``range(len(...))``, or a network/nodes/links
            value) inside a budgeted function.
``HOT502``  a dense square allocation — ``np.zeros((n, n))`` and friends
            with two identical dimensions: O(N²) resident memory, the
            eager-router bug class.
``HOT503``  a full scan of an instance map (``for ... in self.x.items()``)
            inside a budgeted function — bounded caches are fine, say so
            in a suppression; node-keyed maps are not.
``HOT504``  f-string construction outside a recorder guard and outside
            ``raise`` — per-call allocation the disabled-trace overhead
            budget does not cover.
``HOT505``  ``print``/``logging`` calls on the hot path (unguarded).
``HOT506``  marker problems: a function DEVELOPMENT.md's table names
            (compose wavefront, pruned scoring gather, incremental
            routing patch loops) missing its ``@hot_path`` marker, or a
            marker whose budget is not an ``O(...)`` string.
==========  =============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.context import AnalysisContext, ClassInfo, ModuleInfo
from repro.analysis.violations import Violation

#: functions the complexity-budget table names: they must carry the
#: marker so the table stays mechanically enforced
REQUIRED_HOT_PATHS: Dict[Tuple[str, str], str] = {
    ("repro.core.prober", "ProbingComposer.compose"): "the compose wavefront",
    ("repro.core.fastscore", "FastScorer.score_level"): (
        "the pruned scoring gather"
    ),
    ("repro.topology.routing", "OverlayRouter.set_down_nodes"): (
        "the incremental-routing node-churn patch loop"
    ),
    ("repro.topology.routing", "OverlayRouter.set_down_links"): (
        "the incremental-routing link-churn patch loop"
    ),
}

_MATERIALIZERS = frozenset({"list", "tuple", "sorted"})
_MAP_SCANS = frozenset({"items", "keys", "values"})
_DENSE_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})
#: terminal identifiers that proxy for "all N nodes / L links"
_N_PROXIES = frozenset(
    {"network", "nodes", "links", "members", "node_ids", "link_ids", "overlay"}
)
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_LOGGER_NAMES = frozenset({"logging", "logger", "log"})


def _decorator_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _hot_path_budget(
    function: ast.FunctionDef,
) -> Tuple[bool, Optional[str], Optional[ast.expr]]:
    """(is_marked, budget_or_None, decorator_node) for one function."""
    for decorator in function.decorator_list:
        if isinstance(decorator, ast.Call):
            if _decorator_name(decorator.func) != "hot_path":
                continue
            for keyword in decorator.keywords:
                if keyword.arg == "budget":
                    value = keyword.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        return True, value.value, decorator
                    return True, None, decorator
            if decorator.args:
                value = decorator.args[0]
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return True, value.value, decorator
            return True, None, decorator
        if _decorator_name(decorator) == "hot_path":
            return True, None, decorator
    return False, None, None


class _HotFunction:
    """One function the budget applies to (marked, or reached from one)."""

    __slots__ = ("info", "node", "qualname", "cls", "root", "budget")

    def __init__(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef,
        qualname: str,
        cls: Optional[ClassInfo],
        root: str,
        budget: str,
    ) -> None:
        self.info = info
        self.node = node
        self.qualname = qualname
        self.cls = cls
        self.root = root      # "module.Qualname" of the marked ancestor
        self.budget = budget


class HotPathChecker:
    """Runs HOT501–HOT506 over the whole program."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        marked = self._collect_marked()
        for hot in self._closure(marked):
            self._check_function(hot)
        return self.violations

    def _emit(
        self, info: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        self.violations.append(
            Violation(
                info.path, node.lineno, node.col_offset + 1, code, message
            )
        )

    # -- marker discovery (HOT506) ------------------------------------------

    def _collect_marked(self) -> List[_HotFunction]:
        marked: List[_HotFunction] = []
        for info in self.context.modules.values():
            candidates: List[Tuple[str, Optional[ClassInfo], ast.FunctionDef]] = [
                (name, None, node) for name, node in info.functions.items()
            ]
            for cls in info.classes.values():
                candidates.extend(
                    (f"{cls.name}.{name}", cls, node)
                    for name, node in cls.methods.items()
                )
            for qualname, cls, node in candidates:
                is_marked, budget, _decorator = _hot_path_budget(node)
                required = REQUIRED_HOT_PATHS.get((info.module, qualname))
                if not is_marked:
                    if required is not None:
                        self._emit(
                            info,
                            node,
                            "HOT506",
                            f"{qualname} is {required} — the complexity-"
                            "budget table requires an @hot_path(budget=...) "
                            "marker here",
                        )
                    continue
                if budget is None or "O(" not in budget:
                    self._emit(
                        info,
                        node,
                        "HOT506",
                        f"@hot_path on {qualname} needs budget=\"O(...)\" "
                        "in the vocabulary of DEVELOPMENT.md's complexity-"
                        "budget table",
                    )
                    budget = budget or "O(?)"
                marked.append(
                    _HotFunction(
                        info,
                        node,
                        qualname,
                        cls,
                        f"{info.module}.{qualname}",
                        budget,
                    )
                )
        return marked

    # -- callee closure ------------------------------------------------------

    def _closure(self, marked: List[_HotFunction]) -> List[_HotFunction]:
        out: List[_HotFunction] = []
        visited: Set[Tuple[str, str]] = set()
        queue = list(marked)
        while queue:
            hot = queue.pop(0)
            key = (hot.info.module, hot.qualname)
            if key in visited:
                continue
            visited.add(key)
            out.append(hot)
            param_classes = self.context.param_classes_for(hot.info, hot.node)
            for node in ast.walk(hot.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.context.resolve_call(
                    hot.info, node, hot.cls, param_classes
                )
                if resolved is None:
                    continue
                target_module, qualname, target = resolved
                info = self.context.modules.get(target_module)
                if info is None or (target_module, qualname) in visited:
                    continue
                cls_name = qualname.split(".")[0] if "." in qualname else None
                cls = info.classes.get(cls_name) if cls_name else None
                queue.append(
                    _HotFunction(
                        info, target, qualname, cls, hot.root, hot.budget
                    )
                )
        return out

    # -- per-function checks -------------------------------------------------

    def _check_function(self, hot: _HotFunction) -> None:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(hot.node):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        where = f"inside @hot_path {hot.root} (budget {hot.budget})"
        for node in ast.walk(hot.node):
            if isinstance(node, ast.Call):
                self._check_call(hot, node, parents, where)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_map_scan(hot, node.iter, where)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    self._check_map_scan(hot, generator.iter, where)
            elif isinstance(node, ast.JoinedStr) and node.values:
                if not _inside(node, parents, (ast.Raise, ast.Assert)) and not (
                    _recorder_guarded(node, parents)
                ):
                    self._emit(
                        hot.info,
                        node,
                        "HOT504",
                        f"f-string allocation {where} — move it behind a "
                        "recorder `.enabled` guard or off the hot path",
                    )

    def _check_call(
        self,
        hot: _HotFunction,
        call: ast.Call,
        parents: Dict[int, ast.AST],
        where: str,
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if (
                func.id in _MATERIALIZERS
                and call.args
                and _is_n_shaped(call.args[0])
            ):
                self._emit(
                    hot.info,
                    call,
                    "HOT501",
                    f"{func.id}(...) materialises an O(N)-shaped iterable "
                    f"{where} — stream it, bound it, or justify the size",
                )
            elif func.id == "print" and not _recorder_guarded(call, parents):
                self._emit(
                    hot.info,
                    call,
                    "HOT505",
                    f"print() {where} — use the recorder behind an "
                    "`.enabled` guard",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr in _DENSE_ALLOCATORS and call.args:
                shape = call.args[0]
                if isinstance(shape, ast.Tuple) and len(shape.elts) >= 2:
                    dims = [ast.dump(element) for element in shape.elts]
                    if len(set(dims)) < len(dims):
                        self._emit(
                            hot.info,
                            call,
                            "HOT502",
                            f"dense square allocation .{func.attr}((n, n)) "
                            f"{where} — O(N²) resident memory, the "
                            "eager-router bug class",
                        )
            elif (
                func.attr in _LOG_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in _LOGGER_NAMES
                and not _recorder_guarded(call, parents)
            ):
                self._emit(
                    hot.info,
                    call,
                    "HOT505",
                    f"logging call {where} — use the recorder behind an "
                    "`.enabled` guard",
                )

    def _check_map_scan(
        self, hot: _HotFunction, iterable: ast.expr, where: str
    ) -> None:
        if not (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in _MAP_SCANS
        ):
            return
        receiver = iterable.func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            self._emit(
                hot.info,
                iterable,
                "HOT503",
                f"full .{iterable.func.attr}() scan of self.{receiver.attr} "
                f"{where} — bounded caches justify with a suppression; "
                "node-keyed maps move off the hot path",
            )


def _inside(
    node: ast.AST, parents: Dict[int, ast.AST], kinds: Tuple[type, ...]
) -> bool:
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        if isinstance(current, kinds):
            return True
        current = parents.get(id(current))
    return False


def _recorder_guarded(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """Inside an ``if`` whose test reads ``.enabled`` (or an ``observing``
    style alias containing 'enabled'/'observing'/'tracing')."""
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        if isinstance(current, ast.If):
            for child in ast.walk(current.test):
                if isinstance(child, ast.Attribute) and child.attr == "enabled":
                    return True
                if isinstance(child, ast.Name) and (
                    "enabled" in child.id
                    or "observing" in child.id
                    or "tracing" in child.id
                ):
                    return True
        current = parents.get(id(current))
    return False


def _is_n_shaped(node: ast.expr) -> bool:
    """Syntactically looks like "all nodes/links of the network"."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MAP_SCANS:
            return True
        if (
            isinstance(func, ast.Name)
            and func.id == "range"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "len"
        ):
            return True
        return False
    terminal: Optional[str] = None
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    return terminal is not None and terminal.lower() in _N_PROXIES


def check_hot_paths(context: AnalysisContext) -> List[Violation]:
    """All HOT5xx violations for one whole-program context."""
    return HotPathChecker(context).run()
