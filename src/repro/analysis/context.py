"""Whole-program analysis context: every module parsed once, plus a
call-graph resolver.

PR 4's engine ran each rule family over one file at a time; the
dataflow rule families (RNG provenance, shard safety, hot-path budgets)
need to see *across* files — which module a call lands in, what class a
parameter annotation names, which methods a class defines.
:class:`AnalysisContext` is that shared view:

* :attr:`AnalysisContext.modules` — dotted name → :class:`ModuleInfo`
  (path, AST, source, parsed suppressions), built once per lint run;
* per-module import maps (local name → fully-qualified target);
* a function/class table (``module``, ``qualname`` → AST node), with
  per-class method tables and single-level base resolution;
* :meth:`AnalysisContext.resolve_call` — the shared static call
  resolver the provenance and budget passes walk.

Resolution is deliberately conservative: a call that cannot be resolved
statically (a method on an arbitrary object, a callable passed as a
value) resolves to ``None`` and the rule passes skip it.  False
negatives are acceptable here; false positives cost suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and attribute types."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: base-class names as written (resolved lazily through imports)
    bases: List[str] = field(default_factory=list)
    #: ``self.<attr> = ClassName(...)`` assignments seen in any method
    attribute_classes: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file and its per-file derived tables."""

    path: str
    module: str
    tree: ast.Module
    source: str
    suppressions: Dict[int, FrozenSet[str]]
    #: local name → fully-qualified import target ("random", "repro.x.y",
    #: "repro.x.y.Class") for both ``import`` and ``from`` forms
    imports: Dict[str, str] = field(default_factory=dict)
    #: top-level functions by name
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: top-level classes by name
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def build_tables(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node)
            elif isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = _build_class(self.module, node)
            elif isinstance(node, ast.If):
                # imports under ``if TYPE_CHECKING:`` still resolve names
                for child in node.body:
                    if isinstance(child, (ast.Import, ast.ImportFrom)):
                        self._record_import(child)

    def _record_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                self.imports[local] = f"{node.module}.{alias.name}"


def _build_class(module: str, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(module=module, name=node.name, node=node)
    for base in node.bases:
        if isinstance(base, ast.Name):
            info.bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            info.bases.append(base.attr)
    for child in node.body:
        if isinstance(child, ast.FunctionDef):
            info.methods[child.name] = child
            for stmt in ast.walk(child):
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    callee = stmt.value.func
                    if isinstance(callee, ast.Name):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                info.attribute_classes[target.attr] = callee.id
    return info


#: a resolved call target: the defining module, its qualified name
#: ("func" or "Class.method"), and the function node itself
ResolvedCall = Tuple[str, str, ast.FunctionDef]


class AnalysisContext:
    """All modules of one lint run, with shared resolution helpers."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        for info in modules:
            info.build_tables()
            self.modules[info.module] = info

    # -- class / import resolution ------------------------------------------

    def resolve_class(
        self, info: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a local class name refers to, following
        one import hop (``from repro.x import Cls``)."""
        local = info.classes.get(name)
        if local is not None:
            return local
        target = info.imports.get(name)
        if target is None or "." not in target:
            return None
        target_module, _, target_name = target.rpartition(".")
        remote = self.modules.get(target_module)
        if remote is None:
            return None
        return remote.classes.get(target_name)

    def class_of_annotation(
        self, info: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[ClassInfo]:
        """The class an annotation names (``Cls``, ``"Cls"``,
        ``Optional[Cls]``), resolved through imports."""
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X] / "X" | None
            node = node.slice
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            node = node.left
        if isinstance(node, ast.Name):
            return self.resolve_class(info, node.id)
        if isinstance(node, ast.Attribute):
            return self.resolve_class(info, node.attr)
        return None

    def method_on(
        self, cls: ClassInfo, name: str
    ) -> Optional[ResolvedCall]:
        """Resolve a method on a class, following one base-class hop."""
        node = cls.methods.get(name)
        if node is not None:
            return (cls.module, f"{cls.name}.{name}", node)
        owner = self.modules.get(cls.module)
        if owner is None:
            return None
        for base_name in cls.bases:
            base = self.resolve_class(owner, base_name)
            if base is not None and name in base.methods:
                return (base.module, f"{base.name}.{name}", base.methods[name])
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self,
        info: ModuleInfo,
        call: ast.Call,
        current_class: Optional[ClassInfo] = None,
        param_classes: Optional[Dict[str, ClassInfo]] = None,
    ) -> Optional[ResolvedCall]:
        """Statically resolve a call to its defining function, or None.

        Handles: local functions, imported functions, class constructors
        (resolving to ``__init__``), ``module.func()`` on an imported
        module alias, ``self.method()`` (with one base-class hop and
        ``self.<attr> = Cls(...)`` attribute types), and ``param.method()``
        for parameters whose annotation resolves to a known class
        (``param_classes``, keyed by parameter name).
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(info, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id in ("self", "cls") and current_class is not None:
                direct = self.method_on(current_class, func.attr)
                if direct is not None:
                    return direct
                attr_cls_name = current_class.attribute_classes.get(func.attr)
                if attr_cls_name is not None:
                    return None
                return None
            if param_classes and owner.id in param_classes:
                return self.method_on(param_classes[owner.id], func.attr)
            target = info.imports.get(owner.id)
            if target is not None:
                remote = self.modules.get(target)
                if remote is not None:
                    return self._resolve_in_module(remote, func.attr)
            return None
        if (
            isinstance(owner, ast.Attribute)
            and isinstance(owner.value, ast.Name)
            and owner.value.id in ("self", "cls")
            and current_class is not None
        ):
            # self.<attr>.method() where __init__ did self.<attr> = Cls(...)
            attr_cls_name = current_class.attribute_classes.get(owner.attr)
            if attr_cls_name is not None:
                module = self.modules.get(current_class.module)
                if module is not None:
                    cls = self.resolve_class(module, attr_cls_name)
                    if cls is not None:
                        return self.method_on(cls, func.attr)
        return None

    def _resolve_name_call(
        self, info: ModuleInfo, name: str
    ) -> Optional[ResolvedCall]:
        if name in info.functions:
            return (info.module, name, info.functions[name])
        if name in info.classes:
            return self.method_on(info.classes[name], "__init__")
        target = info.imports.get(name)
        if target is None or "." not in target:
            return None
        target_module, _, target_name = target.rpartition(".")
        remote = self.modules.get(target_module)
        if remote is None:
            return None
        return self._resolve_in_module(remote, target_name)

    def _resolve_in_module(
        self, remote: ModuleInfo, name: str
    ) -> Optional[ResolvedCall]:
        if name in remote.functions:
            return (remote.module, name, remote.functions[name])
        if name in remote.classes:
            return self.method_on(remote.classes[name], "__init__")
        return None

    def param_classes_for(
        self, info: ModuleInfo, function: ast.FunctionDef
    ) -> Dict[str, ClassInfo]:
        """Parameter name → resolved annotation class, for one function."""
        out: Dict[str, ClassInfo] = {}
        args = function.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            cls = self.class_of_annotation(info, arg.annotation)
            if cls is not None:
                out[arg.arg] = cls
        return out
