"""Command-line interface for the reproduction experiments.

Regenerate any evaluation figure, or run a one-point algorithm comparison,
without writing Python::

    repro-experiments fig6 --scale fast
    repro-experiments fig8 --scale paper --seed 3 -o fig8.txt
    repro-experiments compare --rate 60 --nodes 200
    repro-experiments fig5a --rates 50,100 --ratios 0.1,0.3,1.0

``--scale paper`` runs Section 4.1's full setup (3200 routers, 100-minute
horizons) and can take tens of minutes per figure; ``--scale fast`` (the
default) shrinks the substrate and horizon while preserving every shape.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from types import MappingProxyType
from typing import List, Optional, Sequence

from repro.experiments import (
    ALGORITHMS,
    DEFAULT_FAULT_PLAN,
    DEFAULT_LOAD_MULTIPLIERS,
    DEFAULT_MIGRATION_PLAN,
    FAST_SCALE,
    PAPER_SCALE,
    POPULATION_SCENARIOS,
    default_spec,
    format_faults_table,
    format_fig8_table,
    format_figure_table,
    format_migration_table,
    format_population_table,
    format_report_summary,
    run_faults,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig7,
    run_fig8,
    run_migration,
    run_population,
    run_specs,
)
from repro.experiments.runner import build_simulator
from repro.middleware import RecoveryPolicy
from repro.observability import (
    TraceRecorder,
    format_trace_summary,
    read_trace,
    summarize_trace,
    write_jsonl,
)

# read-only by construction: a worker mutating its copy of the scale map
# would silently diverge from its siblings under sharded runs
SCALES = MappingProxyType({"paper": PAPER_SCALE, "fast": FAST_SCALE})


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The repro-experiments argument parser (one subcommand per figure)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale", choices=sorted(SCALES), default="fast",
        help="experiment scale (default: fast)",
    )
    common.add_argument("--seed", type=int, default=0, help="master seed")
    common.add_argument(
        "--nodes", type=int, default=400,
        help="overlay node count where the figure fixes it (default: 400)",
    )
    common.add_argument(
        "-o", "--output", default=None,
        help="also write the rendered tables to this file",
    )
    common.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the figure's independent simulation points on N worker "
        "processes (results are identical to a serial run; default: serial)",
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of 'Optimal Component "
        "Composition for Scalable Stream Processing' (ICDCS 2005).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str) -> argparse.ArgumentParser:
        return commands.add_parser(name, help=help_text, parents=[common])

    fig5a = add_command("fig5a", "success vs probing ratio by load")
    fig5a.add_argument("--rates", type=_floats, default=[50.0, 100.0])
    fig5a.add_argument(
        "--ratios", type=_floats, default=[0.1, 0.2, 0.3, 0.5, 0.7, 1.0]
    )

    fig5b = add_command("fig5b", "success vs probing ratio by QoS")
    fig5b.add_argument("--levels", default="high,very_high")
    fig5b.add_argument("--rate", type=float, default=50.0)
    fig5b.add_argument(
        "--ratios", type=_floats, default=[0.1, 0.2, 0.3, 0.5, 0.7, 1.0]
    )

    fig6 = add_command("fig6", "efficiency vs request rate")
    fig6.add_argument(
        "--rates", type=_floats, default=[20.0, 40.0, 60.0, 80.0, 100.0]
    )
    fig6.add_argument("--algorithms", default=",".join(ALGORITHMS))

    fig7 = add_command("fig7", "scalability vs node count")
    fig7.add_argument("--counts", type=_ints, default=[200, 300, 400, 500, 600])
    fig7.add_argument("--rate", type=float, default=80.0)
    fig7.add_argument("--algorithms", default=",".join(ALGORITHMS))

    fig8 = add_command("fig8", "adaptability under dynamic load")
    fig8.add_argument("--target", type=float, default=0.75)

    faults = add_command("faults", "session survival under the fault cocktail")
    faults.add_argument(
        "--node-fail", type=float, default=DEFAULT_FAULT_PLAN.node_fail_probability,
        help="per-round node crash probability",
    )
    faults.add_argument(
        "--link-fail", type=float, default=DEFAULT_FAULT_PLAN.link_fail_probability,
        help="per-round overlay link failure probability",
    )
    faults.add_argument(
        "--probe-loss", type=float,
        default=DEFAULT_FAULT_PLAN.probe_loss_probability,
        help="per-message probe loss probability on the control plane",
    )
    faults.add_argument(
        "--state-loss", type=float,
        default=DEFAULT_FAULT_PLAN.state_update_loss_probability,
        help="per-message state-update loss probability",
    )
    faults.add_argument(
        "--recovery-deadline", type=float, default=30.0,
        help="seconds a disrupted session may spend recovering (default: 30)",
    )
    faults.add_argument(
        "--detection-delay", type=float, default=2.0,
        help="seconds between a fault and the recovery sweep (default: 2)",
    )

    migrate = add_command(
        "migrate", "proactive live migration vs recover-only under load drift"
    )
    migrate.add_argument(
        "--load", type=float, default=0.75,
        help="population load multiplier on the diurnal curve (default: 0.75; "
        "higher drowns the whole system and leaves no cool targets)",
    )
    migrate.add_argument(
        "--spike-peak", type=float, default=4.0,
        help="regional flash-crowd peak multiplier driving the hotspot "
        "(default: 4)",
    )
    migrate.add_argument(
        "--high-watermark", type=float,
        default=DEFAULT_MIGRATION_PLAN.policy.high_watermark,
        help="sustained-EWMA utilisation above which a node is hot",
    )
    migrate.add_argument(
        "--sustain", type=int,
        default=DEFAULT_MIGRATION_PLAN.policy.sustain_rounds,
        help="consecutive hot rounds before migration triggers",
    )
    migrate.add_argument(
        "--round-cap", type=int,
        default=DEFAULT_MIGRATION_PLAN.policy.max_session_migrations_per_round,
        help="max session migrations per rebalance round",
    )

    population = add_command(
        "population", "population-scale workloads: overload, diurnal, flash crowds"
    )
    population.add_argument(
        "--scenarios", default=",".join(POPULATION_SCENARIOS),
        help="comma-separated scenario names "
        f"(default: {','.join(POPULATION_SCENARIOS)})",
    )
    population.add_argument(
        "--multipliers", type=_floats,
        default=list(DEFAULT_LOAD_MULTIPLIERS),
        help="load multipliers on the mean population (default: 1,10,100)",
    )
    population.add_argument(
        "--users", type=float, default=25.0,
        help="mean active users at 1x load (default: 25)",
    )
    population.add_argument(
        "--user-rate", type=float, default=2.0,
        help="requests per user per minute (default: 2)",
    )

    compare = add_command("compare", "all algorithms at one workload point")
    compare.add_argument("--rate", type=float, default=60.0)
    compare.add_argument("--algorithms", default=",".join(ALGORITHMS))

    trace = add_command("trace", "run one traced simulation, export JSONL")
    trace.add_argument("--rate", type=float, default=60.0)
    trace.add_argument(
        "--adaptive", action="store_true",
        help="attach the adaptive probing-ratio tuner (ACP)",
    )
    trace.add_argument("--target", type=float, default=0.75)
    trace.add_argument(
        "--faults", action="store_true",
        help="inject the default fault cocktail with session recovery "
        "(fault and recovery events land in the trace)",
    )
    trace.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds (default: the scale's duration)",
    )
    trace.add_argument(
        "--trace-out", default="trace.jsonl",
        help="JSONL trace destination (default: trace.jsonl)",
    )

    summary = commands.add_parser(
        "trace-summary", help="summarise a JSONL trace file"
    )
    summary.add_argument("trace_file", help="path to a trace JSONL file")
    summary.add_argument(
        "-o", "--output", default=None,
        help="also write the rendered summary to this file",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "a", encoding="utf-8") as sink:
            sink.write(text + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse, run the requested experiment, emit tables."""
    args = build_parser().parse_args(argv)
    if args.command == "trace-summary":
        summary = summarize_trace(read_trace(args.trace_file))
        _emit(format_trace_summary(summary), args.output)
        return 0
    scale = SCALES[args.scale]

    if args.command == "fig5a":
        result = run_fig5a(
            scale=scale, request_rates=args.rates, probing_ratios=args.ratios,
            num_nodes=args.nodes, seed=args.seed, workers=args.workers,
        )
        _emit(format_figure_table(result), args.output)
    elif args.command == "fig5b":
        result = run_fig5b(
            scale=scale,
            qos_levels=args.levels.split(","),
            request_rate=args.rate,
            probing_ratios=args.ratios,
            num_nodes=args.nodes,
            seed=args.seed,
            workers=args.workers,
        )
        _emit(format_figure_table(result), args.output)
    elif args.command == "fig6":
        success, overhead = run_fig6(
            scale=scale,
            request_rates=args.rates,
            algorithms=args.algorithms.split(","),
            num_nodes=args.nodes,
            seed=args.seed,
            workers=args.workers,
        )
        _emit(format_figure_table(success), args.output)
        _emit("", args.output)
        _emit(format_figure_table(overhead, percent=False), args.output)
    elif args.command == "fig7":
        success, overhead = run_fig7(
            scale=scale,
            node_counts=args.counts,
            algorithms=args.algorithms.split(","),
            request_rate=args.rate,
            seed=args.seed,
            workers=args.workers,
        )
        _emit(format_figure_table(success), args.output)
        _emit("", args.output)
        _emit(format_figure_table(overhead, percent=False), args.output)
    elif args.command == "fig8":
        fixed, adaptive = run_fig8(
            scale=scale, target_success_rate=args.target,
            num_nodes=args.nodes, seed=args.seed, workers=args.workers,
        )
        _emit(format_fig8_table(fixed), args.output)
        _emit("", args.output)
        _emit(format_fig8_table(adaptive), args.output)
    elif args.command == "faults":
        plan = replace(
            DEFAULT_FAULT_PLAN,
            node_fail_probability=args.node_fail,
            link_fail_probability=args.link_fail,
            probe_loss_probability=args.probe_loss,
            state_update_loss_probability=args.state_loss,
        )
        result = run_faults(
            scale=scale,
            num_nodes=args.nodes,
            seed=args.seed,
            plan=plan,
            recovery=RecoveryPolicy(
                recovery_deadline_s=args.recovery_deadline,
                detection_delay_s=args.detection_delay,
            ),
            workers=args.workers,
        )
        _emit(format_faults_table(result), args.output)
    elif args.command == "migrate":
        plan = replace(
            DEFAULT_MIGRATION_PLAN,
            policy=replace(
                DEFAULT_MIGRATION_PLAN.policy,
                high_watermark=args.high_watermark,
                sustain_rounds=args.sustain,
                max_session_migrations_per_round=args.round_cap,
            ),
        )
        result = run_migration(
            scale=scale,
            num_nodes=args.nodes,
            seed=args.seed,
            load_multiplier=args.load,
            spike_peak=args.spike_peak,
            plan=plan,
            workers=args.workers,
        )
        _emit(format_migration_table(result), args.output)
    elif args.command == "population":
        result = run_population(
            scale=scale,
            scenarios=args.scenarios.split(","),
            multipliers=args.multipliers,
            mean_active_users=args.users,
            requests_per_user_per_min=args.user_rate,
            num_nodes=args.nodes,
            seed=args.seed,
            workers=args.workers,
        )
        _emit(format_population_table(result), args.output)
    elif args.command == "compare":
        base = default_spec(
            scale=scale, num_nodes=args.nodes, rate_per_min=args.rate,
            seed=args.seed,
        )
        reports = run_specs(
            [base.with_algorithm(name) for name in args.algorithms.split(",")],
            workers=args.workers,
        )
        _emit(format_report_summary(reports), args.output)
    elif args.command == "trace":
        spec = default_spec(
            scale=scale, num_nodes=args.nodes, rate_per_min=args.rate,
            seed=args.seed,
        )
        if args.adaptive:
            spec = replace(
                spec, adaptive=True, target_success_rate=args.target
            )
        if args.faults:
            spec = spec.with_faults(DEFAULT_FAULT_PLAN, RecoveryPolicy())
        if args.duration is not None:
            spec = replace(spec, duration_s=args.duration)
        recorder = TraceRecorder()
        simulator = build_simulator(spec, recorder=recorder)
        simulator.run(spec.duration_s)
        records = write_jsonl(args.trace_out, recorder)
        print(f"wrote {records} records to {args.trace_out}")
        _emit(
            format_trace_summary(summarize_trace(read_trace(args.trace_out))),
            args.output,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
