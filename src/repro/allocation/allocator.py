"""Resource allocation: transient probe-time reservations and sessions.

Section 3.3, per-hop probe processing: "the node performs *transient
resource allocation* to avoid conflicting resource admission caused by
concurrent probings for different requests.  The transient resource
allocation will be cancelled after a timeout period if the node does not
receive a confirmation message."  Footnote 7: "each node only temporarily
reserves resources *once* for each component in each request."

Step 4: "The confirmation message makes transient resource allocation
permanent on the selected nodes and virtual links."

:class:`ResourceAllocator` owns both halves:

* a **transient ledger** keyed by request id — at most one reservation per
  (request, component), all cancellable as a unit, with an expiry deadline
  enforced by :meth:`expire_due`;
* **session allocations** — the permanent, atomic admission of a selected
  :class:`ComponentGraph`: aggregate per-node resource demand plus
  per-overlay-link bandwidth demand (a request whose virtual links share an
  overlay link pays for it once per virtual link), released together when
  the session closes.

Link bandwidth is checked at probe time and allocated at confirmation but
not reserved transiently; with node resources — the contended quantity —
covered by the ledger, this matches footnote 7's once-per-component rule
without tripling ledger traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.component import Component
from repro.model.component_graph import ComponentGraph
from repro.model.resources import ResourceSchema, ResourceVector
from repro.topology.overlay import OverlayNetwork
from repro.topology.routing import OverlayRouter


class AdmissionError(RuntimeError):
    """Raised when a composition cannot be admitted atomically."""


@dataclass
class SessionAllocation:
    """The permanent footprint of one running stream processing session."""

    request_id: int
    node_demands: Dict[int, ResourceVector]
    link_demands: Dict[int, float]
    released: bool = False


@dataclass
class _TransientLedger:
    """All transient reservations held by one request."""

    request_id: int
    expires_at: float
    #: (component_id) -> (node_id, amount) actually held on the node
    holdings: Dict[int, Tuple[int, ResourceVector]] = field(default_factory=dict)

    def amount_on_node(self, node_id: int, schema: ResourceSchema) -> ResourceVector:
        """Total transiently-held resources on one node."""
        total = self.amount_on_node_or_none(node_id)
        return ResourceVector.zero(schema) if total is None else total

    def amount_on_node_or_none(self, node_id: int) -> Optional[ResourceVector]:
        """Like :meth:`amount_on_node`, but ``None`` when nothing is held —
        lets the probing hot path skip a zero-vector construction and an
        add per query (most queried nodes hold nothing)."""
        total: Optional[ResourceVector] = None
        for held_node, amount in self.holdings.values():
            if held_node == node_id:
                total = amount if total is None else total + amount
        return total


class ResourceAllocator:
    """Transient and permanent resource admission over one overlay."""

    def __init__(
        self,
        network: OverlayNetwork,
        router: OverlayRouter,
        transient_timeout_s: float = 10.0,
    ) -> None:
        if transient_timeout_s <= 0.0:
            raise ValueError(f"timeout must be positive, got {transient_timeout_s}")
        self.network = network
        self.router = router
        self.transient_timeout_s = transient_timeout_s
        self._ledgers: Dict[int, _TransientLedger] = {}
        self._sessions: Dict[int, SessionAllocation] = {}
        #: total transient reservations that expired un-confirmed (diagnostics)
        self.expired_reservations = 0

    # -- transient path ---------------------------------------------------------

    def reserve_component(
        self,
        request_id: int,
        component: Component,
        amount: ResourceVector,
        now: float = 0.0,
    ) -> bool:
        """Transiently reserve ``amount`` on ``component``'s node.

        Idempotent per (request, component) — a second reservation for the
        same pair is a no-op returning True (footnote 7).  Returns False
        without side effects if the node lacks the resources.
        """
        ledger = self._ledgers.get(request_id)
        if ledger is None:
            ledger = _TransientLedger(
                request_id, expires_at=now + self.transient_timeout_s
            )
            self._ledgers[request_id] = ledger
        if component.component_id in ledger.holdings:
            return True
        node = self.network.node(component.node_id)
        if not node.can_allocate(amount):
            return False
        node.allocate(amount)
        ledger.holdings[component.component_id] = (component.node_id, amount)
        ledger.expires_at = now + self.transient_timeout_s
        return True

    def has_reservation(self, request_id: int, component_id: int) -> bool:
        """Whether (request, component) already holds a reservation."""
        ledger = self._ledgers.get(request_id)
        return ledger is not None and component_id in ledger.holdings

    def available_excluding(self, request_id: int, node_id: int) -> ResourceVector:
        """A node's availability with this request's own transient holdings
        added back — the "current available resources" figure Fig. 4's
        congestion arithmetic expects."""
        node = self.network.node(node_id)
        available = node.available
        ledger = self._ledgers.get(request_id)
        if ledger is not None:
            held = ledger.amount_on_node_or_none(node_id)
            if held is not None:
                available = available + held
        return available

    def cancel_transient(self, request_id: int) -> None:
        """Release every transient reservation held by ``request_id``."""
        ledger = self._ledgers.pop(request_id, None)
        if ledger is None:
            return
        for node_id, amount in ledger.holdings.values():
            self.network.node(node_id).release(amount)

    def expire_due(self, now: float) -> List[int]:
        """Cancel all ledgers whose deadline passed; returns their ids.

        This is the paper's timeout: "cancelled after a timeout period if
        the node does not receive a confirmation message".
        """
        due = [
            request_id
            for request_id, ledger in self._ledgers.items()
            if ledger.expires_at <= now
        ]
        for request_id in due:
            self.cancel_transient(request_id)
            self.expired_reservations += 1
        return due

    @property
    def transient_request_ids(self) -> Tuple[int, ...]:
        return tuple(self._ledgers)

    # -- permanent path ---------------------------------------------------------

    def _demands_of(
        self, composition: ComponentGraph
    ) -> Tuple[Dict[int, ResourceVector], Dict[int, float]]:
        request = composition.request
        node_demands: Dict[int, ResourceVector] = {}
        for index in range(len(request.function_graph)):
            component = composition.component(index)
            requirement = request.requirement_for(index)
            if component.node_id in node_demands:
                node_demands[component.node_id] = (
                    node_demands[component.node_id] + requirement
                )
            else:
                node_demands[component.node_id] = requirement
        link_demands: Dict[int, float] = {}
        for edge, virtual_link in composition.virtual_links.items():
            bandwidth = request.bandwidth_for(edge)
            for link_id in virtual_link.overlay_link_ids:
                link_demands[link_id] = link_demands.get(link_id, 0.0) + bandwidth
        return node_demands, link_demands

    def commit(self, composition: ComponentGraph) -> SessionAllocation:
        """Make the selected composition permanent (confirmation message).

        Cancels the request's transient reservations, then atomically
        admits the aggregate demand.  On any shortfall everything is rolled
        back and :class:`AdmissionError` is raised.
        """
        request = composition.request
        if request.request_id in self._sessions:
            raise AdmissionError(f"request {request.request_id} already has a session")
        self.cancel_transient(request.request_id)
        node_demands, link_demands = self._demands_of(composition)

        for node_id, demand in node_demands.items():
            if not self.network.node(node_id).can_allocate(demand):
                raise AdmissionError(
                    f"node v{node_id} cannot admit {demand} for "
                    f"request {request.request_id}"
                )
        for link_id, kbps in link_demands.items():
            if not self.network.link(link_id).can_allocate(kbps):
                raise AdmissionError(
                    f"overlay link e{link_id} cannot admit {kbps:.1f} kbps for "
                    f"request {request.request_id}"
                )

        allocated_nodes: List[int] = []
        allocated_links: List[int] = []
        try:
            for node_id, demand in node_demands.items():
                self.network.node(node_id).allocate(demand)
                allocated_nodes.append(node_id)
            for link_id, kbps in link_demands.items():
                self.network.link(link_id).allocate_bandwidth(kbps)
                allocated_links.append(link_id)
        except Exception:
            for node_id in allocated_nodes:
                self.network.node(node_id).release(node_demands[node_id])
            for link_id in allocated_links:
                self.network.link(link_id).release_bandwidth(link_demands[link_id])
            raise

        allocation = SessionAllocation(request.request_id, node_demands, link_demands)
        self._sessions[request.request_id] = allocation
        return allocation

    def release(self, allocation: SessionAllocation) -> None:
        """Tear down a session's footprint (the Close() path)."""
        if allocation.released:
            raise ValueError(f"session {allocation.request_id} already released")
        stored = self._sessions.pop(allocation.request_id, None)
        if stored is not allocation:
            raise ValueError(
                f"allocation for request {allocation.request_id} is not active"
            )
        for node_id, demand in allocation.node_demands.items():
            self.network.node(node_id).release(demand)
        for link_id, kbps in allocation.link_demands.items():
            self.network.link(link_id).release_bandwidth(kbps)
        allocation.released = True

    def session(self, request_id: int) -> Optional[SessionAllocation]:
        return self._sessions.get(request_id)

    @property
    def active_session_count(self) -> int:
        return len(self._sessions)
