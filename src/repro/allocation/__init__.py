"""Resource admission: transient probe-time reservations and sessions."""

from repro.allocation.allocator import (
    AdmissionError,
    ResourceAllocator,
    SessionAllocation,
)

__all__ = ["AdmissionError", "ResourceAllocator", "SessionAllocation"]
