"""Node failure injection.

Section 2.1 motivates the overlay mesh with failure resilience ("For
failure resilience, we connect distributed nodes using application-level
overlay links into an overlay mesh"); this module supplies the failures
that resilience is measured against.

:class:`FailureInjector` crashes and recovers stream processing nodes
stochastically.  A crash:

* terminates every running session that placed a component on the node
  (their resources are released everywhere — the bookkeeping view of
  "the application went down");
* makes the node's components unusable for composition (composers check
  :attr:`Node.alive`) and the node unable to admit resources;
* removes the node from overlay routing, so virtual links re-route around
  it (or become unavailable if it was a cut vertex).

Recovery reverses the last two.  Per round, each alive node fails with
probability ``fail_probability`` and each crashed node recovers with
``recover_probability`` — a discrete-time MTBF/MTTR model matched to the
round period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.middleware.session import SessionManager
from repro.observability import NULL_RECORDER, Recorder
from repro.topology.overlay import OverlayNetwork
from repro.topology.routing import OverlayRouter


@dataclass(frozen=True)
class FailureEvent:
    """One crash or recovery (diagnostics / experiment series)."""

    time: float
    node_id: int
    kind: str  # "crash" | "recover"
    sessions_killed: int = 0


class FailureInjector:
    """Stochastic crash/recovery process over overlay nodes."""

    def __init__(
        self,
        network: OverlayNetwork,
        router: OverlayRouter,
        fail_probability: float = 0.01,
        recover_probability: float = 0.5,
        period_s: float = 60.0,
        max_concurrent_failures: Optional[int] = None,
        rng: Optional[random.Random] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not 0.0 <= fail_probability <= 1.0:
            raise ValueError(f"fail_probability must be in [0, 1]")
        if not 0.0 < recover_probability <= 1.0:
            raise ValueError(f"recover_probability must be in (0, 1]")
        if period_s <= 0.0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.network = network
        self.router = router
        self.fail_probability = fail_probability
        self.recover_probability = recover_probability
        self.period_s = period_s
        self.max_concurrent_failures = (
            max_concurrent_failures
            if max_concurrent_failures is not None
            else max(1, len(network) // 10)
        )
        # explicit fixed seed when the caller doesn't supply a stream;
        # never the process-global RNG, so churn schedules replay exactly
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._down: Set[int] = set()
        self._events: List[FailureEvent] = []
        #: sessions terminated by crashes since construction
        self.sessions_killed = 0

    def _record(self, events: List[FailureEvent]) -> List[FailureEvent]:
        """Append to the event log and mirror into the trace recorder."""
        self._events.extend(events)
        if self.recorder.enabled:
            for event in events:
                self.recorder.emit(
                    "failure." + event.kind,
                    time=event.time,
                    node_id=event.node_id,
                    sessions_killed=event.sessions_killed,
                )
        return events

    @property
    def down_nodes(self) -> frozenset:
        return frozenset(self._down)

    @property
    def events(self) -> Tuple[FailureEvent, ...]:
        return tuple(self._events)

    # -- explicit control (tests, targeted experiments) -----------------------

    def crash(
        self, node_id: int, sessions: Optional[SessionManager] = None,
        now: float = 0.0,
    ) -> FailureEvent:
        """Crash one node immediately."""
        return self.crash_many([node_id], sessions=sessions, now=now)[0]

    def recover(self, node_id: int, now: float = 0.0) -> FailureEvent:
        """Recover one crashed node immediately."""
        return self.recover_many([node_id], now=now)[0]

    def crash_many(
        self,
        node_ids: Sequence[int],
        sessions: Optional[SessionManager] = None,
        now: float = 0.0,
    ) -> List[FailureEvent]:
        """Crash a batch of co-temporal nodes with one routing update.

        The whole batch is validated before any node is touched, and the
        router sees a single ``set_down_nodes`` call — correlated failures
        (a rack, a site) cost one incremental routing update, not one per
        node.
        """
        unique = set(node_ids)
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids in crash batch")
        for node_id in node_ids:
            if not self.network.node(node_id).alive:
                raise ValueError(f"node v{node_id} is already down")
        events: List[FailureEvent] = []
        for node_id in node_ids:
            killed = 0
            if sessions is not None:
                killed = sessions.terminate_sessions_using_node(node_id)
            self.network.node(node_id).fail()
            self._down.add(node_id)
            self.sessions_killed += killed
            events.append(FailureEvent(now, node_id, "crash", killed))
        if events:
            self.router.set_down_nodes(self._down)
        return self._record(events)

    def recover_many(
        self, node_ids: Sequence[int], now: float = 0.0
    ) -> List[FailureEvent]:
        """Recover a batch of crashed nodes with one routing update."""
        unique = set(node_ids)
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids in recovery batch")
        missing = unique - self._down
        if missing:
            raise ValueError(
                f"nodes not down: {sorted(missing)}"
            )
        events: List[FailureEvent] = []
        for node_id in node_ids:
            self.network.node(node_id).recover()
            self._down.discard(node_id)
            events.append(FailureEvent(now, node_id, "recover"))
        if events:
            self.router.set_down_nodes(self._down)
        return self._record(events)

    # -- the stochastic round ----------------------------------------------------

    def run_round(
        self, sessions: Optional[SessionManager] = None, now: float = 0.0
    ) -> List[FailureEvent]:
        """One period of the crash/recovery process."""
        events: List[FailureEvent] = []
        # recoveries first (a node cannot crash and recover the same round)
        for node_id in sorted(self._down):
            if self.rng.random() < self.recover_probability:
                self.network.node(node_id).recover()
                self._down.discard(node_id)
                events.append(FailureEvent(now, node_id, "recover"))
        for node in self.network.nodes:
            if not node.alive or node.node_id in self._down:
                continue
            if len(self._down) >= self.max_concurrent_failures:
                break
            if self.rng.random() < self.fail_probability:
                killed = 0
                if sessions is not None:
                    killed = sessions.terminate_sessions_using_node(node.node_id)
                node.fail()
                self._down.add(node.node_id)
                self.sessions_killed += killed
                events.append(FailureEvent(now, node.node_id, "crash", killed))
        if events:
            self.router.set_down_nodes(self._down)
        return self._record(events)
