"""Composable fault injection: node crashes, link flaps, control-plane loss.

Section 2.1 motivates the overlay mesh with failure resilience ("For
failure resilience, we connect distributed nodes using application-level
overlay links into an overlay mesh"); this module supplies the failures
that resilience is measured against.

A :class:`FaultPlan` describes one fault cocktail declaratively:

* **node crashes/recoveries** — the discrete-time MTBF/MTTR churn of the
  original model.  A crash terminates (or, with a recovery policy,
  disrupts) every session that placed a component on the node, makes its
  components unusable for composition, and removes it from overlay
  routing;
* **overlay link failures/flaps** — the router treats a down link like a
  down endpoint at per-link granularity
  (:meth:`~repro.topology.routing.OverlayRouter.set_down_links`), and
  sessions whose virtual links cross the failed link are disrupted;
* **probe loss/delay** — control-plane messages travel a
  :class:`~repro.core.control.LossyControlChannel`
  (see :func:`install_control_plane_faults`);
* **state-update loss** — threshold-triggered global-state reports are
  dropped (:meth:`~repro.state.global_state.GlobalStateManager.set_update_loss`),
  so snapshots go genuinely stale.

:class:`FailureInjector` executes the churn part of a plan.  Per round,
each alive node fails with ``node_fail_probability`` and each crashed node
recovers with ``node_recover_probability`` (links likewise with their own
probabilities); ``max_concurrent_failures`` caps nodes *and* links
combined.  Link randomness is only drawn when link faults are configured,
so a links-disabled plan replays the exact node-churn schedule of the
pre-link injector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.composer import CompositionContext
from repro.core.control import LossyControlChannel
from repro.middleware.session import SessionManager
from repro.observability import NULL_RECORDER, Recorder
from repro.state.global_state import GlobalStateManager
from repro.topology.overlay import OverlayNetwork
from repro.topology.routing import OverlayRouter


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of one fault cocktail.

    All probabilities are per-round (node/link churn) or per-message
    (probe and state-update loss).  The zero plan (:meth:`none`) injects
    nothing and is decision-identical to running without any fault
    machinery at all.
    """

    node_fail_probability: float = 0.0
    node_recover_probability: float = 0.5
    link_fail_probability: float = 0.0
    link_recover_probability: float = 0.5
    #: per-attempt probe loss on the control plane
    probe_loss_probability: float = 0.0
    #: control-plane latency charged per probe delivery attempt
    probe_delay_ms: float = 0.0
    #: re-send budget per probe (spent only while QoS delay slack remains)
    max_probe_retries: int = 2
    #: per-message loss of threshold-triggered global-state updates
    state_update_loss_probability: float = 0.0
    #: cap on simultaneously-down entities, nodes and links combined
    #: (None: max(1, nodes // 10), resolved by the injector)
    max_concurrent_failures: Optional[int] = None
    #: churn round period in simulated seconds
    period_s: float = 60.0

    def __post_init__(self) -> None:
        for name in (
            "node_fail_probability",
            "link_fail_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in (
            "node_recover_probability",
            "link_recover_probability",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in (
            "probe_loss_probability",
            "state_update_loss_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.probe_delay_ms < 0.0:
            raise ValueError(
                f"probe_delay_ms must be non-negative, got {self.probe_delay_ms}"
            )
        if self.max_probe_retries < 0:
            raise ValueError(
                f"max_probe_retries must be >= 0, got {self.max_probe_retries}"
            )
        if (
            self.max_concurrent_failures is not None
            and self.max_concurrent_failures < 1
        ):
            raise ValueError(
                "max_concurrent_failures must be >= 1, "
                f"got {self.max_concurrent_failures}"
            )
        if self.period_s <= 0.0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero plan: no faults of any kind."""
        return cls()

    @property
    def injects_churn(self) -> bool:
        """True when the plan crashes nodes or links stochastically."""
        return self.node_fail_probability > 0.0 or self.link_fail_probability > 0.0

    @property
    def injects_control_faults(self) -> bool:
        """True when the plan degrades probe or state-update delivery."""
        return (
            self.probe_loss_probability > 0.0
            or self.probe_delay_ms > 0.0
            or self.state_update_loss_probability > 0.0
        )

    @property
    def is_zero(self) -> bool:
        return not (self.injects_churn or self.injects_control_faults)


def install_control_plane_faults(
    plan: FaultPlan,
    context: CompositionContext,
    global_state: GlobalStateManager,
    seed: int,
) -> None:
    """Wire a plan's control-plane faults into a live system.

    Probe loss/delay replaces the context's control channel with a
    :class:`~repro.core.control.LossyControlChannel`; state-update loss
    arms the global-state manager.  Both draw from dedicated streams
    derived from ``seed`` — never the composition rng — so a plan with
    zero control-plane faults leaves the system untouched and
    decision-identical.
    """
    if plan.probe_loss_probability > 0.0 or plan.probe_delay_ms > 0.0:
        # repro-lint: disable=SHR404 -- documented fault-injection seam: the
        # control channel is CompositionContext's declared swap point (see its
        # docstring) and is replaced once at wiring time, never mid-run
        context.control = LossyControlChannel(
            plan.probe_loss_probability,
            delay_ms=plan.probe_delay_ms,
            rng=random.Random(seed),
            max_retries=plan.max_probe_retries,
        )
    if plan.state_update_loss_probability > 0.0:
        global_state.set_update_loss(
            plan.state_update_loss_probability, rng=random.Random(seed + 1)
        )


@dataclass(frozen=True)
class FailureEvent:
    """One crash or recovery (diagnostics / experiment series).

    Node events carry ``node_id`` with kind ``"crash"``/``"recover"``;
    link events carry ``link_id`` (``node_id`` is -1) with kind
    ``"link_down"``/``"link_up"``.  ``sessions_killed`` counts sessions
    *disrupted* by the event — killed outright in legacy mode, sent to
    recovery when a :class:`~repro.middleware.session.RecoveryPolicy` is
    active (the historical name is kept for trace compatibility).
    """

    time: float
    node_id: int
    kind: str  # "crash" | "recover" | "link_down" | "link_up"
    sessions_killed: int = 0
    link_id: Optional[int] = None


class FailureInjector:
    """Stochastic crash/recovery process over overlay nodes and links."""

    def __init__(
        self,
        network: OverlayNetwork,
        router: OverlayRouter,
        fail_probability: float = 0.01,
        recover_probability: float = 0.5,
        period_s: float = 60.0,
        max_concurrent_failures: Optional[int] = None,
        rng: Optional[random.Random] = None,
        recorder: Recorder = NULL_RECORDER,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        if plan is None:
            # legacy constructor shape: node churn only
            plan = FaultPlan(
                node_fail_probability=fail_probability,
                node_recover_probability=recover_probability,
                period_s=period_s,
                max_concurrent_failures=max_concurrent_failures,
            )
        self.plan = plan
        self.network = network
        self.router = router
        self.fail_probability = plan.node_fail_probability
        self.recover_probability = plan.node_recover_probability
        self.link_fail_probability = plan.link_fail_probability
        self.link_recover_probability = plan.link_recover_probability
        self.period_s = plan.period_s
        self.max_concurrent_failures = (
            plan.max_concurrent_failures
            if plan.max_concurrent_failures is not None
            else max(1, len(network) // 10)
        )
        # explicit fixed seed when the caller doesn't supply a stream;
        # never the process-global RNG, so churn schedules replay exactly
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._down: Set[int] = set()
        self._down_links: Set[int] = set()
        self._events: List[FailureEvent] = []
        #: sessions disrupted by crashes since construction (killed
        #: outright without a recovery policy; the historical name stays)
        self.sessions_killed = 0

    def _record(self, events: List[FailureEvent]) -> List[FailureEvent]:
        """Append to the event log and mirror into the trace recorder."""
        self._events.extend(events)
        if self.recorder.enabled:
            for event in events:
                if event.link_id is not None:
                    self.recorder.emit(
                        "failure." + event.kind,
                        time=event.time,
                        link_id=event.link_id,
                        sessions_killed=event.sessions_killed,
                    )
                else:
                    self.recorder.emit(
                        "failure." + event.kind,
                        time=event.time,
                        node_id=event.node_id,
                        sessions_killed=event.sessions_killed,
                    )
        return events

    @property
    def down_nodes(self) -> frozenset:
        return frozenset(self._down)

    @property
    def down_links(self) -> frozenset:
        return frozenset(self._down_links)

    @property
    def concurrent_failures(self) -> int:
        """Entities currently down, nodes and links combined (the figure
        the ``max_concurrent_failures`` cap bounds)."""
        return len(self._down) + len(self._down_links)

    @property
    def events(self) -> Tuple[FailureEvent, ...]:
        return tuple(self._events)

    # -- explicit control (tests, targeted experiments) -----------------------

    def crash(
        self, node_id: int, sessions: Optional[SessionManager] = None,
        now: float = 0.0,
    ) -> FailureEvent:
        """Crash one node immediately."""
        return self.crash_many([node_id], sessions=sessions, now=now)[0]

    def recover(self, node_id: int, now: float = 0.0) -> FailureEvent:
        """Recover one crashed node immediately."""
        return self.recover_many([node_id], now=now)[0]

    def crash_many(
        self,
        node_ids: Sequence[int],
        sessions: Optional[SessionManager] = None,
        now: float = 0.0,
    ) -> List[FailureEvent]:
        """Crash a batch of co-temporal nodes with one routing update.

        The whole batch is validated before any node is touched, and the
        router sees a single ``set_down_nodes`` call — correlated failures
        (a rack, a site) cost one incremental routing update, not one per
        node.
        """
        unique = set(node_ids)
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids in crash batch")
        for node_id in node_ids:
            if not self.network.node(node_id).alive:
                raise ValueError(f"node v{node_id} is already down")
        events: List[FailureEvent] = []
        for node_id in node_ids:
            killed = 0
            if sessions is not None:
                killed = sessions.terminate_sessions_using_node(node_id)
            self.network.node(node_id).fail()
            self._down.add(node_id)
            self.sessions_killed += killed
            events.append(FailureEvent(now, node_id, "crash", killed))
        if events:
            self.router.set_down_nodes(self._down)
        return self._record(events)

    def recover_many(
        self, node_ids: Sequence[int], now: float = 0.0
    ) -> List[FailureEvent]:
        """Recover a batch of crashed nodes with one routing update."""
        unique = set(node_ids)
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids in recovery batch")
        missing = unique - self._down
        if missing:
            raise ValueError(
                f"nodes not down: {sorted(missing)}"
            )
        events: List[FailureEvent] = []
        for node_id in node_ids:
            self.network.node(node_id).recover()
            self._down.discard(node_id)
            events.append(FailureEvent(now, node_id, "recover"))
        if events:
            self.router.set_down_nodes(self._down)
        return self._record(events)

    def fail_links(
        self,
        link_ids: Sequence[int],
        sessions: Optional[SessionManager] = None,
        now: float = 0.0,
    ) -> List[FailureEvent]:
        """Fail a batch of co-temporal overlay links with one routing update."""
        unique = set(link_ids)
        if len(unique) != len(link_ids):
            raise ValueError("duplicate link ids in failure batch")
        already = unique & self._down_links
        if already:
            raise ValueError(f"links already down: {sorted(already)}")
        for link_id in link_ids:
            if not 0 <= link_id < len(self.network.links):
                raise ValueError(f"unknown overlay link id {link_id}")
        events: List[FailureEvent] = []
        for link_id in link_ids:
            killed = 0
            if sessions is not None:
                killed = sessions.terminate_sessions_using_link(link_id)
            self._down_links.add(link_id)
            self.sessions_killed += killed
            events.append(
                FailureEvent(now, -1, "link_down", killed, link_id=link_id)
            )
        if events:
            self.router.set_down_links(self._down_links)
        return self._record(events)

    def recover_links(
        self, link_ids: Sequence[int], now: float = 0.0
    ) -> List[FailureEvent]:
        """Recover a batch of failed overlay links with one routing update."""
        unique = set(link_ids)
        if len(unique) != len(link_ids):
            raise ValueError("duplicate link ids in recovery batch")
        missing = unique - self._down_links
        if missing:
            raise ValueError(f"links not down: {sorted(missing)}")
        events: List[FailureEvent] = []
        for link_id in link_ids:
            self._down_links.discard(link_id)
            events.append(FailureEvent(now, -1, "link_up", link_id=link_id))
        if events:
            self.router.set_down_links(self._down_links)
        return self._record(events)

    # -- the stochastic round ----------------------------------------------------

    def run_round(
        self, sessions: Optional[SessionManager] = None, now: float = 0.0
    ) -> List[FailureEvent]:
        """One period of the crash/recovery process.

        Node recoveries draw first, then node crashes, then (only when the
        plan configures link faults) link recoveries and link failures —
        the link phases consume no randomness otherwise, so a node-only
        plan replays the historical churn schedule byte-for-byte.  The
        concurrency cap bounds nodes and links combined.
        """
        events: List[FailureEvent] = []
        # recoveries first (a node cannot crash and recover the same round)
        for node_id in sorted(self._down):
            if self.rng.random() < self.recover_probability:
                self.network.node(node_id).recover()
                self._down.discard(node_id)
                events.append(FailureEvent(now, node_id, "recover"))
        for node in self.network.nodes:
            if not node.alive or node.node_id in self._down:
                continue
            if self.concurrent_failures >= self.max_concurrent_failures:
                break
            if self.rng.random() < self.fail_probability:
                killed = 0
                if sessions is not None:
                    killed = sessions.terminate_sessions_using_node(node.node_id)
                node.fail()
                self._down.add(node.node_id)
                self.sessions_killed += killed
                events.append(FailureEvent(now, node.node_id, "crash", killed))
        if events:
            self.router.set_down_nodes(self._down)

        # link phases draw no randomness unless link faults are in play,
        # so a node-only plan replays the historical churn schedule exactly
        if self.link_fail_probability > 0.0 or self._down_links:
            link_changed = False
            for link_id in sorted(self._down_links):
                if self.rng.random() < self.link_recover_probability:
                    self._down_links.discard(link_id)
                    link_changed = True
                    events.append(FailureEvent(now, -1, "link_up", link_id=link_id))
            if self.link_fail_probability > 0.0:
                for link in self.network.links:
                    if link.link_id in self._down_links:
                        continue
                    if self.concurrent_failures >= self.max_concurrent_failures:
                        break
                    if self.rng.random() < self.link_fail_probability:
                        killed = 0
                        if sessions is not None:
                            killed = sessions.terminate_sessions_using_link(
                                link.link_id
                            )
                        self._down_links.add(link.link_id)
                        self.sessions_killed += killed
                        link_changed = True
                        events.append(
                            FailureEvent(
                                now, -1, "link_down", killed, link_id=link.link_id
                            )
                        )
            if link_changed:
                self.router.set_down_links(self._down_links)

        return self._record(events)
