"""Workload generation (Section 4.1's request model).

Requests arrive in a Poisson process at a (possibly time-varying) rate in
requests/minute — the adaptability experiment of Fig. 8 steps the rate
40 → 80 → 60.  Each request draws a random application template, uniform
resource requirements, a uniform session duration of 5–15 minutes, and QoS
requirements at a configurable *stringency level* (Fig. 5(b) compares
"high QoS" and "very high QoS", where "Higher QoS means shorter processing
time and lower loss rate requirements").

QoS requirement derivation: the generator knows the expected per-stage
costs (component delay/loss, virtual-link delay/loss) and budgets the
end-to-end requirement as ``slack × expected critical-path cost`` with a
per-request jitter.  Slack < 1 means the requirement is tighter than the
*average* composition — only better-than-average compositions qualify,
which is what makes stringency bite.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Iterable, Iterator, List, Mapping, Optional, Protocol, Tuple

from repro.model.function_graph import FunctionGraph
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSSchema, QoSVector
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceSchema, ResourceVector
from repro.model.templates import TemplateLibrary


class WorkloadSource(Protocol):
    """The duck type the simulator consumes: an arrival process plus a
    request factory.  :class:`WorkloadGenerator`, :class:`RecordingWorkload`,
    :class:`ReplayWorkload`, and ``repro.simulation.population``'s
    :class:`~repro.simulation.population.PopulationWorkload` all satisfy it.
    """

    def next_interarrival(self, now_s: float) -> float:
        """Seconds from ``now_s`` until the next request arrives."""
        ...

    def make_request(self, arrival_time: float) -> "StreamRequest":
        """Materialise the request arriving at ``arrival_time``."""
        ...


@dataclass(frozen=True)
class QoSLevel:
    """A QoS stringency level: slack multipliers on expected path cost."""

    name: str
    delay_slack: float
    loss_slack: float

    def __post_init__(self) -> None:
        if self.delay_slack <= 0.0 or self.loss_slack <= 0.0:
            raise ValueError(f"slacks must be positive in {self}")


#: The stringency levels used across the experiments.  "high" and
#: "very_high" correspond to Fig. 5(b)'s two curves.
QOS_LEVELS: Mapping[str, QoSLevel] = MappingProxyType({
    "loose": QoSLevel("loose", delay_slack=2.5, loss_slack=3.0),
    "normal": QoSLevel("normal", delay_slack=1.8, loss_slack=2.2),
    "high": QoSLevel("high", delay_slack=1.35, loss_slack=1.7),
    "very_high": QoSLevel("very_high", delay_slack=1.1, loss_slack=1.3),
})


@dataclass(frozen=True)
class RateSchedule:
    """Piecewise-constant request rate in requests/minute.

    ``segments`` are (start_time_s, rate_per_min) pairs; the first must
    start at 0.  :meth:`constant` builds the common fixed-rate case.
    """

    segments: Tuple[Tuple[float, float], ...]
    #: segment start times, cached for bisect lookups
    _starts: Tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("schedule needs at least one segment")
        if self.segments[0][0] != 0.0:
            raise ValueError("first segment must start at time 0")
        times = [start for start, _rate in self.segments]
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError(
                    f"segment starts must be strictly increasing: {times}"
                )
        for _start, rate in self.segments:
            if rate <= 0.0:
                raise ValueError(f"rates must be positive, got {rate}")
        object.__setattr__(self, "_starts", tuple(times))

    @classmethod
    def constant(cls, rate_per_min: float) -> "RateSchedule":
        return cls(((0.0, rate_per_min),))

    @classmethod
    def steps(cls, *segments: Tuple[float, float]) -> "RateSchedule":
        return cls(tuple(segments))

    def rate_at(self, time_s: float) -> float:
        """Rate in effect at ``time_s`` (O(log segments) bisect)."""
        index = bisect_right(self._starts, time_s) - 1
        if index < 0:
            index = 0
        return self.segments[index][1]

    def next_change_after(self, time_s: float) -> Optional[float]:
        """Start time of the next rate step strictly after ``time_s``, or
        ``None`` when the schedule is constant from ``time_s`` onward."""
        index = bisect_right(self._starts, time_s)
        if index >= len(self._starts):
            return None
        return self._starts[index]


@dataclass(frozen=True)
class WorkloadProfile:
    """Distributions for request attributes (Section 4.1 defaults)."""

    stream_rate: Tuple[float, float] = (50.0, 200.0)
    cpu_requirement: Tuple[float, float] = (2.0, 6.0)
    memory_requirement: Tuple[float, float] = (10.0, 40.0)
    session_duration_s: Tuple[float, float] = (300.0, 900.0)  # 5 to 15 min
    kbps_per_unit: float = 2.0
    #: expected per-stage costs used to budget QoS requirements; component
    #: figures include typical load inflation under the load-dependent QoS
    #: model (base delay mean 27.5 ms, ~45% typical utilisation)
    expected_component_delay_ms: float = 40.0
    expected_link_delay_ms: float = 30.0
    expected_component_loss: float = 0.008
    expected_link_loss: float = 0.002
    #: multiplicative jitter applied to each request's QoS budget
    qos_jitter: Tuple[float, float] = (0.85, 1.15)


class WorkloadGenerator:
    """Draws Poisson arrivals of randomised stream processing requests."""

    def __init__(
        self,
        templates: TemplateLibrary,
        schedule: RateSchedule,
        qos_level: QoSLevel = QOS_LEVELS["normal"],
        profile: WorkloadProfile = WorkloadProfile(),
        num_client_routers: int = 3200,
        qos_schema: QoSSchema = DEFAULT_QOS_SCHEMA,
        resource_schema: ResourceSchema = DEFAULT_RESOURCE_SCHEMA,
        seed: int = 0,
    ) -> None:
        self.templates = templates
        self.schedule = schedule
        self.qos_level = qos_level
        self.profile = profile
        self.num_client_routers = num_client_routers
        self.qos_schema = qos_schema
        self.resource_schema = resource_schema
        self._rng = random.Random(seed)
        self._next_request_id = 0

    # -- arrivals ------------------------------------------------------------

    def next_interarrival(self, now_s: float) -> float:
        """Inter-arrival time under the (piecewise-constant) schedule.

        Exact non-homogeneous Poisson sampling: draw an exponential gap at
        the rate in effect now; if it crosses the next ``RateSchedule``
        step, discard the portion past the boundary and redraw from the
        boundary at the new rate (valid by memorylessness).  A gap spanning
        a step therefore feels the new rate from the instant of the step —
        previously the whole gap was drawn at the old rate, so Fig. 8's
        40 → 80 step took effect one arrival late.

        On a constant schedule this makes exactly one draw, leaving the rng
        stream — and every flat-Poisson experiment — byte-identical to the
        pre-fix behaviour.
        """
        t = now_s
        elapsed = 0.0
        while True:
            rate_per_s = self.schedule.rate_at(t) / 60.0
            gap = self._rng.expovariate(rate_per_s)
            boundary = self.schedule.next_change_after(t)
            if boundary is None or t + gap <= boundary:
                # return elapsed + gap, not (t + gap) - now_s: the single-draw
                # case must return the raw draw bit-for-bit
                return elapsed + gap
            elapsed += boundary - t
            t = boundary

    # -- request construction ----------------------------------------------------

    def _critical_path_stages(self, graph: FunctionGraph) -> int:
        """Function count on the longest source-to-sink path."""
        return max(len(path) for path in graph.all_paths())

    def qos_requirement_for(self, graph: FunctionGraph) -> QoSVector:
        """Budget the end-to-end QoS requirement for a function graph."""
        profile = self.profile
        level = self.qos_level
        stages = self._critical_path_stages(graph)
        jitter = self._rng.uniform(*profile.qos_jitter)
        delay_budget = (
            level.delay_slack
            * jitter
            * (
                stages * profile.expected_component_delay_ms
                + (stages - 1) * profile.expected_link_delay_ms
            )
        )
        # loss budgets add in -log(1-p) space, then map back to a rate
        loss_log_budget = (
            level.loss_slack
            * jitter
            * (
                stages * -math.log1p(-profile.expected_component_loss)
                + (stages - 1) * -math.log1p(-profile.expected_link_loss)
            )
        )
        loss_budget = 1.0 - math.exp(-loss_log_budget)
        return QoSVector(self.qos_schema, [delay_budget, loss_budget])

    def make_request(self, arrival_time: float) -> StreamRequest:
        """Draw the next request of the workload."""
        rng = self._rng
        profile = self.profile
        template = self.templates.sample(rng)
        graph = template.graph
        stream_rate = rng.uniform(*profile.stream_rate)
        node_requirements = {
            index: ResourceVector(
                self.resource_schema,
                [
                    rng.uniform(*profile.cpu_requirement),
                    rng.uniform(*profile.memory_requirement),
                ],
            )
            for index in range(len(graph))
        }
        request = StreamRequest(
            request_id=self._next_request_id,
            function_graph=graph,
            qos_requirement=self.qos_requirement_for(graph),
            node_requirements=node_requirements,
            bandwidth_requirements=derive_bandwidth_requirements(
                graph, stream_rate, profile.kbps_per_unit
            ),
            stream_rate=stream_rate,
            arrival_time=arrival_time,
            duration=rng.uniform(*profile.session_duration_s),
            client_router_id=rng.randrange(self.num_client_routers),
        )
        self._next_request_id += 1
        return request

    def requests_until(self, end_time_s: float) -> Iterator[StreamRequest]:
        """Generate the full arrival sequence up to a horizon (offline use;
        the simulator schedules arrivals one at a time instead)."""
        now = 0.0
        while True:
            now += self.next_interarrival(now)
            if now > end_time_s:
                return
            yield self.make_request(now)


class RecordingWorkload:
    """Wraps a workload and records what it emitted, for trace replay.

    Section 3.4's on-line profiling wants "the trace replay of actual
    workloads in the last sampling period" so that profile points are
    measured under representative conditions.  Wrap the live generator in
    this recorder, then hand :meth:`trace_since` to a
    :class:`ReplayWorkload`.

    Arrivals are monotone, so :meth:`trace_since` bisects on arrival time
    instead of re-scanning the whole history; an optional ``retention_s``
    horizon drops records older than ``newest_arrival - retention_s`` so
    long runs hold one sampling period's worth of trace, not the whole
    run's.
    """

    def __init__(
        self, inner: WorkloadSource, retention_s: Optional[float] = None
    ) -> None:
        if retention_s is not None and retention_s <= 0.0:
            raise ValueError(f"retention must be positive: {retention_s}")
        self.inner = inner
        self.retention_s = retention_s
        self._trace: List[StreamRequest] = []
        # parallel arrival-time list for bisecting (arrivals are monotone)
        self._times: List[float] = []

    def next_interarrival(self, now_s: float) -> float:
        return self.inner.next_interarrival(now_s)

    def make_request(self, arrival_time: float) -> StreamRequest:
        request = self.inner.make_request(arrival_time)
        self._trace.append(request)
        self._times.append(request.arrival_time)
        if self.retention_s is not None:
            cutoff = request.arrival_time - self.retention_s
            drop = bisect_left(self._times, cutoff)
            if drop > 0:
                del self._trace[:drop]
                del self._times[:drop]
        return request

    def __len__(self) -> int:
        return len(self._trace)

    @property
    def trace(self) -> Tuple[StreamRequest, ...]:
        return tuple(self._trace)

    def trace_since(self, start_time_s: float) -> Tuple[StreamRequest, ...]:
        """Requests that arrived at or after ``start_time_s`` (one sampling
        period's worth, typically)."""
        index = bisect_left(self._times, start_time_s)
        return tuple(self._trace[index:])


class ReplayWorkload:
    """Replays a recorded request trace with its original inter-arrivals.

    Presents the same duck-typed interface the simulator consumes
    (``next_interarrival`` / ``make_request``).  Arrival times are shifted
    so the first request of the trace arrives after its original gap from
    ``trace_start``; when the trace is exhausted the replay raises —
    callers size the simulation horizon to the trace (see
    :meth:`horizon`).
    """

    def __init__(
        self, trace: Iterable[StreamRequest], trace_start_s: float = 0.0
    ) -> None:
        self._trace = list(trace)
        if not self._trace:
            raise ValueError("cannot replay an empty trace")
        self.trace_start_s = trace_start_s
        self._cursor = 0
        base = trace_start_s
        self._offsets = []
        previous = base
        for request in self._trace:
            self._offsets.append(max(0.0, request.arrival_time - previous))
            previous = request.arrival_time

    def __len__(self) -> int:
        return len(self._trace)

    def horizon(self) -> float:
        """Replay duration: the original span of the trace (seconds)."""
        return self._trace[-1].arrival_time - self.trace_start_s

    def next_interarrival(self, now_s: float) -> float:
        if self._cursor >= len(self._trace):
            # past the trace: push the next arrival beyond any sane horizon
            # so the simulator's run_until() ends the replay cleanly
            return float(1e12)
        return self._offsets[self._cursor]

    def make_request(self, arrival_time: float) -> StreamRequest:
        if self._cursor >= len(self._trace):
            raise IndexError("replay trace exhausted")
        original = self._trace[self._cursor]
        self._cursor += 1
        return replace(original, arrival_time=arrival_time)
