"""Population-scale workload model: users, diurnal curves, flash crowds.

The paper evaluates at ~100 req/min of flat Poisson traffic.  The
interesting production regime is different: request rate is an *emergent*
quantity — N active users, each issuing requests at some personal rate,
with N itself drifting over the day and spiking on events.  This module
layers that model over the existing request machinery:

* :class:`PopulationProfile` — N active users re-sampled from a Poisson /
  Normal / fixed population process every ``user_sampling_window_s``, a
  per-user request rate, an optional :class:`DiurnalCurve`, and scenario
  :class:`TrafficEvent` primitives (ramp, plateau, decay) for flash
  crowds and regional spikes;
* :class:`PopulationWorkload` — wraps a
  :class:`~repro.simulation.workload.WorkloadGenerator` and replaces its
  arrival process with the population's, leaving request-attribute
  randomness on the inner generator's stream.

The effective rate is compiled to a piecewise-constant function —
population windows × quota slots of ``quota_resolution_s`` (the
autoscaling-simulator exemplar's "seasonal values split into per-second
quotas") — so arrivals are sampled as an exact non-homogeneous Poisson
process by the same boundary-truncated redraw the schedule fix uses.

Determinism: the population draws from its own seed-derived streams
(user re-sampling, arrival gaps, regional rewrites), so same-seed runs
replay byte-identically and attaching a population never perturbs the
inner generator's request-attribute stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.model.request import StreamRequest
from repro.simulation.workload import WorkloadGenerator

#: arrival-time sentinel far beyond any simulation horizon, returned when
#: the population rate stays zero for an implausibly long walk (matches
#: ReplayWorkload's exhaustion sentinel)
FAR_FUTURE_S = 1e12

#: give up walking rate boundaries after this much simulated time with no
#: arrival — the run horizon is long past by then
_MAX_WALK_S = 1e8


def poisson_sample(rng: random.Random, mean: float) -> int:
    """Draw Poisson(mean) from ``rng`` (stdlib has no Poisson sampler).

    Knuth's product-of-uniforms method below mean 30 (exact, O(mean)
    draws); above that, the rounded-normal approximation — population
    sizes in the thousands don't warrant an exact sampler's cost, and
    determinism only needs the draw to be a pure function of the stream.
    """
    if mean < 0.0:
        raise ValueError(f"mean must be non-negative: {mean}")
    if mean == 0.0:
        return 0
    if mean < 30.0:
        limit = math.exp(-mean)
        count = 0
        product = rng.random()
        while product > limit:
            count += 1
            product *= rng.random()
        return count
    return max(0, round(rng.gauss(mean, math.sqrt(mean))))


@dataclass(frozen=True)
class DiurnalCurve:
    """Periodic rate multiplier: control points, linearly interpolated.

    ``points`` are (time_into_period_s, multiplier) pairs; the curve wraps
    (the last point interpolates to the first, one period later).  The
    default period is one day.
    """

    points: Tuple[Tuple[float, float], ...]
    period_s: float = 86400.0

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ValueError(f"period must be positive: {self.period_s}")
        if not self.points:
            raise ValueError("curve needs at least one control point")
        times = [t for t, _m in self.points]
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError(
                    f"control-point times must be strictly increasing: {times}"
                )
        if times[0] < 0.0 or times[-1] >= self.period_s:
            raise ValueError(
                f"control points must lie in [0, {self.period_s}): {times}"
            )
        for _t, multiplier in self.points:
            if multiplier < 0.0:
                raise ValueError(f"multipliers must be non-negative: {multiplier}")

    @classmethod
    def day_night(
        cls,
        trough: float = 0.2,
        peak: float = 1.0,
        trough_time_s: float = 4.0 * 3600.0,
        peak_time_s: float = 15.0 * 3600.0,
        period_s: float = 86400.0,
    ) -> "DiurnalCurve":
        """The classic diurnal shape: quiet pre-dawn, busy mid-afternoon."""
        points = sorted(((trough_time_s, trough), (peak_time_s, peak)))
        return cls(tuple(points), period_s=period_s)

    def multiplier_at(self, time_s: float) -> float:
        """Linearly interpolated multiplier at ``time_s`` (periodic)."""
        phase = time_s % self.period_s
        points = self.points
        if len(points) == 1:
            return points[0][1]
        # find the surrounding control points, wrapping across the period
        for index in range(len(points)):
            start_t, start_m = points[index]
            if index + 1 < len(points):
                end_t, end_m = points[index + 1]
            else:
                end_t, end_m = points[0][0] + self.period_s, points[0][1]
            if start_t <= phase < end_t:
                span = end_t - start_t
                fraction = (phase - start_t) / span
                return start_m + fraction * (end_m - start_m)
        # phase precedes the first control point: wrap the last one back
        last_t, last_m = points[-1]
        first_t, first_m = points[0]
        span = first_t + self.period_s - last_t
        fraction = (phase + self.period_s - last_t) / span
        return last_m + fraction * (first_m - last_m)


@dataclass(frozen=True)
class TrafficEvent:
    """One traffic surge: linear ramp, flat plateau, linear decay.

    The event multiplies the population's request rate by up to
    ``peak_multiplier`` (1.0 outside the event).  With ``region`` set to a
    client-router id range ``[lo, hi)``, the surge's *excess* traffic —
    fraction (m-1)/m at current multiplier m — originates from that
    region, modelling a regional spike rather than a uniform flash crowd.
    """

    start_s: float
    ramp_s: float
    plateau_s: float
    decay_s: float
    peak_multiplier: float
    region: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError(f"start must be non-negative: {self.start_s}")
        for name in ("ramp_s", "plateau_s", "decay_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative: {getattr(self, name)}")
        if self.ramp_s + self.plateau_s + self.decay_s <= 0.0:
            raise ValueError("event must have positive duration")
        if self.peak_multiplier < 1.0:
            raise ValueError(
                f"peak multiplier must be >= 1: {self.peak_multiplier}"
            )
        if self.region is not None:
            lo, hi = self.region
            if lo < 0 or hi <= lo:
                raise ValueError(f"region must be a non-empty [lo, hi): {self.region}")

    @classmethod
    def flash_crowd(
        cls,
        start_s: float,
        peak_multiplier: float,
        ramp_s: float = 60.0,
        plateau_s: float = 300.0,
        decay_s: float = 120.0,
    ) -> "TrafficEvent":
        """A system-wide surge: fast ramp, sustained plateau, slower decay."""
        return cls(start_s, ramp_s, plateau_s, decay_s, peak_multiplier)

    @classmethod
    def regional_spike(
        cls,
        start_s: float,
        peak_multiplier: float,
        region: Tuple[int, int],
        ramp_s: float = 60.0,
        plateau_s: float = 300.0,
        decay_s: float = 120.0,
    ) -> "TrafficEvent":
        """A surge whose excess traffic targets one client-router range."""
        return cls(start_s, ramp_s, plateau_s, decay_s, peak_multiplier, region)

    @property
    def end_s(self) -> float:
        return self.start_s + self.ramp_s + self.plateau_s + self.decay_s

    def multiplier_at(self, time_s: float) -> float:
        if time_s < self.start_s or time_s >= self.end_s:
            return 1.0
        offset = time_s - self.start_s
        if offset < self.ramp_s:
            return 1.0 + (self.peak_multiplier - 1.0) * (offset / self.ramp_s)
        offset -= self.ramp_s
        if offset < self.plateau_s:
            return self.peak_multiplier
        offset -= self.plateau_s
        return self.peak_multiplier - (self.peak_multiplier - 1.0) * (
            offset / self.decay_s
        )


@dataclass(frozen=True)
class PopulationProfile:
    """The user-population process behind a workload.

    ``mean_active_users`` are re-sampled every ``user_sampling_window_s``
    from the named distribution (AsyncFlow's ``RqsGenerator`` shape); each
    active user issues ``requests_per_user_per_min`` requests as a Poisson
    stream, so the aggregate window rate is
    ``users × requests_per_user_per_min`` scaled by the diurnal curve and
    any active events.
    """

    mean_active_users: float
    requests_per_user_per_min: float
    distribution: str = "poisson"
    #: Normal distribution's sigma; defaults to sqrt(mean) when None
    std_active_users: Optional[float] = None
    user_sampling_window_s: float = 60.0
    diurnal: Optional[DiurnalCurve] = None
    events: Tuple[TrafficEvent, ...] = ()
    #: quota-slot width for the compiled piecewise-constant rate
    quota_resolution_s: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_active_users < 0.0:
            raise ValueError(
                f"mean active users must be non-negative: {self.mean_active_users}"
            )
        if self.requests_per_user_per_min <= 0.0:
            raise ValueError(
                "per-user request rate must be positive: "
                f"{self.requests_per_user_per_min}"
            )
        if self.distribution not in ("poisson", "normal", "fixed"):
            raise ValueError(
                f"distribution must be poisson|normal|fixed: {self.distribution!r}"
            )
        if self.std_active_users is not None and self.std_active_users < 0.0:
            raise ValueError(
                f"std must be non-negative: {self.std_active_users}"
            )
        if self.user_sampling_window_s <= 0.0:
            raise ValueError(
                f"sampling window must be positive: {self.user_sampling_window_s}"
            )
        if self.quota_resolution_s <= 0.0:
            raise ValueError(
                f"quota resolution must be positive: {self.quota_resolution_s}"
            )

    def scaled(self, multiplier: float) -> "PopulationProfile":
        """The same profile at ``multiplier``× the mean population (load
        sweeps: 1×, 10×, 100×)."""
        if multiplier <= 0.0:
            raise ValueError(f"multiplier must be positive: {multiplier}")
        return replace(self, mean_active_users=self.mean_active_users * multiplier)

    @property
    def mean_rate_per_min(self) -> float:
        """Expected aggregate rate before diurnal/event modulation."""
        return self.mean_active_users * self.requests_per_user_per_min


class PopulationWorkload:
    """A population-driven arrival process over an inner request factory.

    Satisfies the simulator's ``WorkloadSource`` duck type.  The inner
    :class:`WorkloadGenerator`'s schedule is ignored; arrivals come from
    the population model instead, while request attributes (template, QoS
    budget, duration, ...) still come from the inner generator's own
    stream — so the same ``workload_seed`` yields the same request
    *contents* whether or not a population drives the arrival times.

    Three seed-derived streams keep replay byte-identical: user-count
    re-sampling (``seed``), arrival gaps (``seed + 1``), and regional
    spike rewrites (``seed + 2``).  User counts are memoized per window
    index and always sampled in window order, so the stream is identical
    no matter how simulated time advances.
    """

    def __init__(
        self,
        inner: WorkloadGenerator,
        profile: PopulationProfile,
        seed: int = 0,
    ) -> None:
        for event in profile.events:
            if event.region is not None and event.region[1] > inner.num_client_routers:
                raise ValueError(
                    f"event region {event.region} exceeds the system's "
                    f"{inner.num_client_routers} client routers"
                )
        self.inner = inner
        self.profile = profile
        self._user_rng = random.Random(seed)
        self._arrival_rng = random.Random(seed + 1)
        self._region_rng = random.Random(seed + 2)
        self._user_counts: List[int] = []
        # slot boundaries only matter while a curve or event modulates the
        # rate; a plain steady population only changes at window edges
        self._modulated = profile.diurnal is not None or bool(profile.events)

    # -- the population process ----------------------------------------------

    def users_in_window(self, index: int) -> int:
        """Active users during window ``index`` (memoized, sampled in order)."""
        if index < 0:
            raise ValueError(f"window index must be non-negative: {index}")
        profile = self.profile
        while len(self._user_counts) <= index:
            if profile.distribution == "poisson":
                count = poisson_sample(self._user_rng, profile.mean_active_users)
            elif profile.distribution == "normal":
                std = (
                    profile.std_active_users
                    if profile.std_active_users is not None
                    else math.sqrt(profile.mean_active_users)
                )
                count = max(
                    0, round(self._user_rng.gauss(profile.mean_active_users, std))
                )
            else:  # fixed
                count = round(profile.mean_active_users)
            self._user_counts.append(count)
        return self._user_counts[index]

    def _modulation_at(self, slot_start_s: float) -> float:
        multiplier = 1.0
        if self.profile.diurnal is not None:
            multiplier *= self.profile.diurnal.multiplier_at(slot_start_s)
        for event in self.profile.events:
            multiplier *= event.multiplier_at(slot_start_s)
        return multiplier

    def rate_per_s_at(self, time_s: float) -> float:
        """The compiled piecewise-constant aggregate rate at ``time_s``:
        constant within each (population window × quota slot) cell."""
        profile = self.profile
        window = int(time_s // profile.user_sampling_window_s)
        users = self.users_in_window(window)
        if users == 0:
            return 0.0
        rate_per_min = users * profile.requests_per_user_per_min
        if self._modulated:
            slot = math.floor(time_s / profile.quota_resolution_s)
            rate_per_min *= self._modulation_at(slot * profile.quota_resolution_s)
        return rate_per_min / 60.0

    def _next_boundary_after(self, time_s: float) -> float:
        """Next instant the compiled rate may change, strictly after
        ``time_s``: the next population-window edge, or the next quota
        slot while a curve/event modulates the rate."""
        window_s = self.profile.user_sampling_window_s
        boundary = (math.floor(time_s / window_s) + 1) * window_s
        if self._modulated:
            resolution = self.profile.quota_resolution_s
            slot_edge = (math.floor(time_s / resolution) + 1) * resolution
            boundary = min(boundary, slot_edge)
        # float guard: at huge t the "+1 slot" can round back to t itself,
        # which would stall the boundary walk
        if boundary <= time_s:
            return time_s + window_s
        return boundary

    # -- WorkloadSource ------------------------------------------------------

    def next_interarrival(self, now_s: float) -> float:
        """Exact non-homogeneous Poisson gap under the population rate
        (boundary-truncated redraw, as in ``WorkloadGenerator``).  Returns
        :data:`FAR_FUTURE_S` when the rate stays zero past any plausible
        horizon, so the simulator's ``run_until`` drains cleanly."""
        t = now_s
        elapsed = 0.0
        while True:
            if elapsed >= _MAX_WALK_S:
                return FAR_FUTURE_S
            rate = self.rate_per_s_at(t)
            boundary = self._next_boundary_after(t)
            if rate > 0.0:
                gap = self._arrival_rng.expovariate(rate)
                if t + gap <= boundary:
                    return elapsed + gap
            elapsed += boundary - t
            t = boundary

    def make_request(self, arrival_time: float) -> StreamRequest:
        request = self.inner.make_request(arrival_time)
        region = self._spike_region_for(arrival_time)
        if region is not None:
            lo, hi = region
            request = replace(
                request, client_router_id=lo + self._region_rng.randrange(hi - lo)
            )
        return request

    def _spike_region_for(self, time_s: float) -> Optional[Tuple[int, int]]:
        """The region this arrival belongs to, if a regional spike's excess
        traffic claims it: at multiplier m, fraction (m-1)/m of current
        arrivals are the spike's own."""
        for event in self.profile.events:
            if event.region is None:
                continue
            multiplier = event.multiplier_at(time_s)
            if multiplier <= 1.0:
                continue
            if self._region_rng.random() < (multiplier - 1.0) / multiplier:
                return event.region
        return None
