"""Metrics: composition success rate and message-overhead accounting.

The evaluation's two y-axes are

* **composition success rate** μ(t) = SuccessNum(t) / RequestNum(t) over a
  sampling period Δt (Section 3.4; the adaptability experiment of Fig. 8
  samples every 5 minutes), and
* **overhead** in messages per minute — probe messages plus, for ACP,
  global-state update and aggregation messages (Section 4.2, Fig. 6(b)).

:class:`MetricsCollector` records one :class:`RequestRecord` per
composition attempt and produces both windowed series and whole-run
summaries (:class:`SimulationReport`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability import NULL_RECORDER, Recorder

#: failure reasons that indicate contention for resources (admission
#: pressure) rather than an infeasible request: probe loss under load,
#: commit races, and exhausted candidate pools all rise with overload.
CONTENTION_REASONS = frozenset(
    {
        "probes_dropped",
        "admission_race",
        "no_qualified_composition",
        "no_qualified_candidates",
    }
)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of ``values`` (q in [0, 1]); None if empty.

    Nearest-rank (not interpolated) so reported latencies are always
    observed values, and small windows behave predictably.
    """
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one composition attempt, as the collector sees it."""

    request_id: int
    arrival_time: float
    success: bool
    probe_messages: int
    setup_messages: int
    explored: int
    phi: Optional[float] = None
    failure_reason: Optional[str] = None
    #: session setup latency (probe wavefront out + confirmation back along
    #: the committed composition's critical path); None on failure
    setup_latency_ms: Optional[float] = None


@dataclass(frozen=True)
class WindowSample:
    """One sampling-period observation (drives Fig. 8's time series).

    The trailing SLO fields are per-window measurements: latency
    percentiles over the window's *successful* setups, admission pressure
    (fraction of requests rejected for contention reasons — see
    :data:`CONTENTION_REASONS`), and point-in-time queue gauges sampled at
    window close.  Unlike ``success_rate``, none of them carry forward
    over idle windows: an empty window reports 0 requests, None
    percentiles, and 0.0 pressure.
    """

    time: float
    success_rate: float
    requests: int
    probing_ratio: Optional[float] = None
    p50_setup_latency_ms: Optional[float] = None
    p99_setup_latency_ms: Optional[float] = None
    #: fraction of the window's requests rejected for contention reasons
    admission_pressure: float = 0.0
    #: open sessions at window close (None when the caller has no gauge)
    open_sessions: Optional[int] = None
    #: transient (probe-held) reservations at window close
    transient_reservations: Optional[int] = None


@dataclass
class SimulationReport:
    """Whole-run summary for one algorithm under one workload."""

    algorithm: str
    duration_s: float
    total_requests: int
    successes: int
    probe_messages: int
    setup_messages: int
    state_update_messages: int
    aggregation_messages: int
    failure_reasons: Dict[str, int]
    window_samples: Tuple[WindowSample, ...]
    mean_phi: Optional[float]
    # fault-tolerance accounting (all zero on fault-free runs)
    #: sessions admitted over the run
    sessions_opened: int = 0
    #: sessions hit by a fault (node or link)
    sessions_disrupted: int = 0
    #: disrupted sessions re-admitted by crash-triggered re-composition
    sessions_recovered: int = 0
    #: disrupted sessions permanently lost
    sessions_killed: int = 0
    #: probe messages spent on recovery re-compositions (not part of the
    #: Fig. 6(b) overhead figure, which counts first-composition traffic)
    recovery_probe_messages: int = 0
    #: mean disruption-to-readmission latency of recovered sessions
    mean_recovery_latency_s: float = 0.0
    #: global-state update messages dropped by the lossy management plane
    state_updates_lost: int = 0
    #: probe messages dropped by the lossy control channel
    probe_messages_lost: int = 0
    # run-level SLO summaries (None / 0 when latency was not measured)
    #: median setup latency over all successful compositions
    p50_setup_latency_ms: Optional[float] = None
    #: 99th-percentile setup latency over all successful compositions
    p99_setup_latency_ms: Optional[float] = None
    #: fraction of all requests rejected for contention reasons
    admission_pressure: float = 0.0
    #: max open-session gauge observed at any window close
    peak_open_sessions: int = 0
    #: max transient-reservation gauge observed at any window close
    peak_transient_reservations: int = 0
    # live-migration accounting (all zero when no migration plan runs)
    #: sessions successfully moved off a hot node
    sessions_migrated: int = 0
    #: planned migrations rejected because the state-transfer pause would
    #: blow the session's remaining QoS slack (the graceful-degradation path)
    migrations_aborted_on_slack: int = 0
    #: total stream-paused time spent on committed state transfers
    migration_paused_stream_s: float = 0.0
    #: probe messages spent evaluating candidate placements for migration
    migration_probe_messages: int = 0

    @property
    def session_survival_rate(self) -> float:
        """Fraction of admitted sessions never permanently lost to a
        fault (1.0 on a fault-free run)."""
        if self.sessions_opened == 0:
            return 1.0
        return 1.0 - self.sessions_killed / self.sessions_opened

    @property
    def success_rate(self) -> float:
        """Average success rate over all requests of the run."""
        if self.total_requests == 0:
            return 0.0
        return self.successes / self.total_requests

    @property
    def duration_min(self) -> float:
        return self.duration_s / 60.0

    @property
    def probe_messages_per_min(self) -> float:
        return self.probe_messages / self.duration_min if self.duration_s else 0.0

    @property
    def state_messages_per_min(self) -> float:
        if not self.duration_s:
            return 0.0
        return (
            self.state_update_messages + self.aggregation_messages
        ) / self.duration_min

    @property
    def overhead_per_min(self) -> float:
        """The Fig. 6(b)/7(b) overhead figure: probes plus (for ACP)
        global-state maintenance messages, per simulated minute."""
        return self.probe_messages_per_min + self.state_messages_per_min


class MetricsCollector:
    """Accumulates per-request records and periodic window samples."""

    def __init__(self, recorder: Recorder = NULL_RECORDER) -> None:
        self.recorder = recorder
        self._records: List[RequestRecord] = []
        self._samples: List[WindowSample] = []
        self._window_success = 0
        self._window_total = 0
        self._window_contended = 0
        self._window_latencies: List[float] = []

    # -- per-request path -----------------------------------------------------

    def record(self, record: RequestRecord) -> None:
        self._records.append(record)
        self._window_total += 1
        if record.success:
            self._window_success += 1
            if record.setup_latency_ms is not None:
                self._window_latencies.append(record.setup_latency_ms)
        elif record.failure_reason in CONTENTION_REASONS:
            self._window_contended += 1

    @property
    def records(self) -> Tuple[RequestRecord, ...]:
        return tuple(self._records)

    @property
    def latest_admission_pressure(self) -> float:
        """Admission pressure of the most recently closed window (0.0
        before the first window closes) — the hotspot detector's signal
        that rejections are load-driven, not infeasibility."""
        if not self._samples:
            return 0.0
        return self._samples[-1].admission_pressure

    # -- windowed sampling -------------------------------------------------------

    def close_window(
        self,
        time: float,
        probing_ratio: Optional[float] = None,
        open_sessions: Optional[int] = None,
        transient_reservations: Optional[int] = None,
    ) -> WindowSample:
        """End the current sampling period and start a new one.

        Returns the sample for the closed window; a window with no requests
        reports the previous window's rate (the system was idle, not
        failing), or 1.0 at the very start.  The SLO fields are *never*
        carried over an idle window: latency percentiles are None and
        admission pressure 0.0 when no requests arrived.  ``open_sessions``
        and ``transient_reservations`` are point-in-time gauges the caller
        samples at close.
        """
        if self._window_total > 0:
            rate = self._window_success / self._window_total
            pressure = self._window_contended / self._window_total
        elif self._samples:
            rate = self._samples[-1].success_rate
            pressure = 0.0
        else:
            rate = 1.0
            pressure = 0.0
        sample = WindowSample(
            time,
            rate,
            self._window_total,
            probing_ratio,
            p50_setup_latency_ms=percentile(self._window_latencies, 0.50),
            p99_setup_latency_ms=percentile(self._window_latencies, 0.99),
            admission_pressure=pressure,
            open_sessions=open_sessions,
            transient_reservations=transient_reservations,
        )
        self._samples.append(sample)
        if self.recorder.enabled:
            self.recorder.emit(
                "window.close",
                time=time,
                success_rate=rate,
                requests=sample.requests,
                probing_ratio=probing_ratio,
                carried=sample.requests == 0,
                p50_setup_latency_ms=sample.p50_setup_latency_ms,
                p99_setup_latency_ms=sample.p99_setup_latency_ms,
                admission_pressure=pressure,
                open_sessions=open_sessions,
                transient_reservations=transient_reservations,
            )
            self.recorder.set_gauge("window.success_rate", rate)
        self._window_success = 0
        self._window_total = 0
        self._window_contended = 0
        self._window_latencies = []
        return sample

    @property
    def window_samples(self) -> Tuple[WindowSample, ...]:
        return tuple(self._samples)

    # -- summaries ------------------------------------------------------------------

    def success_count(self) -> int:
        return sum(1 for record in self._records if record.success)

    def success_rate(self) -> float:
        if not self._records:
            return 0.0
        return self.success_count() / len(self._records)

    def failure_reasons(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for record in self._records:
            if not record.success and record.failure_reason:
                reasons[record.failure_reason] = (
                    reasons.get(record.failure_reason, 0) + 1
                )
        return reasons

    def build_report(
        self,
        algorithm: str,
        duration_s: float,
        state_update_messages: int = 0,
        aggregation_messages: int = 0,
        sessions_opened: int = 0,
        sessions_disrupted: int = 0,
        sessions_recovered: int = 0,
        sessions_killed: int = 0,
        recovery_probe_messages: int = 0,
        mean_recovery_latency_s: float = 0.0,
        state_updates_lost: int = 0,
        probe_messages_lost: int = 0,
        sessions_migrated: int = 0,
        migrations_aborted_on_slack: int = 0,
        migration_paused_stream_s: float = 0.0,
        migration_probe_messages: int = 0,
    ) -> SimulationReport:
        phis = [r.phi for r in self._records if r.success and r.phi is not None]
        latencies = [
            r.setup_latency_ms
            for r in self._records
            if r.success and r.setup_latency_ms is not None
        ]
        contended = sum(
            1
            for r in self._records
            if not r.success and r.failure_reason in CONTENTION_REASONS
        )
        return SimulationReport(
            algorithm=algorithm,
            duration_s=duration_s,
            total_requests=len(self._records),
            successes=self.success_count(),
            probe_messages=sum(r.probe_messages for r in self._records),
            setup_messages=sum(r.setup_messages for r in self._records),
            state_update_messages=state_update_messages,
            aggregation_messages=aggregation_messages,
            failure_reasons=self.failure_reasons(),
            window_samples=self.window_samples,
            mean_phi=sum(phis) / len(phis) if phis else None,
            sessions_opened=sessions_opened,
            sessions_disrupted=sessions_disrupted,
            sessions_recovered=sessions_recovered,
            sessions_killed=sessions_killed,
            recovery_probe_messages=recovery_probe_messages,
            mean_recovery_latency_s=mean_recovery_latency_s,
            state_updates_lost=state_updates_lost,
            probe_messages_lost=probe_messages_lost,
            sessions_migrated=sessions_migrated,
            migrations_aborted_on_slack=migrations_aborted_on_slack,
            migration_paused_stream_s=migration_paused_stream_s,
            migration_probe_messages=migration_probe_messages,
            p50_setup_latency_ms=percentile(latencies, 0.50),
            p99_setup_latency_ms=percentile(latencies, 0.99),
            admission_pressure=(
                contended / len(self._records) if self._records else 0.0
            ),
            peak_open_sessions=max(
                (s.open_sessions for s in self._samples if s.open_sessions is not None),
                default=0,
            ),
            peak_transient_reservations=max(
                (
                    s.transient_reservations
                    for s in self._samples
                    if s.transient_reservations is not None
                ),
                default=0,
            ),
        )
