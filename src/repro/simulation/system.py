"""System assembly: one config → the full distributed stream processing
system of Section 4.1.

``build_system`` wires every substrate together deterministically from a
single seed: the power-law IP topology, the overlay mesh, component
deployment, routing, the hierarchical state manager, the aggregation role,
and the resource allocator.  Experiments construct one
:class:`StreamSystem` per (algorithm, parameter point) so that algorithms
compared at the same seed see byte-identical systems and workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Union

from repro.allocation.allocator import ResourceAllocator
from repro.core.composer import CompositionContext
from repro.core.scoring_kernel import resolve_scoring_kernel
from repro.discovery.deployment import ComponentDeployer, DeploymentProfile
from repro.discovery.registry import ComponentRegistry
from repro.model.functions import FunctionCatalog
from repro.model.templates import TemplateLibrary
from repro.observability import NULL_RECORDER, Recorder
from repro.state.aggregation import AggregationManager, RotationPolicy
from repro.state.global_state import GlobalStateManager
from repro.state.local_state import LocalStateProvider
from repro.topology.deputy import DeputySelector
from repro.topology.ip_network import IPNetwork
from repro.topology.overlay import OverlayNetwork, build_overlay_network
from repro.topology.neighborhood import resolve_prune_k
from repro.topology.powerlaw import PowerLawTopologyGenerator
from repro.topology.routing import OverlayRouter


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of the simulated distributed stream processing system.

    Defaults reproduce Section 4.1: a 3200-router power-law IP network,
    N stream processing nodes in a K-neighbour overlay mesh, 80 functions,
    20 application templates, coarse-grain state updates at a 10 % drift
    threshold, and a 10-minute aggregation period.
    """

    num_routers: int = 3200
    num_nodes: int = 400
    neighbors_per_node: int = 6
    catalog_size: int = 80
    num_formats: int = 3
    num_templates: int = 20
    template_path_length: Tuple[int, int] = (2, 5)
    template_dag_fraction: float = 0.5
    deployment: DeploymentProfile = field(default_factory=DeploymentProfile)
    powerlaw_exponent: float = 2.2
    overlay_bandwidth_kbps: Tuple[float, float] = (20_000.0, 100_000.0)
    state_threshold_fraction: float = 0.1
    aggregation_period_s: float = 600.0
    aggregation_policy: RotationPolicy = RotationPolicy.ROUND_ROBIN
    transient_timeout_s: float = 10.0
    #: lazy per-source routing with dirty-set invalidation under churn;
    #: False restores the eager all-pairs re-solve baseline (the macro
    #: churn benchmark measures the ratio between the two)
    incremental_routing: bool = True
    #: bound on the router's per-source tree/path/QoS caches: router memory
    #: is O(router_cache_size × N) instead of O(N²).  The default exceeds
    #: the paper's 600-node scale, so paper-scale runs never evict and
    #: replay byte-identically; the scale benchmark shrinks it.  None
    #: restores the unbounded caches (the differential baseline).
    router_cache_size: Optional[int] = 1024
    #: bound on the scorer's per-source stale-bandwidth-row cache
    #: (``repro.core.fastscore``); same O(bound × N) rationale.  None means
    #: unbounded.
    scorer_row_cache_size: Optional[int] = 512
    #: locality-pruned candidate scoring: None (default) scores the full
    #: candidate pool at every level — committed figures replay
    #: byte-identically; "auto" derives a neighbourhood size from N
    #: (``repro.topology.neighborhood.resolve_prune_k``); an explicit int
    #: pins it.  A pruned level that yields no qualified expansion
    #: deterministically widens the neighbourhood and re-scores, so
    #: success is preserved, not traded away.
    candidate_prune_k: Union[int, str, None] = None
    #: bound on the neighbourhood index's (source, k) entry cache; each
    #: entry is O(k), so index memory is O(bound × k)
    neighborhood_cache_size: Optional[int] = 1024
    #: scoring backend for the vectorised probing hot path: "numpy" (the
    #: always-available reference), "numba" (compiled kernels, requires the
    #: optional numba extra, errors if missing), or "auto" (numba when
    #: importable, else numpy).  All backends make byte-identical decisions.
    scoring_kernel: str = "auto"
    #: sources per batched Dijkstra call during overlay construction; caps
    #: peak build memory at O(batch × routers) instead of O(nodes × routers)
    dijkstra_batch_size: int = 512
    seed: int = 0
    #: observability sink wired through every layer built from this
    #: config (router, composers, simulator); None means the shared
    #: zero-overhead null recorder.  Excluded from equality/hash so two
    #: configs describe the same system regardless of who watches it.
    recorder: Optional[Recorder] = field(
        default=None, compare=False, repr=False
    )

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_nodes(self, num_nodes: int) -> "SystemConfig":
        return replace(self, num_nodes=num_nodes)


@dataclass
class StreamSystem:
    """A fully wired system: topology, deployment, state, allocation."""

    config: SystemConfig
    catalog: FunctionCatalog
    templates: TemplateLibrary
    ip_network: IPNetwork
    network: OverlayNetwork
    router: OverlayRouter
    registry: ComponentRegistry
    global_state: GlobalStateManager
    aggregation: AggregationManager
    local_state: LocalStateProvider
    allocator: ResourceAllocator
    _deputy_selector: Optional[DeputySelector] = None
    #: the recorder the system was built with (the null singleton unless
    #: the config asked for tracing)
    recorder: Recorder = NULL_RECORDER

    @property
    def deputy_selector(self) -> DeputySelector:
        """Closest-node deputy lookup (built lazily — it precomputes a
        nodes x routers delay matrix)."""
        if self._deputy_selector is None:
            self._deputy_selector = DeputySelector(self.ip_network, self.network)
        return self._deputy_selector

    def composition_context(
        self,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = lambda: 0.0,
        recorder: Optional[Recorder] = None,
    ) -> CompositionContext:
        """A composer-facing view of this system."""
        return CompositionContext(
            network=self.network,
            router=self.router,
            registry=self.registry,
            allocator=self.allocator,
            global_state=self.global_state,
            local_state=self.local_state,
            rng=rng or random.Random(self.config.seed + 1),
            clock=clock,
            recorder=recorder or self.recorder,
            scoring_kernel=resolve_scoring_kernel(self.config.scoring_kernel),
            scorer_row_cache_size=self.config.scorer_row_cache_size,
            candidate_prune_k=resolve_prune_k(
                self.config.candidate_prune_k, len(self.network)
            ),
            neighborhood_cache_size=self.config.neighborhood_cache_size,
        )

    def mean_candidates_per_function(self) -> float:
        """Average candidate pool size k (diagnostics for probe budgets)."""
        counts = [
            self.registry.candidate_count(function) for function in self.catalog
        ]
        return sum(counts) / len(counts)


def build_system(config: SystemConfig) -> StreamSystem:
    """Deterministically build the full system described by ``config``.

    Sub-seeds are derived from ``config.seed`` so each stage has an
    independent stream and changing one knob does not scramble the others.
    """
    recorder = config.recorder if config.recorder is not None else NULL_RECORDER
    # resolve early so an unavailable/unknown backend or a malformed prune
    # spec fails at build time, not on the first compose
    resolve_scoring_kernel(config.scoring_kernel)
    resolve_prune_k(config.candidate_prune_k, config.num_nodes)
    catalog = FunctionCatalog(size=config.catalog_size, num_formats=config.num_formats)
    templates = TemplateLibrary(
        catalog,
        size=config.num_templates,
        path_length_range=config.template_path_length,
        dag_fraction=config.template_dag_fraction,
        seed=config.seed * 7 + 1,
    )
    router_graph = PowerLawTopologyGenerator(
        num_routers=config.num_routers,
        exponent=config.powerlaw_exponent,
        seed=config.seed * 7 + 2,
    ).generate()
    ip_network = IPNetwork(router_graph)
    network = build_overlay_network(
        ip_network,
        num_nodes=config.num_nodes,
        neighbors_per_node=config.neighbors_per_node,
        bandwidth_range_kbps=config.overlay_bandwidth_kbps,
        rng=random.Random(config.seed * 7 + 3),
        dijkstra_batch_size=config.dijkstra_batch_size,
    )
    overlay_router = OverlayRouter(
        network,
        incremental=config.incremental_routing,
        recorder=recorder,
        tree_cache_size=config.router_cache_size,
    )
    registry = ComponentDeployer(catalog, profile=config.deployment).deploy(
        network, rng=random.Random(config.seed * 7 + 4)
    )
    global_state = GlobalStateManager(
        network, threshold_fraction=config.state_threshold_fraction
    )
    aggregation = AggregationManager(
        network,
        global_state,
        policy=config.aggregation_policy,
        period_s=config.aggregation_period_s,
    )
    local_state = LocalStateProvider(network)
    allocator = ResourceAllocator(
        network, overlay_router, transient_timeout_s=config.transient_timeout_s
    )
    return StreamSystem(
        config=config,
        catalog=catalog,
        templates=templates,
        ip_network=ip_network,
        network=network,
        router=overlay_router,
        registry=registry,
        global_state=global_state,
        aggregation=aggregation,
        local_state=local_state,
        allocator=allocator,
        recorder=recorder,
    )
