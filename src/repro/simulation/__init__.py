"""Event-driven simulation testbed (paper Section 4.1).

System assembly, workload generation, the event engine, metrics, and the
end-to-end simulator that the experiment harness drives.
"""

from repro.simulation.failures import (
    FailureEvent,
    FailureInjector,
    FaultPlan,
    install_control_plane_faults,
)
from repro.simulation.engine import (
    EventScheduler,
    PeriodicTask,
    ScheduledEvent,
    SchedulerError,
)
from repro.simulation.metrics import (
    CONTENTION_REASONS,
    MetricsCollector,
    RequestRecord,
    SimulationReport,
    WindowSample,
    percentile,
)
from repro.simulation.population import (
    DiurnalCurve,
    PopulationProfile,
    PopulationWorkload,
    TrafficEvent,
    poisson_sample,
)
from repro.simulation.simulator import StreamProcessingSimulator
from repro.simulation.system import StreamSystem, SystemConfig, build_system
from repro.simulation.workload import (
    QOS_LEVELS,
    QoSLevel,
    RateSchedule,
    RecordingWorkload,
    ReplayWorkload,
    WorkloadGenerator,
    WorkloadProfile,
    WorkloadSource,
)

__all__ = [
    "CONTENTION_REASONS",
    "percentile",
    "DiurnalCurve",
    "PopulationProfile",
    "PopulationWorkload",
    "TrafficEvent",
    "poisson_sample",
    "WorkloadSource",
    "FailureInjector",
    "FailureEvent",
    "FaultPlan",
    "install_control_plane_faults",
    "EventScheduler",
    "ScheduledEvent",
    "PeriodicTask",
    "SchedulerError",
    "MetricsCollector",
    "RequestRecord",
    "SimulationReport",
    "WindowSample",
    "StreamProcessingSimulator",
    "StreamSystem",
    "SystemConfig",
    "build_system",
    "WorkloadGenerator",
    "RecordingWorkload",
    "ReplayWorkload",
    "WorkloadProfile",
    "RateSchedule",
    "QoSLevel",
    "QOS_LEVELS",
]
