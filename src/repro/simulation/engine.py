"""Event-driven simulation engine.

The paper's evaluation ran on "an event-driven optimal component
composition simulator in C++" (Section 4.1).  This is its Python
equivalent: a binary-heap future event list with a simulated clock,
one-shot and periodic scheduling, cancellation, and deterministic
tie-breaking (events at equal times fire in scheduling order).

The engine is deliberately minimal — callbacks, not process coroutines —
because composition is instantaneous relative to session timescales: every
domain action (request arrival, session teardown, state sampling,
aggregation round) is a single callback.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional


class SchedulerError(RuntimeError):
    """Raised on scheduling into the past or similar misuse."""


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "action", "name", "cancelled", "_in_heap", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        name: str,
        scheduler: "Optional[EventScheduler]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = False
        self._in_heap = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (safe after it fired: no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_heap and self._scheduler is not None:
            self._scheduler._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent({self.name!r} @ {self.time:g}s, {state})"


class PeriodicTask:
    """Handle to a repeating event; cancellation stops future firings."""

    __slots__ = ("interval", "name", "cancelled", "_current")

    def __init__(self, interval: float, name: str) -> None:
        self.interval = interval
        self.name = name
        self.cancelled = False
        self._current: Optional[ScheduledEvent] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()


class EventScheduler:
    """A future event list with a simulated clock (seconds).

    Cancelled events are removed lazily: each stays in the heap until
    popped, but whenever cancelled entries outnumber live ones the heap is
    compacted in one pass.  The heap therefore never exceeds twice the live
    event count and ``len()`` is O(1).
    """

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        # cancelled events still sitting in the heap; when they outnumber
        # the live ones the heap is compacted, so periodic-task churn
        # (schedule → cancel → reschedule) cannot grow the heap unboundedly
        self._cancelled_in_heap = 0
        #: events executed since construction
        self.processed = 0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    # -- cancelled-event bookkeeping ------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (amortised O(1) per cancel)."""
        for event in self._heap:
            if event.cancelled:
                event._in_heap = False
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # -- scheduling ----------------------------------------------------------

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        if not math.isfinite(time):
            raise SchedulerError(f"event time must be finite, got {time}")
        if time < self._now - 1e-12:
            raise SchedulerError(
                f"cannot schedule {name!r} at {time:g}s; clock is at {self._now:g}s"
            )
        event = ScheduledEvent(time, next(self._seq), action, name, scheduler=self)
        event._in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        if delay < 0.0:
            raise SchedulerError(f"negative delay {delay} for {name!r}")
        return self.schedule_at(self._now + delay, action, name)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        first_at: Optional[float] = None,
    ) -> PeriodicTask:
        """Fire ``action`` every ``interval`` seconds until cancelled.

        The first firing defaults to ``now + interval``.
        """
        if interval <= 0.0:
            raise SchedulerError(f"interval must be positive, got {interval}")
        task = PeriodicTask(interval, name)

        def fire() -> None:
            if task.cancelled:
                return
            action()
            if not task.cancelled:
                task._current = self.schedule_after(interval, fire, name)

        start = self._now + interval if first_at is None else first_at
        task._current = self.schedule_at(start, fire, name)
        return task

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event; False when the list is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            self.processed += 1
            event.action()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run every event with time ≤ ``end_time``, then set the clock to it.

        Events an executed callback schedules within the horizon also run.
        """
        if end_time < self._now:
            raise SchedulerError(
                f"horizon {end_time:g}s is before the clock {self._now:g}s"
            )
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                head._in_heap = False
                self._cancelled_in_heap -= 1
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = end_time

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event list drains (or ``max_events``); returns the
        number of events executed by this call."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
