"""The end-to-end stream processing simulation.

One :class:`StreamProcessingSimulator` runs one composition algorithm over
one system under one workload, reproducing the paper's experimental loop:

* Poisson request arrivals (time-varying rate supported);
* composition via the session middleware's ``find`` (composer + admission);
* sessions that hold their resources for 5–15 minutes and then close;
* transient-reservation expiry sweeps (the probe-timeout path);
* periodic success-rate sampling (Δt = 5 min by default), which also
  drives the adaptive probing-ratio tuner when one is attached;
* periodic virtual-link aggregation rounds with their message cost.

``run`` returns a :class:`SimulationReport` with the whole-run success
rate, message accounting, and the windowed time series Fig. 8 plots.
"""

from __future__ import annotations

from typing import Optional

from repro.core.acp import ACPComposer
from repro.core.composer import Composer
from repro.core.tuning import ProbingRatioTuner
from repro.middleware.migration import LiveSessionMigrationManager
from repro.middleware.session import RecoveryPolicy, SessionManager
from repro.observability import NULL_RECORDER, Recorder
from repro.placement.migration import ComponentMigrationManager
from repro.simulation.failures import FailureInjector
from repro.simulation.engine import EventScheduler
from repro.simulation.metrics import MetricsCollector, RequestRecord, SimulationReport
from repro.simulation.system import StreamSystem
from repro.simulation.workload import WorkloadSource


class StreamProcessingSimulator:
    """Event-driven run of one algorithm under one workload."""

    def __init__(
        self,
        system: StreamSystem,
        composer: Composer,
        workload: WorkloadSource,
        sampling_period_s: float = 300.0,
        tuner: Optional[ProbingRatioTuner] = None,
        migration: Optional[ComponentMigrationManager] = None,
        failures: Optional[FailureInjector] = None,
        recorder: Optional[Recorder] = None,
        recovery: Optional[RecoveryPolicy] = None,
        live_migration: Optional[LiveSessionMigrationManager] = None,
    ) -> None:
        if sampling_period_s <= 0.0:
            raise ValueError(f"sampling period must be positive: {sampling_period_s}")
        self.system = system
        self.composer = composer
        self.workload = workload
        self.sampling_period_s = sampling_period_s
        self.tuner = tuner
        self.migration = migration
        self.failures = failures
        self.recovery = recovery
        self.live_migration = live_migration
        self._recovery_sweep_pending = False
        if tuner is not None:
            if not isinstance(composer, ACPComposer):
                raise ValueError("only the ACP composer accepts a probing-ratio tuner")
            composer.attach_tuner(tuner)

        self.scheduler = EventScheduler()
        # the simulator is the observability wiring hub: one recorder
        # (argument > system default) reaches every layer, and trace
        # event timestamps follow the simulated clock.  Layers a caller
        # already pointed at a non-null recorder are left alone.
        self.recorder = recorder if recorder is not None else system.recorder
        self.recorder.bind_clock(lambda: self.scheduler.now)
        if composer.context.recorder is NULL_RECORDER:
            composer.context.recorder = self.recorder
        if system.router.recorder is NULL_RECORDER:
            system.router.recorder = self.recorder
        if tuner is not None and tuner.recorder is NULL_RECORDER:
            # repro-lint: disable=SHR404 -- the simulator is the documented
            # observability wiring hub (comment above); recorder fan-out
            # happens once at construction, before any events run
            tuner.recorder = self.recorder
        if failures is not None and failures.recorder is NULL_RECORDER:
            failures.recorder = self.recorder
        if migration is not None and migration.recorder is NULL_RECORDER:
            # repro-lint: disable=SHR404 -- observability wiring hub (above)
            migration.recorder = self.recorder
        if live_migration is not None and live_migration.recorder is NULL_RECORDER:
            # repro-lint: disable=SHR404 -- observability wiring hub (above)
            live_migration.recorder = self.recorder
            live_migration.detector.recorder = self.recorder

        self.metrics = MetricsCollector(recorder=self.recorder)
        self._pending_arrival = None
        self.sessions = SessionManager(
            composer,
            system.allocator,
            clock=lambda: self.scheduler.now,
            recorder=self.recorder,
            recovery=recovery,
        )
        if live_migration is not None:
            live_migration.bind_sessions(self.sessions)
        # composers read the simulated clock for reservation deadlines
        composer.context.clock = lambda: self.scheduler.now

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self) -> None:
        now = self.scheduler.now
        request = self.workload.make_request(now)
        session_id, outcome = self.sessions.find(request)
        phi = outcome.phi if outcome.success else None
        setup_latency_ms = None
        if session_id is not None and outcome.composition is not None:
            # session setup cost: one probe wavefront out plus one
            # confirmation back along the committed composition's critical
            # virtual-link path (pure function of the composition — no
            # randomness, so the rng streams are untouched)
            setup_latency_ms = 2.0 * outcome.composition.worst_link_delay_ms()
        self.metrics.record(
            RequestRecord(
                request_id=request.request_id,
                arrival_time=now,
                success=session_id is not None,
                probe_messages=outcome.probe_messages,
                setup_messages=outcome.setup_messages,
                explored=outcome.explored,
                phi=phi,
                failure_reason=outcome.failure_reason,
                setup_latency_ms=setup_latency_ms,
            )
        )
        if session_id is not None:
            # close_or_abandon: the session may be gone (crash-killed) or
            # still RECOVERING when its natural lifetime ends
            self.scheduler.schedule_after(
                request.duration,
                lambda sid=session_id: self.sessions.close_or_abandon(sid),
                name=f"close#{session_id}",
            )
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        delay = self.workload.next_interarrival(self.scheduler.now)
        self._pending_arrival = self.scheduler.schedule_after(
            delay, self._on_arrival, name="arrival"
        )

    def _on_sampling_tick(self) -> None:
        now = self.scheduler.now
        # sample the reservation queue *before* the expiry sweep: the gauge
        # should show what piled up over the window, not the swept floor
        transient = len(self.system.allocator.transient_request_ids)
        # probe reservations whose confirmation never came time out here
        self.system.allocator.expire_due(now)
        ratio = None
        if isinstance(self.composer, ACPComposer):
            ratio = self.composer.current_probing_ratio()
        sample = self.metrics.close_window(
            now,
            probing_ratio=ratio,
            open_sessions=self.sessions.active_session_count,
            transient_reservations=transient,
        )
        # an idle window carries the previous rate forward for the Fig. 8
        # series, but that carried value is NOT a measurement of the
        # current ratio — feeding it to the tuner would register phantom
        # profile points and could trigger spurious re-profiles
        if self.tuner is not None and sample.requests > 0:
            self.tuner.record_sample(sample.success_rate, time=now)

    def _on_aggregation_round(self) -> None:
        self.system.aggregation.run_round()

    def _on_migration_round(self) -> None:
        if self.migration is not None:
            self.migration.run_round(now=self.scheduler.now)

    def _on_rebalance_round(self) -> None:
        """One live-migration round: the manager starts state transfers,
        the simulator schedules each one's commit ``pause_s`` later."""
        if self.live_migration is None:
            return
        now = self.scheduler.now
        started = self.live_migration.run_round(
            now, admission_pressure=self.metrics.latest_admission_pressure
        )
        for record in started:
            self.scheduler.schedule_after(
                record.pause_s,
                lambda sid=record.session_id: self.sessions.complete_migration(
                    sid
                ),
                name=f"migrate#{record.session_id}",
            )

    def _on_failure_round(self) -> None:
        if self.failures is not None:
            self.failures.run_round(
                sessions=self.sessions, now=self.scheduler.now
            )
            if self.recovery is not None:
                self._maybe_schedule_recovery(self.recovery.detection_delay_s)

    def _maybe_schedule_recovery(self, delay_s: float) -> None:
        """Schedule one recovery sweep if sessions await re-composition.

        At most one sweep is in flight at a time; the first after a fault
        round fires after the policy's detection delay, and follow-up
        sweeps (for sessions whose re-composition failed and gets retried
        until the deadline) are paced at least a second apart so a
        zero-delay policy cannot spin the scheduler at one timestamp.
        """
        if self._recovery_sweep_pending:
            return
        if self.sessions.recovering_count == 0:
            return
        self._recovery_sweep_pending = True
        self.scheduler.schedule_after(
            delay_s, self._on_recovery_sweep, name="recovery"
        )

    def _on_recovery_sweep(self) -> None:
        self._recovery_sweep_pending = False
        self.sessions.recover_pending(now=self.scheduler.now)
        assert self.recovery is not None
        self._maybe_schedule_recovery(max(self.recovery.detection_delay_s, 1.0))

    # -- runs -------------------------------------------------------------------

    def run(self, duration_s: float) -> SimulationReport:
        """Simulate ``duration_s`` seconds and return the report."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        state = self.system.global_state
        aggregation = self.system.aggregation
        control = self.composer.context.control
        state_messages_before = state.total_update_messages
        aggregation_messages_before = aggregation.broadcast_messages
        state_lost_before = state.total_updates_lost
        probes_lost_before = control.messages_lost
        if self.recorder.enabled:
            self.recorder.emit(
                "sim.start",
                algorithm=self.composer.name,
                duration_s=duration_s,
                sampling_period_s=self.sampling_period_s,
                adaptive=self.tuner is not None,
            )

        self._schedule_next_arrival()
        sampling = self.scheduler.schedule_periodic(
            self.sampling_period_s, self._on_sampling_tick, name="sampling"
        )
        aggregating = self.scheduler.schedule_periodic(
            self.system.config.aggregation_period_s,
            self._on_aggregation_round,
            name="aggregation",
        )
        migrating = None
        if self.migration is not None:
            migrating = self.scheduler.schedule_periodic(
                self.migration.period_s, self._on_migration_round, name="migration"
            )
        rebalancing = None
        if self.live_migration is not None:
            rebalancing = self.scheduler.schedule_periodic(
                self.live_migration.period_s,
                self._on_rebalance_round,
                name="rebalance",
            )
        failing = None
        if self.failures is not None:
            failing = self.scheduler.schedule_periodic(
                self.failures.period_s, self._on_failure_round, name="failures"
            )
        self.scheduler.run_until(duration_s)
        sampling.cancel()
        aggregating.cancel()
        if migrating is not None:
            migrating.cancel()
        if rebalancing is not None:
            rebalancing.cancel()
        if failing is not None:
            failing.cancel()
        if self._pending_arrival is not None:
            # stop the arrival process at the horizon so the event list can
            # drain (open sessions still close on their own schedule)
            self._pending_arrival.cancel()

        report = self.metrics.build_report(
            algorithm=self.composer.name,
            duration_s=duration_s,
            state_update_messages=state.total_update_messages
            - state_messages_before,
            aggregation_messages=aggregation.broadcast_messages
            - aggregation_messages_before,
            sessions_opened=self.sessions.sessions_created,
            sessions_disrupted=self.sessions.sessions_disrupted,
            sessions_recovered=self.sessions.sessions_recovered,
            sessions_killed=self.sessions.sessions_killed,
            recovery_probe_messages=self.sessions.recovery_probe_messages,
            mean_recovery_latency_s=self.sessions.mean_recovery_latency_s,
            state_updates_lost=state.total_updates_lost - state_lost_before,
            probe_messages_lost=control.messages_lost - probes_lost_before,
            sessions_migrated=self.sessions.sessions_migrated,
            migrations_aborted_on_slack=(
                self.live_migration.migrations_aborted_on_slack
                if self.live_migration is not None
                else 0
            ),
            migration_paused_stream_s=(
                self.live_migration.migration_paused_stream_s
                if self.live_migration is not None
                else 0.0
            ),
            migration_probe_messages=(
                self.live_migration.migration_probe_messages
                if self.live_migration is not None
                else 0
            ),
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "sim.end",
                algorithm=report.algorithm,
                total_requests=report.total_requests,
                successes=report.successes,
                probe_messages=report.probe_messages,
            )
        return report
