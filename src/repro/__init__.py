"""repro — ACP (Adaptive Composition Probing) for scalable stream processing.

A full reproduction of Gu, Yu, Nahrstedt, "Optimal Component Composition for
Scalable Stream Processing" (ICDCS 2005): the distributed stream processing
system model, the ACP composition algorithm with hierarchical state
management and probing-ratio self-tuning, the baseline algorithms it is
evaluated against, and the event-driven simulation testbed that regenerates
every figure of the paper's evaluation.
"""

__version__ = "1.0.0"
