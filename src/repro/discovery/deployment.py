"""Component deployment onto the overlay.

Section 4.1: "Each node provides a number of components whose functions are
selected from 80 pre-defined functions."  Section 2.1: "Due to the
constraints of security, software licence, and hardware requirements, we do
not assume that each node can provide all stream processing components."

:class:`ComponentDeployer` places component instances on overlay nodes and
returns the populated :class:`ComponentRegistry`.  Two properties the
evaluation depends on are guaranteed:

* **Coverage** — every catalog function gets at least one instance (a
  function with zero candidates would fail every request touching it for
  *every* algorithm, polluting the comparison with noise unrelated to
  composition quality).  The first pass deals one instance of each function
  to a distinct random node; remaining instances are placed uniformly.
* **Proportional scaling** — the per-node component count is drawn from a
  fixed range, so adding nodes grows every function's candidate pool
  proportionally, exactly the Section 4.2 scalability setup ("the number of
  candidate components for each function increases proportionally").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.discovery.registry import ComponentRegistry
from repro.model.component import Component
from repro.model.functions import FunctionCatalog, StreamFunction
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSSchema, QoSVector
from repro.topology.overlay import OverlayNetwork


@dataclass(frozen=True)
class DeploymentProfile:
    """Distributions governing deployed component properties.

    Attributes:
        components_per_node: Inclusive range of instances per node.
        processing_delay_ms: Uniform range of component processing delay.
        loss_rate: Uniform range of component loss rate.
        max_input_rate: Uniform range of the interface's maximum input
            stream rate (data units/s).
        input_format_restriction_prob: Probability that a component narrows
            its accepted input formats to a single format (exercising the
            paper's interface compatibility filter); otherwise it accepts
            the whole format universe.
        attribute_pool: ``(tag, probability)`` pairs; each deployed
            component advertises each tag independently with its
            probability.  Empty by default — attribute constraints are the
            paper's future-work extension and off unless an experiment
            turns them on.
    """

    components_per_node: Tuple[int, int] = (1, 3)
    processing_delay_ms: Tuple[float, float] = (5.0, 50.0)
    loss_rate: Tuple[float, float] = (0.001, 0.01)
    max_input_rate: Tuple[float, float] = (150.0, 600.0)
    input_format_restriction_prob: float = 0.1
    attribute_pool: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        low, high = self.components_per_node
        if not (0 <= low <= high):
            raise ValueError(f"invalid components_per_node {self.components_per_node}")
        if not 0.0 <= self.input_format_restriction_prob <= 1.0:
            raise ValueError("input_format_restriction_prob must be in [0, 1]")
        for tag, probability in self.attribute_pool:
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"attribute probability for {tag!r} must be in [0, 1]"
                )


class ComponentDeployer:
    """Places component instances on nodes and builds the registry."""

    def __init__(
        self,
        catalog: FunctionCatalog,
        profile: DeploymentProfile = DeploymentProfile(),
        qos_schema: QoSSchema = DEFAULT_QOS_SCHEMA,
    ) -> None:
        self.catalog = catalog
        self.profile = profile
        self.qos_schema = qos_schema
        self._next_component_id = 0

    def _make_component(
        self, rng: random.Random, function: StreamFunction, node_id: int
    ) -> Component:
        profile = self.profile
        qos = QoSVector(
            self.qos_schema,
            [
                rng.uniform(*profile.processing_delay_ms),
                rng.uniform(*profile.loss_rate),
            ],
        )
        formats = sorted(function.input_formats)
        if rng.random() < profile.input_format_restriction_prob:
            input_formats = frozenset([rng.choice(formats)])
        else:
            input_formats = function.input_formats
        output_format = rng.choice(sorted(function.output_formats))
        attributes = frozenset(
            tag
            for tag, probability in profile.attribute_pool
            if rng.random() < probability
        )
        component = Component(
            component_id=self._next_component_id,
            function=function,
            node_id=node_id,
            qos=qos,
            input_formats=input_formats,
            output_format=output_format,
            max_input_rate=rng.uniform(*profile.max_input_rate),
            attributes=attributes,
        )
        self._next_component_id += 1
        return component

    def deploy(
        self,
        network: OverlayNetwork,
        rng: Optional[random.Random] = None,
    ) -> ComponentRegistry:
        """Deploy components over ``network`` and return the registry.

        The total instance count is the sum of per-node draws from
        ``components_per_node``; the first ``len(catalog)`` instances cover
        every function once (on distinct nodes where possible).
        """
        # explicit fixed seed when the caller doesn't care about the stream;
        # never the process-global RNG, so builds replay byte-identically
        rng = rng if rng is not None else random.Random(0)
        registry = ComponentRegistry()
        per_node_quota = {
            node.node_id: rng.randint(*self.profile.components_per_node)
            for node in network.nodes
        }
        total = sum(per_node_quota.values())
        if total < len(self.catalog):
            raise ValueError(
                f"deployment too small: {total} instances cannot cover "
                f"{len(self.catalog)} functions; raise components_per_node "
                f"or add nodes"
            )

        # Pass 1: coverage — one instance of every function, dealt to nodes
        # with remaining quota in shuffled order.
        open_nodes = [n for n, quota in per_node_quota.items() if quota > 0]
        rng.shuffle(open_nodes)
        for function in self.catalog:
            node_id = open_nodes.pop(0)
            component = self._make_component(rng, function, node_id)
            network.node(node_id).host(component)
            registry.register(component)
            per_node_quota[node_id] -= 1
            if per_node_quota[node_id] > 0:
                open_nodes.append(node_id)
            if not open_nodes:
                open_nodes = [n for n, q in per_node_quota.items() if q > 0]
                rng.shuffle(open_nodes)

        # Pass 2: fill remaining quota with uniformly random functions.
        for node_id, quota in per_node_quota.items():
            for _ in range(quota):
                function = self.catalog[rng.randrange(len(self.catalog))]
                component = self._make_component(rng, function, node_id)
                network.node(node_id).host(component)
                registry.register(component)
        return registry
