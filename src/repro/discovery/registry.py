"""Component discovery.

Section 3.3, per-hop probe processing step 3: "v_i acquires the locations
of all available candidate components for each next-hop function using a
decentralized service discovery system [6]."

The cited system (SpiderNet) is a DHT; its mechanics are orthogonal to the
composition algorithm, which only needs the *answer*: every deployed
component providing a given function.  :class:`ComponentRegistry` provides
that lookup.  Registration order is preserved — the *static* baseline
algorithm picks "a fixed candidate component for each function"
(Section 4.1), which we define as the first-registered one, so determinism
matters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.model.component import Component
from repro.model.functions import StreamFunction


class ComponentRegistry:
    """Function → deployed candidate components lookup."""

    def __init__(self, components: Iterable[Component] = ()) -> None:
        self._by_function: Dict[int, List[Component]] = {}
        self._by_id: Dict[int, Component] = {}
        #: monotone deployment epoch, bumped by register/replace; consumers
        #: (``repro.core.fastscore``) key candidate tables on it
        self.version = 0
        for component in components:
            self.register(component)

    def register(self, component: Component) -> None:
        """Add a deployed component (order defines the static baseline)."""
        if component.component_id in self._by_id:
            raise ValueError(f"duplicate component id {component.component_id}")
        self._by_id[component.component_id] = component
        self._by_function.setdefault(component.function.function_id, []).append(
            component
        )
        self.version += 1

    def __len__(self) -> int:
        return len(self._by_id)

    def component(self, component_id: int) -> Component:
        """Look a component up by id, raising on unknown ids."""
        try:
            return self._by_id[component_id]
        except KeyError:
            raise KeyError(f"unknown component id {component_id}") from None

    def replace(self, replacement: Component) -> Component:
        """Swap a registered component for a new instance with the same id.

        Used by component migration: the instance keeps its identity but
        moves to another node (and may change interface details).  The
        registration *order* is preserved — the static baseline's fixed
        choice stays stable across migrations.  Returns the old instance.
        """
        old = self.component(replacement.component_id)
        if old.function.function_id != replacement.function.function_id:
            raise ValueError(
                f"replacement for c{old.component_id} must provide "
                f"{old.function.name}, got {replacement.function.name}"
            )
        self._by_id[replacement.component_id] = replacement
        pool = self._by_function[old.function.function_id]
        pool[pool.index(old)] = replacement
        self.version += 1
        return old

    def candidates(self, function: StreamFunction) -> Tuple[Component, ...]:
        """All candidate components providing ``function`` (may be empty)."""
        return tuple(self._by_function.get(function.function_id, ()))

    def candidate_count(self, function: StreamFunction) -> int:
        """k_i — the candidate pool size the probing ratio applies to."""
        return len(self._by_function.get(function.function_id, ()))

    def static_choice(self, function: StreamFunction) -> Optional[Component]:
        """The fixed candidate used by the *static* baseline (first
        registered), or None if the function has no deployment."""
        candidates = self._by_function.get(function.function_id)
        return candidates[0] if candidates else None

    def functions_covered(self) -> Tuple[int, ...]:
        """Function ids that have at least one deployed component."""
        return tuple(sorted(self._by_function))

    def components(self) -> Tuple[Component, ...]:
        """Every registered component, in registration order."""
        return tuple(self._by_id.values())
