"""Component deployment and discovery.

Stands in for the paper's decentralized service discovery system (SpiderNet
[6]): deployment places component instances on overlay nodes; the registry
answers "which components provide function F?" for the composition
algorithms.
"""

from repro.discovery.deployment import ComponentDeployer, DeploymentProfile
from repro.discovery.registry import ComponentRegistry

__all__ = ["ComponentDeployer", "DeploymentProfile", "ComponentRegistry"]
