"""ACP — Adaptive Composition Probing (the paper's contribution).

:class:`ACPComposer` is the probing protocol with both of ACP's defining
choices enabled:

* per-hop candidate selection *guided by the coarse-grain global state*
  (risk function Eq. 9, congestion function Eq. 10, top-M under the
  probing ratio), and
* optimal final selection at the deputy: among compositions qualified
  against the probes' precise collected state, minimise the congestion
  aggregation φ(λ) of Eq. 1.

The *adaptive* half — tuning the probing ratio to hold a target
composition success rate — lives in
:class:`~repro.core.tuning.ProbingRatioTuner`; attach one via
:meth:`ACPComposer.attach_tuner` and the composer will read its ratio for
every request.
"""

from __future__ import annotations

from typing import Optional

from repro.core.composer import CompositionContext
from repro.core.prober import (
    FinalSelectionPolicy,
    HopSelectionPolicy,
    ProbingComposer,
)
from repro.core.tuning import ProbingRatioTuner


class ACPComposer(ProbingComposer):
    """Adaptive composition probing (Sections 3.1–3.5)."""

    name = "ACP"

    def __init__(
        self,
        context: CompositionContext,
        probing_ratio: float = 0.3,
        tuner: Optional[ProbingRatioTuner] = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            context,
            probing_ratio=probing_ratio,
            hop_policy=HopSelectionPolicy.GUIDED,
            final_policy=FinalSelectionPolicy.PHI,
            use_global_state=True,
            ratio_provider=None,
            vectorized=vectorized,
        )
        self.tuner = tuner
        if tuner is not None:
            self.attach_tuner(tuner)

    def attach_tuner(self, tuner: ProbingRatioTuner) -> None:
        """Drive the probing ratio from an adaptive tuner (Section 3.4)."""
        self.tuner = tuner
        self._ratio_provider = tuner.current_ratio

    def detach_tuner(self) -> None:
        """Return to the fixed probing ratio."""
        self.tuner = None
        self._ratio_provider = None
