"""Probe messages (Section 3.1, 3.3).

A probe carries "the composition request information (e.g., the function
graph ξ, QoS constraints Q^req, resource constraints R^req) and the probing
ratio α", and as it travels it accumulates (a) a partial component
composition and (b) the *precise* QoS/resource states collected from the
nodes it visits — the fine-grain information the deputy's final selection
runs on.

:class:`Probe` is an immutable-ish record: spawning a child probe copies
the parent's state and extends it with the next-hop component (the paper's
"Each new probe ... inherits the states collected by its parent probe").
The hop-by-hop protocol around probes lives in ``repro.core.prober``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.model.component import Component
from repro.model.qos import QoSVector
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector


@dataclass
class Probe:
    """One probe message with its partial composition and collected state."""

    probe_id: int
    request: StreamRequest
    probing_ratio: float
    #: function placement index -> selected component, for assigned prefixes
    assignment: Dict[int, Component] = field(default_factory=dict)
    #: placement index -> worst-path QoS accumulated through its *output*
    accumulated_out: Dict[int, QoSVector] = field(default_factory=dict)
    #: precise node availability observed when the probe visited the node
    collected_node_state: Dict[int, ResourceVector] = field(default_factory=dict)
    #: precise virtual-link bottleneck bandwidth per function-graph edge
    collected_link_bw: Dict[Tuple[int, int], float] = field(default_factory=dict)
    hops: int = 0
    parent_id: Optional[int] = None

    def covers(self, function_index: int) -> bool:
        """Whether this probe's partial composition assigns the placement."""
        return function_index in self.assignment

    def component_of(self, function_index: int) -> Component:
        """The component assigned to a covered placement."""
        return self.assignment[function_index]

    def spawn(
        self,
        probe_id: int,
        function_index: int,
        component: Component,
        accumulated: QoSVector,
        observed_available: ResourceVector,
        observed_link_bw: Dict[Tuple[int, int], float],
    ) -> "Probe":
        """Child probe extending this one with ``component`` at the placement.

        ``observed_available`` is the precise availability of the
        component's node as seen on arrival; ``observed_link_bw`` maps each
        traversed function-graph edge to the precise bottleneck bandwidth of
        its virtual link.
        """
        assignment = dict(self.assignment)
        assignment[function_index] = component
        accumulated_out = dict(self.accumulated_out)
        accumulated_out[function_index] = accumulated
        node_state = dict(self.collected_node_state)
        node_state[component.node_id] = observed_available
        link_bw = dict(self.collected_link_bw)
        link_bw.update(observed_link_bw)
        return Probe(
            probe_id=probe_id,
            request=self.request,
            probing_ratio=self.probing_ratio,
            assignment=assignment,
            accumulated_out=accumulated_out,
            collected_node_state=node_state,
            collected_link_bw=link_bw,
            hops=self.hops + 1,
            parent_id=self.probe_id,
        )

    def __repr__(self) -> str:
        placements = ",".join(
            f"F{i}:c{c.component_id}" for i, c in sorted(self.assignment.items())
        )
        return f"Probe(#{self.probe_id} req={self.request.request_id} [{placements}])"


class ProbeFactory:
    """Dense probe-id assignment within one composition attempt."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def initial(self, request: StreamRequest, probing_ratio: float) -> Probe:
        """The deputy's initial probe P0 (Section 3.3, step 1)."""
        return Probe(
            probe_id=next(self._counter),
            request=request,
            probing_ratio=probing_ratio,
        )

    def next_id(self) -> int:
        """A fresh probe id for a spawned child."""
        return next(self._counter)
