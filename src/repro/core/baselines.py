"""Baseline composition algorithms from the evaluation (Section 4.1).

* **Random** — "randomly selects a candidate component for each required
  function"; no probing, no load awareness.  The pick is admitted only if
  the resulting composition happens to satisfy Eqs. 2–5.
* **Static** — "selects a fixed candidate component for each function"
  (the first-registered instance); all load for a function lands on one
  node, so contention collapses it quickly.
* **SP (selective probing)** — "only uses the ACP's per-hop candidate
  component selection scheme but replaces the optimal composition
  selection (Equation 1) with random composition selection."
* **RP (random probing)** — "performs random per-hop candidate component
  selection but uses the ACP's optimal composition selection scheme.  The
  RP approach represents the fully distributed approach since it only
  requires local states."

SP and RP are configurations of the shared probing protocol
(:class:`~repro.core.prober.ProbingComposer`); Random and Static are
implemented directly here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.composer import Composer, CompositionContext, CompositionOutcome
from repro.core.prober import (
    FinalSelectionPolicy,
    HopSelectionPolicy,
    ProbingComposer,
)
from repro.model.component import Component
from repro.model.request import StreamRequest


class SelectiveProbingComposer(ProbingComposer):
    """SP: guided per-hop selection, random final selection."""

    name = "SP"

    def __init__(
        self,
        context: CompositionContext,
        probing_ratio: float = 0.3,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            context,
            probing_ratio=probing_ratio,
            hop_policy=HopSelectionPolicy.GUIDED,
            final_policy=FinalSelectionPolicy.RANDOM,
            use_global_state=True,
            vectorized=vectorized,
        )


class RandomProbingComposer(ProbingComposer):
    """RP: random per-hop selection (no global state), φ-optimal final."""

    name = "RP"

    def __init__(
        self,
        context: CompositionContext,
        probing_ratio: float = 0.3,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            context,
            probing_ratio=probing_ratio,
            hop_policy=HopSelectionPolicy.RANDOM,
            final_policy=FinalSelectionPolicy.PHI,
            use_global_state=False,
            vectorized=vectorized,
        )


class _OneShotComposer(Composer):
    """Shared machinery for the probe-less Random and Static baselines."""

    def _pick(self, request: StreamRequest, function_index: int) -> Optional[Component]:
        raise NotImplementedError

    def compose(self, request: StreamRequest) -> CompositionOutcome:
        """Pick one candidate per function and admit it if feasible."""
        graph = request.function_graph
        assignment: Dict[int, Component] = {}
        for function_index in graph.topological_order():
            candidate = self._pick(request, function_index)
            if candidate is None:
                return self._fail(request, "no_candidates")
            assignment[function_index] = candidate
        used = [c.component_id for c in assignment.values()]
        if len(set(used)) != len(used):
            # the same instance was drawn for two placements — not runnable
            return self._fail(request, "duplicate_component")
        if not self.evaluator.interface_compatible(request, assignment):
            return self._fail(request, "incompatible_interfaces")
        composition = self.evaluator.build_component_graph(request, assignment)
        ok, reason = self.evaluator.feasible(composition)
        if not ok:
            return self._fail(request, reason or "infeasible")
        return CompositionOutcome(
            request=request,
            composition=composition,
            success=True,
            setup_messages=self._setup_messages(composition),
            explored=1,
            phi=self.evaluator.phi(composition),
        )


class RandomComposer(_OneShotComposer):
    """Random: uniformly random candidate per function, no probing."""

    name = "Random"

    def _pick(self, request: StreamRequest, function_index: int) -> Optional[Component]:
        function = request.function_graph.node(function_index).function
        candidates = self.context.registry.candidates(function)
        if not candidates:
            return None
        return candidates[self.context.rng.randrange(len(candidates))]


class StaticComposer(_OneShotComposer):
    """Static: the fixed (first-registered) candidate per function."""

    name = "Static"

    def _pick(self, request: StreamRequest, function_index: int) -> Optional[Component]:
        function = request.function_graph.node(function_index).function
        return self.context.registry.static_choice(function)
