"""Vectorised candidate scoring for the probing hot path.

Every simulated request runs the probing wavefront of
:class:`~repro.core.prober.ProbingComposer`, and within it the dominant
cost is scoring ``beam × candidates`` expansions per function level:
compatibility filtering, Eq. 6–8 qualification against the coarse-grain
global state, and the Eq. 9/10 risk/congestion ranking.  The scalar
reference path does all of that through per-pair ``QoSVector`` /
``ResourceVector`` allocations and per-pair router queries.

:class:`FastScorer` replaces the inner loops with NumPy array operations
over the whole candidate pool of a function, fed by caches that persist
*across* requests and invalidate on the substrate's epochs:

* **candidate tables** (per function) — candidate QoS, ``max_input_rate``,
  node ids, format/attribute bitmasks, node capacity matrix; keyed on
  :attr:`ComponentRegistry.version` (bumped by deploy/migration);
* **stale effective QoS** (per table) — the load-dependent component QoS
  evaluated at the global state's stale node availability, plus the stale
  node-available resource matrix; keyed on
  :attr:`GlobalStateManager.node_version`;
* **virtual-link QoS rows** (per source node) — delay/loss to every
  destination, served read-only by :meth:`OverlayRouter.virtual_link_rows`
  and maintained incrementally under churn by the router itself;
* **stale virtual-link bottleneck bandwidth** (per source node) — one
  whole-row tree pass (:meth:`OverlayRouter.bottleneck_bandwidth_row` over
  :attr:`GlobalStateManager.link_available_array`) re-validated against
  ``(link_version, row_version)``, so a churn event rebuilds only the rows
  of sources whose shortest-path tree actually changed.

This supersedes the per-compose ``_stale_qos_memo`` / ``_stale_bw_memo``
rebuild the prober used to carry on the instance: nothing here is
per-request state, so nothing outlives (or leaks from) one ``compose()``.

Every array expression mirrors the scalar reference's operation order
(raw-space QoS accumulation, additive-space risk ratios, term-ordered
congestion sums), so both paths make identical composition decisions —
``tests/test_fastscore.py`` asserts this property end to end.  The one
knowingly tolerated divergence is ``np.log1p`` vs ``math.log1p`` in the
risk transform, which can differ in the last ulp on exotic libms; it can
only matter when a risk ratio lands exactly on a tie-bucket boundary.
"""

from __future__ import annotations

import math
import sys
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scoring_kernel import get_scoring_kernel
from repro.core.selection import (
    RISK_TIE_EPSILON,
    RankingPolicy,
    ScoredCandidate,
)
from repro.model.lru import LRUDict
from repro.observability.hotpath import hot_path
from repro.model.component import Component
from repro.model.qos import MetricKind, QoSVector
from repro.model.qos_model import LoadDependentQoSModel
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector

if TYPE_CHECKING:  # runtime import would cycle: composer lazily imports us
    from repro.core.composer import CompositionContext

#: Loss values are clamped just below 1 before the additive transform,
#: matching ``QoSVector.additive_values``.
_MAX_LOSS = 1.0 - 1e-12

#: Schema layout the vectorised path is specialised to (the default
#: delay/loss metric pair); anything else falls back to the scalar
#: reference implementation.
_SUPPORTED_KINDS = (MetricKind.ADDITIVE, MetricKind.MULTIPLICATIVE_LOSS)


class _CandidateTable:
    """Array view of one function's candidate pool (registry-version keyed)."""

    __slots__ = (
        "components",
        "component_ids",
        "node_ids",
        "max_input_rate",
        "base_delay",
        "base_loss",
        "input_format_bits",
        "format_bit",
        "attribute_bits",
        "attribute_bit",
        "capacity",
        "registry_version",
        "stale_version",
        "stale_available",
        "stale_delay",
        "stale_loss",
    )

    def __init__(self, components: Sequence[Component], registry_version: int) -> None:
        self.components: Tuple[Component, ...] = tuple(components)
        self.registry_version = registry_version
        k = len(self.components)
        self.component_ids = np.fromiter(
            (c.component_id for c in self.components), dtype=np.int64, count=k
        )
        self.node_ids = np.fromiter(
            (c.node_id for c in self.components), dtype=np.int64, count=k
        )
        self.max_input_rate = np.fromiter(
            (c.max_input_rate for c in self.components), dtype=np.float64, count=k
        )
        self.base_delay = np.fromiter(
            (c.qos.values[0] for c in self.components), dtype=np.float64, count=k
        )
        self.base_loss = np.fromiter(
            (c.qos.values[1] for c in self.components), dtype=np.float64, count=k
        )

        # format vocabulary over this pool's input formats: a candidate
        # accepts an upstream iff the upstream's output-format bit is set
        self.format_bit: Dict[str, int] = {}
        input_bits = []
        for component in self.components:
            bits = 0
            for fmt in component.input_formats:
                bit = self.format_bit.setdefault(fmt, len(self.format_bit))
                bits |= 1 << bit
            input_bits.append(bits)
        self.input_format_bits = np.asarray(input_bits, dtype=np.int64)

        # capability-tag vocabulary: a candidate satisfies a demand iff it
        # advertises every demanded tag (tags unknown to the whole pool
        # disqualify every candidate)
        self.attribute_bit: Dict[str, int] = {}
        attr_bits = []
        for component in self.components:
            bits = 0
            for tag in component.attributes:
                bit = self.attribute_bit.setdefault(tag, len(self.attribute_bit))
                bits |= 1 << bit
            attr_bits.append(bits)
        self.attribute_bits = np.asarray(attr_bits, dtype=np.int64)

        self.capacity: Optional[np.ndarray] = None  # filled by ensure_stale
        self.stale_version = -1
        self.stale_available: Optional[np.ndarray] = None
        self.stale_delay: Optional[np.ndarray] = None
        self.stale_loss: Optional[np.ndarray] = None

    def required_attribute_mask(
        self, required: FrozenSet[str]
    ) -> Optional[np.ndarray]:
        """Boolean qualification mask for demanded tags (None = all pass)."""
        if not required:
            return None
        bits = 0
        # repro-lint: disable=DET103 -- bitwise-OR fold; iteration order is unobservable
        for tag in required:
            bit = self.attribute_bit.get(tag)
            if bit is None:
                return np.zeros(len(self.components), dtype=bool)
            bits |= 1 << bit
        return (self.attribute_bits & bits) == bits

    def format_mask(self, output_format: str) -> Optional[np.ndarray]:
        """Which candidates accept ``output_format`` (None = none do)."""
        bit = self.format_bit.get(output_format)
        if bit is None:
            return None
        return (self.input_format_bits & (1 << bit)) != 0

    def ensure_stale(self, context: "CompositionContext") -> None:
        """Refresh the coarse-grain availability matrix and the stale
        effective QoS arrays when the global state has published updates."""
        global_state = context.global_state
        version = global_state.node_version
        recorder = context.recorder
        if version == self.stale_version:
            if recorder.enabled:
                recorder.inc("fastscore.stale_hit")
            return
        if recorder.enabled:
            recorder.inc("fastscore.stale_refresh")
        network = context.network
        if self.capacity is None:
            self.capacity = np.asarray(
                [network.node(int(n)).capacity.values for n in self.node_ids],
                dtype=np.float64,
            )
        available = np.asarray(
            [global_state.node_available(int(n)).values for n in self.node_ids],
            dtype=np.float64,
        )
        # worst-dimension allocated fraction, clamped — the array form of
        # LoadDependentQoSModel.utilization, one entry per candidate
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                self.capacity > 0.0, 1.0 - available / self.capacity, 0.0
            )
        utilization = np.clip(fractions.max(axis=1, initial=0.0), 0.0, 1.0)
        delay, loss = context.qos_model.effective_qos_arrays(
            self.base_delay, self.base_loss, utilization
        )
        self.stale_available = available
        self.stale_delay = delay
        self.stale_loss = loss
        self.stale_version = version


class LevelPool:
    """The qualified (probe, candidate) expansions of one function level.

    Entries are parallel arrays in the scalar reference's pool order
    (probe-major, candidate registration order within a probe);
    :class:`~repro.core.selection.ScoredCandidate` objects are materialised
    only for the entries a selection actually picks.
    """

    def __init__(
        self,
        scorer: "FastScorer",
        table: _CandidateTable,
        probes: Sequence[object],
        predecessors: Tuple[int, ...],
        probe_index: np.ndarray,
        candidate_index: np.ndarray,
        risk: np.ndarray,
        congestion: np.ndarray,
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
        pre_delay: Optional[np.ndarray],
        pre_loss: Optional[np.ndarray],
    ) -> None:
        self._scorer = scorer
        self._table = table
        self._probes = probes
        self._predecessors = predecessors
        self._probe_index = probe_index
        self._candidate_index = candidate_index
        self._risk = risk
        self._congestion = congestion
        self._accumulated_delay = accumulated_delay
        self._accumulated_loss = accumulated_loss
        #: worst-path QoS up to (excluding) the candidate; None at sources
        self._pre_delay = pre_delay
        self._pre_loss = pre_loss

    @property
    def size(self) -> int:
        return len(self._probe_index)

    def select_best(
        self,
        limit: int,
        ranking: RankingPolicy = RankingPolicy.RISK_THEN_CONGESTION,
        risk_tie_epsilon: float = RISK_TIE_EPSILON,
    ) -> List[ScoredCandidate]:
        """Top-``limit`` entries under the exact
        :func:`repro.core.selection.select_best` semantics: same sort keys,
        same stable tie-breaking, same tie-bucket rounding."""
        if limit <= 0:
            return []
        risk = self._risk.tolist()
        congestion = self._congestion.tolist()
        component_ids = self._table.component_ids[self._candidate_index].tolist()

        if ranking is RankingPolicy.RISK_ONLY:
            keys = list(zip(risk, component_ids))
        elif ranking is RankingPolicy.CONGESTION_ONLY:
            keys = list(zip(congestion, component_ids))
        else:
            if risk_tie_epsilon > 0:
                buckets = [round(r / risk_tie_epsilon) for r in risk]
            else:
                buckets = risk
            keys = list(zip(buckets, congestion, component_ids))
        order = sorted(range(self.size), key=keys.__getitem__)[:limit]
        return self.take(order)

    def take(self, indices: Sequence[int]) -> List[ScoredCandidate]:
        """Materialise ``ScoredCandidate`` entries for pool positions, in
        the given order (the random hop policy samples positions)."""
        schema = self._scorer.schema
        entries = []
        for index in indices:
            probe = self._probes[int(self._probe_index[index])]
            candidate = self._table.components[int(self._candidate_index[index])]
            if self._pre_delay is None:
                pre_qos = None
            else:
                pre_qos = QoSVector(
                    schema,
                    [float(self._pre_delay[index]), float(self._pre_loss[index])],
                )
            entries.append(
                ScoredCandidate(
                    candidate=candidate,
                    risk=float(self._risk[index]),
                    congestion=float(self._congestion[index]),
                    accumulated_qos=QoSVector(
                        schema,
                        [
                            float(self._accumulated_delay[index]),
                            float(self._accumulated_loss[index]),
                        ],
                    ),
                    parent=probe,
                    pre_qos=pre_qos,
                )
            )
        return entries


class FastScorer:
    """Cross-request vectorised scoring engine bound to one context."""

    def __init__(self, context: "CompositionContext") -> None:
        self.context = context
        self.schema = None
        #: elementwise batch backend (numpy reference or compiled numba);
        #: all backends are byte-identical, so this is a pure speed knob
        self.kernel = get_scoring_kernel(context.scoring_kernel)
        self._tables: Dict[int, _CandidateTable] = {}
        #: upstream node -> (link_version, row_version, full row of stale
        #: bottleneck kbps per destination node, -inf where unreachable).
        #: Keyed per source on the router's row version, so churn rebuilds
        #: only the rows whose shortest-path tree actually changed.
        #: Mask-independent: masked candidates are already excluded from
        #: ``qualified``, so their row entries are never read.
        #: LRU-bounded (scorer memory stays O(bound × N)); an evicted
        #: source is simply re-derived on next use, value-identically.
        self._bandwidth_rows: LRUDict[int, Tuple[int, int, np.ndarray]] = LRUDict(
            capacity=context.scorer_row_cache_size,
            on_evict=self._on_bandwidth_row_evicted,
        )
        self._alive: Optional[np.ndarray] = None
        #: shared all-True mask reused whenever no node is down; never mutated
        self._all_alive: Optional[np.ndarray] = None
        #: pruned levels that yielded zero qualified expansions and were
        #: deterministically re-scored with a wider neighbourhood (plain
        #: counter so benchmarks need no recorder)
        self.widen_retries = 0

    def _on_bandwidth_row_evicted(
        self, source: int, entry: Tuple[int, int, np.ndarray]
    ) -> None:
        recorder = self.context.recorder
        if recorder.enabled:
            recorder.inc("fastscore.bw_row_evictions")

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident bytes per scorer substructure.

        ``nbytes`` over the candidate tables' arrays and the cached
        bottleneck-bandwidth rows; BENCH_scale uses this to attribute
        memory per subsystem.
        """
        tables = 0
        for table in self._tables.values():
            for slot in (
                table.component_ids,
                table.node_ids,
                table.max_input_rate,
                table.base_delay,
                table.base_loss,
                table.input_format_bits,
                table.attribute_bits,
                table.capacity,
                table.stale_available,
                table.stale_delay,
                table.stale_loss,
            ):
                if slot is not None:
                    tables += int(slot.nbytes)
        bandwidth_rows = sys.getsizeof(self._bandwidth_rows)
        for _, (_, _, row) in self._bandwidth_rows.items():
            bandwidth_rows += int(row.nbytes)
        footprint = {"tables": tables, "bandwidth_rows": int(bandwidth_rows)}
        footprint["total"] = sum(footprint.values())
        return footprint

    def supports(self, request: StreamRequest) -> bool:
        """Whether the vectorised path applies to this request.

        Requires the default (delay, loss) metric shape and the stock QoS
        model, whose ``effective_qos_arrays`` mirrors ``effective_qos``; a
        subclassed model or exotic schema silently takes the scalar path.
        """
        schema = request.qos_requirement.schema
        return (
            schema.kinds == _SUPPORTED_KINDS
            and type(self.context.qos_model) is LoadDependentQoSModel
        )

    def begin_request(self, request: StreamRequest) -> None:
        """Per-compose refresh: node liveness can change without bumping any
        epoch (``Node.fail()``), so take one snapshot per wavefront — which
        is exact, since liveness only changes between requests.  The network
        maintains the (usually empty) down-node set via liveness listeners,
        so the all-alive case reuses one cached mask instead of polling
        every node."""
        network = self.context.network
        down = network.down_node_ids
        if not down:
            cached = self._all_alive
            if cached is None or cached.shape[0] != len(network):
                cached = np.ones(len(network), dtype=bool)
                self._all_alive = cached
            self._alive = cached
        else:
            alive = np.ones(len(network), dtype=bool)
            alive[list(down)] = False
            self._alive = alive
        if self.schema is None:
            self.schema = request.qos_requirement.schema

    # -- caches ---------------------------------------------------------------

    def _table_for(
        self, function_id: int, candidates: Sequence[Component]
    ) -> _CandidateTable:
        version = self.context.registry.version
        recorder = self.context.recorder
        table = self._tables.get(function_id)
        if table is None or table.registry_version != version:
            table = _CandidateTable(candidates, version)
            self._tables[function_id] = table
            if recorder.enabled:
                recorder.inc("fastscore.table_build")
                recorder.emit(
                    "fastscore.table_rebuild",
                    function_id=function_id,
                    candidates=len(table.components),
                    registry_version=version,
                )
        elif recorder.enabled:
            recorder.inc("fastscore.table_hit")
        return table

    # -- scoring ---------------------------------------------------------------

    @hot_path(budget="O(P × k)")
    def score_level(
        self,
        request: StreamRequest,
        probes: Sequence[object],
        function_id: int,
        candidates: Sequence[Component],
        function_index: int,
        predecessors: Tuple[int, ...],
        requirement: ResourceVector,
        input_rate: float,
        use_global_state: bool,
    ) -> LevelPool:
        """Score every (probe, candidate) expansion of one function level.

        Implements exactly the scalar ``_score_candidate`` pipeline —
        compatibility filters, Eq. 6–8 qualification, Eq. 9/10 scores —
        as a single batch of ``(probes × candidates)`` array operations.
        Every arithmetic step is elementwise, so batching probes together
        changes no float operation or ordering, and row-major
        ``np.nonzero`` at the end reproduces the scalar reference's pool
        order (probe-major, candidate registration order within a probe).

        With ``candidate_prune_k`` set, levels with predecessors score
        only the candidates whose host node lies in some upstream node's
        delay neighbourhood (the wavefront's locality); a level whose
        pruned pool qualifies nothing is deterministically re-scored with
        a 4x wider neighbourhood until it either qualifies someone or the
        neighbourhood covers the whole overlay — at which point an empty
        pool is a genuine failure, identical to the full scan's.
        """
        context = self.context
        prune_k = context.candidate_prune_k
        if prune_k is None or not predecessors:
            # source levels have no upstream locality to prune around and
            # do no per-source routing row work anyway
            return self._score_level_impl(
                request,
                probes,
                function_id,
                candidates,
                function_index,
                predecessors,
                requirement,
                input_rate,
                use_global_state,
                None,
            )
        recorder = context.recorder
        num_nodes = len(context.network)
        k = min(prune_k, num_nodes)
        while True:
            pool = self._score_level_impl(
                request,
                probes,
                function_id,
                candidates,
                function_index,
                predecessors,
                requirement,
                input_rate,
                use_global_state,
                k,
            )
            if pool.size or k >= num_nodes:
                if recorder.enabled:
                    recorder.observe("fastscore.pruned_pool_size", float(pool.size))
                return pool
            self.widen_retries += 1
            if recorder.enabled:
                recorder.inc("fastscore.widen_retries")
            k = min(num_nodes, k * 4)

    def _score_level_impl(
        self,
        request: StreamRequest,
        probes: Sequence[object],
        function_id: int,
        candidates: Sequence[Component],
        function_index: int,
        predecessors: Tuple[int, ...],
        requirement: ResourceVector,
        input_rate: float,
        use_global_state: bool,
        prune_k: Optional[int],
    ) -> LevelPool:
        context = self.context
        table = self._table_for(function_id, candidates)
        node_index = table.node_ids

        # -- locality pruning: restrict the pool to the union of the
        # upstream nodes' delay neighbourhoods.  ``sub`` is ascending, so
        # the pruned pool order is a subsequence of the full pool order —
        # and whenever k >= N the neighbourhoods hold every *reachable*
        # node, the excluded candidates are exactly the ones the full scan
        # masks on ``isfinite(link_delay)``, and the two paths make
        # byte-identical decisions.
        sub: Optional[np.ndarray] = None
        entries = None
        index = None
        if prune_k is not None:
            index = context.neighborhood_index()
            upstream_nodes = sorted(
                {
                    probe.assignment[predecessor].node_id
                    for predecessor in predecessors
                    for probe in probes
                }
            )
            entries = {
                node: index.entry(node, prune_k) for node in upstream_nodes
            }
            union = np.unique(
                np.concatenate(
                    [entries[node].members_sorted for node in upstream_nodes]
                )
            )
            sub = np.nonzero(np.isin(node_index, union))[0]
            if len(sub) == 0:
                empty_int = np.empty(0, dtype=np.int64)
                empty = np.empty(0)
                return LevelPool(
                    self,
                    table,
                    probes,
                    predecessors,
                    empty_int,
                    empty_int,
                    empty,
                    empty,
                    empty,
                    empty,
                    None,
                    None,
                )
            node_index = node_index[sub]

        # -- probe-independent filters (stream rate, tags, liveness) ----------
        level_mask = input_rate <= table.max_input_rate
        attribute_mask = table.required_attribute_mask(request.required_attributes)
        if attribute_mask is not None:
            level_mask = level_mask & attribute_mask
        if sub is not None:
            level_mask = level_mask[sub]
        level_mask = level_mask & self._alive[node_index]

        if use_global_state:
            table.ensure_stale(context)
            candidate_delay = table.stale_delay
            candidate_loss = table.stale_loss
            available = table.stale_available
        else:
            candidate_delay = table.base_delay
            candidate_loss = table.base_loss
            available = None
        if sub is not None:
            candidate_delay = candidate_delay[sub]
            candidate_loss = candidate_loss[sub]
            if available is not None:
                available = available[sub]

        qos_requirement = request.qos_requirement
        required_delay, required_loss = qos_requirement.values
        bounds_additive = qos_requirement.additive_values()
        requirement_values = requirement.values
        bandwidth_requirements = [
            request.bandwidth_for((predecessor, function_index))
            for predecessor in predecessors
        ]

        probe_count = len(probes)
        pool_size = len(node_index)
        component_ids = (
            table.component_ids if sub is None else table.component_ids[sub]
        )

        # a component instance runs at most one placement per session, so
        # each probe's row starts from the level mask and drops its own
        # already-assigned component ids
        mask = np.repeat(level_mask[np.newaxis, :], probe_count, axis=0)
        for position, probe in enumerate(probes):
            row = mask[position]
            for assigned in probe.assignment.values():
                row &= component_ids != assigned.component_id

        # -- QoS accumulation through the candidate (worst path) --------------
        # Per predecessor, gather each probe's upstream link row and output
        # QoS, then accumulate over the whole (probes × candidates) batch at
        # once.  Dead-end probes (no candidate accepts the upstream format)
        # get an all-False row and zero-filled link values: the zeros keep
        # the batch arithmetic finite but are never read, since nothing in
        # the row can qualify.
        accumulated_delay = None
        accumulated_loss = None
        # member positions of the (pruned) pool's nodes per upstream node,
        # shared between the QoS gather and the bandwidth gather below
        positions_of: Dict[int, np.ndarray] = {}
        for predecessor in predecessors:
            format_rows = np.empty((probe_count, pool_size), dtype=bool)
            link_delay = np.empty((probe_count, pool_size))
            link_loss = np.empty((probe_count, pool_size))
            out_delay = np.empty((probe_count, 1))
            out_loss = np.empty((probe_count, 1))
            for position, probe in enumerate(probes):
                upstream = probe.assignment[predecessor]
                format_mask = table.format_mask(upstream.output_format)
                if format_mask is None:
                    format_rows[position] = False
                    link_delay[position] = 0.0
                    link_loss[position] = 0.0
                    out_delay[position, 0] = 0.0
                    out_loss[position, 0] = 0.0
                    continue
                format_rows[position] = (
                    format_mask if sub is None else format_mask[sub]
                )
                if sub is None:
                    delay_row, loss_row = context.router.virtual_link_rows(
                        upstream.node_id
                    )
                    link_delay[position] = delay_row[node_index]
                    link_loss[position] = loss_row[node_index]
                else:
                    # gather from the bounded tree: members carry the full
                    # router's floats, non-members read as unreachable and
                    # fall to the isfinite mask below
                    entry = entries[upstream.node_id]
                    pos = positions_of.get(upstream.node_id)
                    if pos is None:
                        pos = entry.positions(node_index)
                        positions_of[upstream.node_id] = pos
                    inside = pos >= 0
                    safe = np.maximum(pos, 0)
                    link_delay[position] = np.where(
                        inside, entry.delay[safe], np.inf
                    )
                    link_loss[position] = np.where(
                        inside, entry.loss[safe], 0.0
                    )
                out_delay[position, 0], out_loss[position, 0] = (
                    probe.accumulated_out[predecessor].values
                )
            mask &= format_rows
            mask &= np.isfinite(link_delay)
            accumulated_delay, accumulated_loss = self.kernel.through_qos(
                out_delay,
                out_loss,
                link_delay,
                link_loss,
                accumulated_delay,
                accumulated_loss,
            )
        if accumulated_delay is None or accumulated_loss is None:
            pre_delay2d = pre_loss2d = None
            accumulated_delay = np.broadcast_to(
                candidate_delay, (probe_count, pool_size)
            )
            accumulated_loss = np.broadcast_to(
                candidate_loss, (probe_count, pool_size)
            )
        else:
            pre_delay2d = accumulated_delay
            pre_loss2d = accumulated_loss
            accumulated_delay, accumulated_loss = self.kernel.finalize_qos(
                accumulated_delay,
                accumulated_loss,
                candidate_delay,
                candidate_loss,
            )

        # -- qualification (Eqs. 6–8) and scores (Eqs. 9–10) ------------------
        qualified = (
            mask
            & (accumulated_delay <= required_delay + 1e-12)
            & (accumulated_loss <= required_loss + 1e-12)
        )
        risk2d = congestion2d = None
        if use_global_state:
            for dimension, required_amount in enumerate(requirement_values):
                qualified &= available[:, dimension] >= required_amount - 1e-9
            bandwidth_rows: List[Tuple[float, np.ndarray]] = []
            link_version = context.global_state.link_version
            link_available = context.global_state.link_available_array
            for predecessor, bandwidth_required in zip(
                predecessors, bandwidth_requirements
            ):
                rows = np.empty((probe_count, pool_size))
                for position, probe in enumerate(probes):
                    upstream_node = probe.assignment[predecessor].node_id
                    if sub is None:
                        rows[position] = self._bandwidth_row(
                            table, upstream_node
                        )
                        continue
                    # O(k) bounded-tree fold over the same stale link
                    # values the full row folds; non-members read -inf,
                    # already excluded from ``qualified`` via the mask
                    entry = entries[upstream_node]
                    bw_row = index.stale_bottleneck_row(
                        entry, link_available, link_version
                    )
                    pos = positions_of.get(upstream_node)
                    if pos is None:
                        pos = entry.positions(node_index)
                        positions_of[upstream_node] = pos
                    rows[position] = np.where(
                        pos >= 0, bw_row[np.maximum(pos, 0)], -np.inf
                    )
                bandwidth_rows.append((bandwidth_required, rows))
                qualified &= rows >= bandwidth_required - 1e-9
            if qualified.any():
                risk2d = self._risk(
                    accumulated_delay, accumulated_loss, bounds_additive
                )
                congestion2d = self.kernel.congestion(
                    requirement_values, available, bandwidth_rows, qualified.shape
                )

        probe_index, candidate_index = np.nonzero(qualified)
        count = len(probe_index)
        if risk2d is not None:
            risk = risk2d[probe_index, candidate_index]
            congestion = congestion2d[probe_index, candidate_index]
        else:
            risk = np.zeros(count)
            congestion = risk
        accumulated_delay = accumulated_delay[probe_index, candidate_index]
        accumulated_loss = accumulated_loss[probe_index, candidate_index]
        if pre_delay2d is not None and count:
            pre_delay = pre_delay2d[probe_index, candidate_index]
            pre_loss = pre_loss2d[probe_index, candidate_index]
        else:
            pre_delay = pre_loss = None
        if sub is not None:
            # back to full-pool candidate indices; ``sub`` is ascending,
            # so probe-major pool order is preserved
            candidate_index = sub[candidate_index]

        return LevelPool(
            self,
            table,
            probes,
            predecessors,
            probe_index,
            candidate_index,
            risk,
            congestion,
            accumulated_delay,
            accumulated_loss,
            pre_delay,
            pre_loss,
        )

    def _bandwidth_row(
        self, table: _CandidateTable, upstream_node: int
    ) -> np.ndarray:
        """Stale bottleneck bandwidth from ``upstream_node`` to each of a
        function's candidate nodes, gathered from a cached full row.

        The full row — one shortest-path-tree pass over the coarse-grain
        link state, ``-inf`` for unreachable nodes (which the wavefront
        masks out anyway) — serves every probe and every function level
        fed from the same upstream node, until a link state update bumps
        ``link_version`` or churn bumps this source's ``row_version``.
        """
        context = self.context
        recorder = context.recorder
        link_version = context.global_state.link_version
        row_version = context.router.row_version(upstream_node)
        entry = self._bandwidth_rows.get(upstream_node)
        if entry is None or entry[0] != link_version or entry[1] != row_version:
            full_row = context.router.bottleneck_bandwidth_row(
                upstream_node, context.global_state.link_available_array
            )
            entry = (link_version, row_version, full_row)
            self._bandwidth_rows[upstream_node] = entry
            if recorder.enabled:
                recorder.inc("fastscore.bw_row_build")
        elif recorder.enabled:
            recorder.inc("fastscore.bw_row_hit")
        return entry[2][table.node_ids]

    @staticmethod
    def _risk(
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
        bounds_additive: Tuple[float, ...],
    ) -> np.ndarray:
        """Eq. 9 over the pool: max additive-space utilisation ratio."""
        additive_loss = -np.log1p(-np.minimum(accumulated_loss, _MAX_LOSS))
        ratios = []
        for accumulated, bound in (
            (accumulated_delay, bounds_additive[0]),
            (additive_loss, bounds_additive[1]),
        ):
            if bound <= 0.0:
                ratios.append(np.where(accumulated <= 0.0, 0.0, math.inf))
            else:
                ratios.append(accumulated / bound)
        return np.maximum(ratios[0], ratios[1])
