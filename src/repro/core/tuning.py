"""Probing ratio tuning (Section 3.4).

The probing ratio α is "a tuning knob to control the trade-off between
composition performance and probing overhead".  ACP's tuner holds a target
composition success rate μ* and, from measured success-rate samples,
adaptively picks the *minimal* α predicted to achieve it.

The paper's scheme, reproduced here:

* **On-line profiling** maintains the (α → success rate) mapping from
  measurements taken while the system runs, starting from a base ratio
  (0.1) and moving in 0.1 steps.  Profile points are exponentially
  averaged so old system conditions fade.
* **Re-profiling trigger**: when the measured success rate disagrees with
  the profile's prediction for the current α by more than δ (2 %), the
  system conditions have changed — stale profile points are discarded and
  profiling restarts from the current measurement.
* **Ratio updates**: below target, α rises proportionally to the shortfall
  (rounded up to the 0.1 grid, so a 35-point shortfall jumps several steps
  at once — the Fig. 8(b) behaviour); above target, α steps down by one
  grid step at a time, but never when the profile predicts the lower α
  would miss the target.  α stops rising at ``max_ratio`` ("ACP stops
  increasing the probing ratio if the probing overhead already reaches its
  limit", footnote 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.observability import NULL_RECORDER, Recorder

#: Tolerance for float noise when ceiling a shortfall onto the step grid:
#: ``0.1 + 0.2`` must count as exactly three 0.1-steps, not four.
_GRID_EPSILON = 1e-9


def _snap_to_grid(value: float, grid: float) -> float:
    """Round ``value`` to the tuning grid, guarding float error."""
    steps = round(value / grid)
    return round(steps * grid, 10)


@dataclass
class TunerSample:
    """One sampling-period observation (diagnostics / Fig. 8 series)."""

    time: float
    ratio: float
    success_rate: float
    reprofiled: bool


class ProbingRatioTuner:
    """Self-tuning probing ratio targeting a composition success rate."""

    def __init__(
        self,
        target_success_rate: float = 0.9,
        base_ratio: float = 0.1,
        step: float = 0.1,
        max_ratio: float = 1.0,
        tolerance: float = 0.02,
        smoothing: float = 0.5,
        gain: float = 1.0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not 0.0 < target_success_rate <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {target_success_rate}")
        if not 0.0 < base_ratio <= max_ratio <= 1.0:
            raise ValueError(
                f"need 0 < base_ratio <= max_ratio <= 1, got "
                f"{base_ratio}, {max_ratio}"
            )
        if step <= 0.0:
            raise ValueError(f"step must be positive, got {step}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.target_success_rate = target_success_rate
        self.base_ratio = base_ratio
        self.step = step
        self.max_ratio = max_ratio
        self.tolerance = tolerance
        self.gain = gain
        self.smoothing = smoothing
        self.recorder = recorder
        self._ratio = base_ratio
        #: on-line profile: ratio -> smoothed success rate observed at it
        self._profile: Dict[float, float] = {}
        self._samples: List[TunerSample] = []
        self.reprofile_count = 0

    # -- observation -------------------------------------------------------------

    def current_ratio(self) -> float:
        """The probing ratio the composer should use right now."""
        return self._ratio

    @property
    def profile(self) -> Dict[float, float]:
        return dict(self._profile)

    @property
    def samples(self) -> Tuple[TunerSample, ...]:
        return tuple(self._samples)

    def predicted_success(self, ratio: Optional[float] = None) -> Optional[float]:
        """Profile prediction for ``ratio`` (default: current), if known."""
        key = _snap_to_grid(self._ratio if ratio is None else ratio, self.step)
        return self._profile.get(key)

    # -- the control loop -----------------------------------------------------------

    def record_sample(self, success_rate: float, time: float = 0.0) -> float:
        """Feed one sampling-period success rate; returns the new ratio.

        Call once per sampling period Δt with μ'(t) = successes/requests
        over the period.
        """
        if not 0.0 <= success_rate <= 1.0:
            raise ValueError(f"success rate must be in [0, 1], got {success_rate}")
        key = _snap_to_grid(self._ratio, self.step)
        predicted = self._profile.get(key)
        reprofiled = False
        if predicted is not None and abs(predicted - success_rate) > self.tolerance:
            # prediction error exceeds δ: system conditions changed —
            # discard the stale mapping and start a fresh profile
            self._profile.clear()
            self.reprofile_count += 1
            reprofiled = True
        if key in self._profile:
            previous = self._profile[key]
            self._profile[key] = (
                (1.0 - self.smoothing) * previous + self.smoothing * success_rate
            )
        else:
            self._profile[key] = success_rate

        self._samples.append(TunerSample(time, self._ratio, success_rate, reprofiled))
        previous_ratio = self._ratio
        self._ratio = self._next_ratio(success_rate)
        if self.recorder.enabled:
            self.recorder.emit(
                "tuner.decision",
                time=time,
                ratio=previous_ratio,
                measured=success_rate,
                predicted=predicted,
                reprofiled=reprofiled,
                new_ratio=self._ratio,
            )
        return self._ratio

    def _next_ratio(self, measured: float) -> float:
        target = self.target_success_rate
        current = _snap_to_grid(self._ratio, self.step)
        if measured < target - self.tolerance:
            # below target: proportional jump, rounded up to the grid with
            # an epsilon-tolerant ceil — a plain ceil overshoots one full
            # step when float error lands shortfall/step just above an
            # integer (e.g. shortfall 0.1 + 0.2 over step 0.1)
            shortfall = (target - measured) * self.gain
            steps = max(1, math.ceil(shortfall / self.step - _GRID_EPSILON))
            return min(self.max_ratio, _snap_to_grid(current + steps * self.step,
                                                     self.step))
        if current > self.base_ratio:
            # the target is met: seek the *minimal* ratio that still meets
            # it ("ACP should always use the minimal probing ratio α(t) for
            # achieving the target", Section 3.4) — descend one step unless
            # the profile predicts the lower ratio misses the target
            lower = _snap_to_grid(current - self.step, self.step)
            prediction = self._profile.get(lower)
            if prediction is None or prediction >= target - self.tolerance:
                return max(self.base_ratio, lower)
        return current

    # -- profiling sweep (used to regenerate Fig. 5-style mappings) -----------------

    def profile_points(self) -> Tuple[Tuple[float, float], ...]:
        """The learned (ratio, success rate) mapping, sorted by ratio."""
        return tuple(sorted(self._profile.items()))
