"""Control-theoretic probing ratio tuning (future-work direction 1).

Section 6: "Future research directions ... include (1) applying control
theory to tune the probing ratio more precisely."

:class:`PIDRatioTuner` closes the loop with a discrete PID controller on
the success-rate error e(t) = μ* − μ'(t):

    α(t+1) = clamp( α(t) + K_p·e + K_i·Σe + K_d·(e − e_prev) )

compared to the paper's profile-based :class:`ProbingRatioTuner` it needs
no profile and reacts every sampling period, at the price of the usual PID
trade-offs (overshoot vs sluggishness controlled by the gains).  The
integral term is anti-windup-clamped so that an unreachable target (error
permanently positive at α = max) cannot poison later convergence.

The class is signature-compatible with :class:`ProbingRatioTuner` where it
matters (``current_ratio`` / ``record_sample`` / ``samples``), so it can
drive :class:`~repro.core.acp.ACPComposer` through the same
``attach_tuner`` hook and be compared head-to-head in the tuner ablation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.tuning import TunerSample


class PIDRatioTuner:
    """Discrete PID controller over the probing ratio."""

    def __init__(
        self,
        target_success_rate: float = 0.9,
        kp: float = 1.2,
        ki: float = 0.3,
        kd: float = 0.2,
        base_ratio: float = 0.1,
        max_ratio: float = 1.0,
        integral_limit: float = 1.0,
    ) -> None:
        if not 0.0 < target_success_rate <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {target_success_rate}")
        if not 0.0 < base_ratio <= max_ratio <= 1.0:
            raise ValueError(
                f"need 0 < base_ratio <= max_ratio <= 1, got "
                f"{base_ratio}, {max_ratio}"
            )
        if integral_limit <= 0.0:
            raise ValueError("integral_limit must be positive")
        self.target_success_rate = target_success_rate
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.base_ratio = base_ratio
        self.max_ratio = max_ratio
        self.integral_limit = integral_limit
        self._ratio = base_ratio
        self._integral = 0.0
        self._previous_error = 0.0
        self._primed = False
        self._samples: List[TunerSample] = []

    # -- ProbingRatioTuner-compatible surface ------------------------------------

    def current_ratio(self) -> float:
        return self._ratio

    @property
    def samples(self) -> Tuple[TunerSample, ...]:
        return tuple(self._samples)

    def record_sample(self, success_rate: float, time: float = 0.0) -> float:
        """Feed one sampling-period success rate; returns the new ratio."""
        if not 0.0 <= success_rate <= 1.0:
            raise ValueError(f"success rate must be in [0, 1], got {success_rate}")
        error = self.target_success_rate - success_rate
        if self._primed and (error > 0.0) != (self._previous_error > 0.0):
            # crossing the target: dump accumulated history so the response
            # to the new regime is not fighting stale integral action
            self._integral = 0.0
        self._integral = max(
            -self.integral_limit, min(self.integral_limit, self._integral + error)
        )
        derivative = (error - self._previous_error) if self._primed else 0.0
        self._previous_error = error
        self._primed = True

        self._samples.append(TunerSample(time, self._ratio, success_rate, False))
        adjustment = self.kp * error + self.ki * self._integral + self.kd * derivative
        self._ratio = max(
            self.base_ratio, min(self.max_ratio, self._ratio + adjustment)
        )
        # anti-windup: when pinned at a bound, bleed the integral so a
        # regime change is tracked immediately
        if self._ratio in (self.base_ratio, self.max_ratio):
            self._integral *= 0.5
        return self._ratio

    # -- diagnostics ----------------------------------------------------------

    @property
    def integral(self) -> float:
        return self._integral

    def reset(self) -> None:
        """Forget controller state (e.g. on a known workload change)."""
        self._integral = 0.0
        self._previous_error = 0.0
        self._primed = False
        self._ratio = self.base_ratio
