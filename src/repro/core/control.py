"""Control-plane probe delivery: the ControlChannel seam.

The probing protocol of Section 3.3 "sends" one message per spawned probe.
The original reproduction delivered every message instantly and reliably —
a perfect control plane.  Real overlays lose and delay control traffic, so
probe delivery is funnelled through exactly one seam:
:class:`ControlChannel`.  ``ProbingComposer._dispatch_probes`` asks the
channel whether each probe message arrives and what control-plane delay it
paid; no other probe-delivery path is legal (see DEVELOPMENT.md — the
repro-lint REC301-style rule of this subsystem).

Two implementations:

* :class:`PerfectControlChannel` — the default on every
  :class:`~repro.core.composer.CompositionContext`.  ``lossless`` is True,
  :meth:`send` never consumes randomness and the prober's fast path skips
  the retry machinery entirely, so the zero-fault configuration is
  decision-identical (and rng-stream-identical) to a build without this
  module.
* :class:`LossyControlChannel` — drops each message independently with
  ``loss_probability`` and charges ``delay_ms`` of control-plane latency
  per attempt, drawing from its **own** seeded stream so enabling losses
  never perturbs composition randomness.

The retry policy lives with the channel (``max_retries``); the *deadline*
does not — the prober derives each probe's retry budget from the request's
remaining QoS delay slack (:func:`delay_slack_ms`), so a probe that has
already spent most of its delay bound on slow virtual links gets fewer
re-sends than a fresh one.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.model.qos import MetricKind, QoSVector


def delay_slack_ms(accumulated: QoSVector, requirement: QoSVector) -> float:
    """Remaining delay budget of a probe, in milliseconds.

    The slack is measured on the schema's first additive (delay-like)
    metric: requirement minus the QoS accumulated up to and including the
    candidate under consideration.  Schemas without an additive metric
    have no delay notion, so the slack is unbounded.
    """
    for index, kind in enumerate(requirement.schema.kinds):
        if kind is MetricKind.ADDITIVE:
            return requirement.values[index] - accumulated.values[index]
    return float("inf")


class ControlChannel:
    """How probe messages travel: delivery success plus per-attempt delay.

    Subclasses override :meth:`send`; callers may branch on
    :attr:`lossless` to skip the retry machinery when delivery is
    guaranteed (the hot-path contract the overhead benchmark relies on).
    """

    #: True when :meth:`send` always delivers with zero delay; the prober
    #: uses this to keep the default path identical to a channel-free build.
    lossless: bool = True
    #: additional delivery attempts allowed per probe after the first.
    max_retries: int = 0

    def __init__(self) -> None:
        #: probe messages handed to the channel (including lost ones)
        self.messages_sent = 0
        #: probe messages the channel dropped
        self.messages_lost = 0

    def send(self) -> Tuple[bool, float]:
        """Attempt one delivery; returns ``(delivered, delay_ms)``."""
        self.messages_sent += 1
        return True, 0.0


class PerfectControlChannel(ControlChannel):
    """The reliable, zero-latency default: every message arrives."""

    lossless = True


class LossyControlChannel(ControlChannel):
    """Independent per-message loss with a fixed per-attempt delay.

    Args:
        loss_probability: chance each attempt is silently dropped.
        delay_ms: control-plane latency charged per attempt (lost or not).
        rng: dedicated random stream for loss draws.  Required — the
            channel must never share the composition rng, so that a
            zero-loss channel is decision-identical to the perfect one.
        max_retries: re-send budget per probe after the first attempt
            (each retry still costs one message and one ``delay_ms``).
    """

    lossless = False

    def __init__(
        self,
        loss_probability: float,
        delay_ms: float = 0.0,
        rng: Optional[random.Random] = None,
        max_retries: int = 2,
    ) -> None:
        super().__init__()
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        if delay_ms < 0.0:
            raise ValueError(f"delay_ms must be non-negative, got {delay_ms}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.loss_probability = loss_probability
        self.delay_ms = delay_ms
        self.max_retries = max_retries
        # explicit fixed seed when the caller doesn't supply a stream;
        # never the process-global RNG, so loss schedules replay exactly
        self.rng = rng if rng is not None else random.Random(0)

    def send(self) -> Tuple[bool, float]:
        self.messages_sent += 1
        if self.loss_probability > 0.0 and self.rng.random() < self.loss_probability:
            self.messages_lost += 1
            return False, self.delay_ms
        return True, self.delay_ms
