"""Composer interface, shared context, and precise composition evaluation.

Every composition algorithm in the paper's evaluation (ACP, Optimal, SP,
RP, Random, Static) is a :class:`Composer`: given a
:class:`~repro.model.request.StreamRequest` it returns a
:class:`CompositionOutcome` — a selected component graph (or a failure) plus
the message accounting that Figs. 6(b) and 7(b) compare.

The shared :class:`CompositionEvaluator` implements the checks every
algorithm needs against *precise* state:

* Eq. 2 is enforced structurally by :class:`ComponentGraph`;
* Eq. 3 via end-to-end per-path QoS;
* Eqs. 4–5 via aggregate per-node and per-overlay-link feasibility;
* Eq. 1's congestion aggregation φ(λ) for ranking qualified compositions;
* the component interface compatibility check (formats and stream rates).

Availability is always read through the allocator's
``available_excluding`` so a request's own transient probe reservations do
not distort its view of the system (Fig. 4's arithmetic expects
pre-request availability).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.allocation.allocator import ResourceAllocator
from repro.core.control import ControlChannel, PerfectControlChannel
from repro.discovery.registry import ComponentRegistry
from repro.model.component import Component
from repro.observability import NULL_RECORDER, Recorder
from repro.model.component_graph import ComponentGraph, VirtualLinkPath
from repro.model.qos import QoSVector
from repro.model.qos_model import LoadDependentQoSModel
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector
from repro.state.global_state import GlobalStateManager
from repro.state.local_state import LocalStateProvider
from repro.topology.overlay import OverlayNetwork
from repro.topology.routing import OverlayRouter

if TYPE_CHECKING:  # runtime import would cycle: fastscore builds on composer
    from repro.core.fastscore import FastScorer
    from repro.topology.neighborhood import NeighborhoodIndex


@dataclass
class CompositionContext:
    """Everything a composition algorithm may consult.

    One context is shared by all composers attached to a simulator; the
    ``clock`` callable supplies the simulated time used for transient
    reservation deadlines.
    """

    network: OverlayNetwork
    router: OverlayRouter
    registry: ComponentRegistry
    allocator: ResourceAllocator
    global_state: GlobalStateManager
    local_state: LocalStateProvider
    rng: random.Random
    clock: Callable[[], float] = lambda: 0.0
    #: observability sink shared by every composer on this context; the
    #: null default keeps the hot path at one ``enabled`` check per site
    recorder: Recorder = NULL_RECORDER
    #: the only legal probe-delivery seam (see repro.core.control); the
    #: perfect default consumes no randomness, so a context built without
    #: faults behaves identically to one predating the channel
    control: ControlChannel = field(default_factory=PerfectControlChannel)
    #: how component QoS responds to host load (factors 0 = static QoS)
    qos_model: LoadDependentQoSModel = field(default_factory=LoadDependentQoSModel)
    #: resolved scoring backend for the vectorised hot path ("numpy" or
    #: "numba"); build_system resolves the config's "auto" before wiring
    scoring_kernel: str = "numpy"
    #: bound on the scorer's per-source stale-bandwidth-row cache (None =
    #: unbounded); keeps scorer memory O(bound × N) at large N
    scorer_row_cache_size: Optional[int] = None
    #: resolved neighbourhood size for locality-pruned candidate scoring
    #: (None = full scan; build_system resolves SystemConfig's "auto"
    #: before wiring — see repro.topology.neighborhood.resolve_prune_k)
    candidate_prune_k: Optional[int] = None
    #: bound on the neighbourhood index's per-(source, k) entry cache;
    #: entries are O(k), so resident memory stays O(cache × k)
    neighborhood_cache_size: Optional[int] = 1024
    #: lazily constructed vectorised scoring engine (see fast_scorer())
    _fast_scorer: Optional["FastScorer"] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: lazily constructed router-neighbourhood index (see
    #: neighborhood_index()); never built while pruning is off, so the
    #: default configuration carries zero extra state
    _neighborhood_index: Optional["NeighborhoodIndex"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def fast_scorer(self) -> "FastScorer":
        """The shared :class:`~repro.core.fastscore.FastScorer` for this
        context, created on first use.  Its caches are keyed on the
        registry/global-state/router epochs, so sharing one instance across
        all composers and requests is what makes it fast."""
        if self._fast_scorer is None:
            # imported here: fastscore imports model types that sit below
            # this module, but the package re-exports composer first
            from repro.core.fastscore import FastScorer

            self._fast_scorer = FastScorer(self)
        return self._fast_scorer

    def neighborhood_index(self) -> "NeighborhoodIndex":
        """The shared router-neighbourhood index for this context, created
        on first use.  Only meaningful when ``candidate_prune_k`` is set;
        callers on the default (full-scan) configuration never construct
        it."""
        if self._neighborhood_index is None:
            from repro.topology.neighborhood import NeighborhoodIndex

            assert self.candidate_prune_k is not None
            self._neighborhood_index = NeighborhoodIndex(
                self.router,
                k=self.candidate_prune_k,
                capacity=self.neighborhood_cache_size,
                recorder=self.recorder,
            )
        return self._neighborhood_index

    def live_available_bandwidth(self, node_a: int, node_b: int) -> float:
        """Live bottleneck bandwidth of the virtual link a → b.

        With pruning active, answered from the bounded neighbourhood tree
        when ``node_b`` is a member (an O(k) walk instead of an O(N) row
        annotation); falls back to the full router otherwise — e.g. for a
        candidate admitted by a widened pool — so the figure is always the
        router's figure, byte-for-byte.
        """
        if self.candidate_prune_k is not None and node_a != node_b:
            bandwidth = self.neighborhood_index().live_bandwidth(node_a, node_b)
            if bandwidth is not None:
                return bandwidth
        return self.router.available_bandwidth(node_a, node_b)

    def virtual_link(self, node_a: int, node_b: int) -> VirtualLinkPath:
        """The virtual link a → b, preferring the bounded neighbourhood
        tree over the full router's O(N) row annotation (identical links
        and QoS floats for members; router fallback for everything else,
        including the co-located a == b case)."""
        if self.candidate_prune_k is not None and node_a != node_b:
            link = self.neighborhood_index().virtual_link(node_a, node_b)
            if link is not None:
                return link
        return self.router.virtual_link(node_a, node_b)

    def precise_component_qos(self, component: Component) -> QoSVector:
        """Effective QoS from the *live* host state (what a probe observes
        on arrival, and what the omniscient optimal algorithm sees)."""
        node = self.network.node(component.node_id)
        return self.qos_model.effective_qos(component, node.available, node.capacity)

    def stale_component_qos(self, component: Component) -> QoSVector:
        """Effective QoS from the coarse-grain global state's stale
        availability snapshot (what per-hop candidate selection ranks on)."""
        node = self.network.node(component.node_id)
        available = self.global_state.node_available(component.node_id)
        return self.qos_model.effective_qos(component, available, node.capacity)


@dataclass
class CompositionOutcome:
    """Result of one composition attempt.

    Attributes:
        request: The request that was composed.
        composition: The selected component graph, or None on failure.
        success: Whether a qualified composition was found.
        probe_messages: Probe messages spent (hop traversals plus returns);
            for the optimal algorithm, partial compositions explored — "the
            number of probes required by the exhaustive search"
            (Section 4.1).
        setup_messages: Confirmation messages along the selected graph.
        explored: Candidate compositions examined (diagnostics).
        phi: φ(λ) of the selected composition under precise state.
        failure_reason: Short machine-readable reason on failure.
    """

    request: StreamRequest
    composition: Optional[ComponentGraph] = None
    success: bool = False
    probe_messages: int = 0
    setup_messages: int = 0
    explored: int = 0
    phi: Optional[float] = None
    failure_reason: Optional[str] = None


class CompositionEvaluator:
    """Precise-state qualification and ranking shared by all composers."""

    def __init__(self, context: CompositionContext) -> None:
        self.context = context

    # -- construction -----------------------------------------------------------

    def build_component_graph(
        self, request: StreamRequest, assignment: Mapping[int, Component]
    ) -> ComponentGraph:
        """Resolve virtual links for an assignment and build the graph."""
        context = self.context
        links = {
            (a, b): context.virtual_link(
                assignment[a].node_id, assignment[b].node_id
            )
            for a, b in request.function_graph.edges
        }
        return ComponentGraph(request, assignment, links)

    # -- interface compatibility -------------------------------------------------

    def interface_compatible(
        self, request: StreamRequest, assignment: Mapping[int, Component]
    ) -> bool:
        """Format and stream-rate compatibility over the whole assignment.

        "the input/output rates of two adjacent components must be
        compatible ... Such a compatibility check is based on the
        component's interface specifications" (Section 2.1).
        """
        graph = request.function_graph
        rates = graph.input_rates(request.stream_rate)
        for index in range(len(graph)):
            component = assignment[index]
            if rates[index] > component.max_input_rate:
                return False
            if not component.satisfies_attributes(request.required_attributes):
                return False
            if not self.context.network.node(component.node_id).alive:
                return False
        router = self.context.router
        for a, b in graph.edges:
            if not assignment[a].compatible_with(assignment[b]):
                return False
            if not router.reachable(assignment[a].node_id, assignment[b].node_id):
                return False
        return True

    # -- feasibility (Eqs. 3-5) -------------------------------------------------

    def node_available(self, request: StreamRequest, node_id: int) -> ResourceVector:
        """Precise availability, excluding the request's own reservations."""
        return self.context.allocator.available_excluding(
            request.request_id, node_id
        )

    def effective_component_qos(
        self,
        composition: ComponentGraph,
        _qos_memo: Optional[Dict[int, QoSVector]] = None,
    ) -> Dict[int, QoSVector]:
        """Per-placement effective QoS under live load (the precise view).

        ``_qos_memo`` (component_id → QoS) lets :meth:`qualify_and_rank`
        share lookups across candidate compositions that place the same
        component; no state changes between them, so the values are
        identical either way.
        """
        graph = composition.request.function_graph
        if _qos_memo is None:
            return {
                index: self.context.precise_component_qos(composition.component(index))
                for index in range(len(graph))
            }
        out: Dict[int, QoSVector] = {}
        for index in range(len(graph)):
            component = composition.component(index)
            qos = _qos_memo.get(component.component_id)
            if qos is None:
                qos = self.context.precise_component_qos(component)
                _qos_memo[component.component_id] = qos
            out[index] = qos
        return out

    def worst_effective_qos(self, composition: ComponentGraph) -> QoSVector:
        """Critical-path QoS under the load-dependent model (live state)."""
        return composition.worst_path_qos(self.effective_component_qos(composition))

    def feasible(
        self,
        composition: ComponentGraph,
        _qos_memo: Optional[Dict[int, QoSVector]] = None,
        _avail_memo: Optional[Dict[int, ResourceVector]] = None,
    ) -> Tuple[bool, Optional[str]]:
        """Eqs. 3–5 against precise state, with aggregate semantics.

        QoS is evaluated under the load-dependent model at live host state;
        per-node demand sums over all of the request's components placed on
        the node; per-overlay-link demand sums over all of its virtual
        links crossing the link.  The memo parameters are pure read caches
        scoped to one :meth:`qualify_and_rank` call (see there).
        """
        request = composition.request
        if not composition.qos_satisfied(
            self.effective_component_qos(composition, _qos_memo)
        ):
            return False, "qos_violation"

        node_demands: Dict[int, object] = {}
        for index in range(len(request.function_graph)):
            component = composition.component(index)
            requirement = request.requirement_for(index)
            if component.node_id in node_demands:
                node_demands[component.node_id] = (
                    node_demands[component.node_id] + requirement
                )
            else:
                node_demands[component.node_id] = requirement
        for node_id, demand in node_demands.items():
            if not self._node_available_memo(request, node_id, _avail_memo).covers(
                demand
            ):
                return False, "node_resources"

        link_demands: Dict[int, float] = {}
        for edge, virtual_link in composition.virtual_links.items():
            bandwidth = request.bandwidth_for(edge)
            for link_id in virtual_link.overlay_link_ids:
                link_demands[link_id] = link_demands.get(link_id, 0.0) + bandwidth
        network = self.context.network
        for link_id, kbps in link_demands.items():
            if network.link(link_id).available_kbps < kbps - 1e-9:
                return False, "link_bandwidth"
        return True, None

    # -- ranking (Eq. 1) -----------------------------------------------------------

    def _node_available_memo(
        self,
        request: StreamRequest,
        node_id: int,
        memo: Optional[Dict[int, ResourceVector]],
    ) -> ResourceVector:
        if memo is None:
            return self.node_available(request, node_id)
        available = memo.get(node_id)
        if available is None:
            available = self.node_available(request, node_id)
            memo[node_id] = available
        return available

    def phi(
        self,
        composition: ComponentGraph,
        _avail_memo: Optional[Dict[int, ResourceVector]] = None,
    ) -> float:
        """φ(λ) under precise state (live link bandwidth, pre-request
        node availability)."""
        request = composition.request
        network = self.context.network

        def link_available(edge: Tuple[int, int]) -> float:
            return network.path_available_bw(
                composition.virtual_link(edge).overlay_link_ids
            )

        return composition.congestion_aggregation(
            lambda node_id: self._node_available_memo(request, node_id, _avail_memo),
            link_available,
        )

    def qualify_and_rank(
        self, compositions: Sequence[ComponentGraph]
    ) -> Tuple[Optional[ComponentGraph], Optional[float], list]:
        """Filter qualified compositions and return the φ-minimal one.

        Returns ``(best, best_phi, qualified_list)``; the list holds
        ``(phi, composition)`` pairs for callers that select differently
        (the SP baseline picks at random among the qualified).

        All candidate compositions belong to one request, and nothing
        mutates node or link state during qualification, so per-component
        effective QoS and per-node availability are memoised across the
        whole batch — the values are identical to recomputing them.
        """
        qualified = []
        qos_memo: Dict[int, QoSVector] = {}
        avail_memo: Dict[int, object] = {}
        for composition in compositions:
            ok, _reason = self.feasible(composition, qos_memo, avail_memo)
            if ok:
                qualified.append((self.phi(composition, avail_memo), composition))
        if not qualified:
            return None, None, []
        best_phi, best = min(qualified, key=lambda pair: pair[0])
        return best, best_phi, qualified


class Composer(abc.ABC):
    """Base class of all composition algorithms."""

    #: Short identifier used in reports and figures ("ACP", "Optimal", ...).
    name: str = "base"

    def __init__(self, context: CompositionContext) -> None:
        self.context = context
        self.evaluator = CompositionEvaluator(context)

    @abc.abstractmethod
    def compose(self, request: StreamRequest) -> CompositionOutcome:
        """Attempt to compose ``request``; never raises on normal failures."""

    def _setup_messages(self, composition: ComponentGraph) -> int:
        """Confirmation messages: one per selected component (Section 3.3,
        step 4 sends confirmations along the composition)."""
        return len(composition.request.function_graph)

    def _fail(
        self, request: StreamRequest, reason: str, **counters: int
    ) -> CompositionOutcome:
        self.context.allocator.cancel_transient(request.request_id)
        recorder = self.context.recorder
        if recorder.enabled:
            recorder.emit(
                "probe.fail",
                request_id=request.request_id,
                algorithm=self.name,
                reason=reason,
            )
        return CompositionOutcome(
            request=request, success=False, failure_reason=reason, **counters
        )
