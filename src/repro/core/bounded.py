"""Bounded composition probing (BCP) — the prototype's simpler ACP.

Footnote 10: "The prototype implements bounded composition probing (i.e.,
a simpler version of ACP) and supports multimedia stream processing."

Where ACP budgets probes *relative to the candidate pool* (M = ⌈α·k⌉ per
function) and tunes α adaptively, BCP fixes a **total probe budget per
request** and splits it evenly across the request's functions — the shape
a deployed prototype prefers because its worst-case per-request message
cost is a constant, independent of how many candidates discovery returns.

Everything else (guided per-hop selection on the coarse-grain global
state, precise on-arrival checks, transient reservations, φ-minimal final
selection) is inherited from the probing protocol.
"""

from __future__ import annotations

from repro.core.composer import CompositionContext
from repro.core.prober import (
    FinalSelectionPolicy,
    HopSelectionPolicy,
    ProbingComposer,
)
from repro.model.request import StreamRequest


class BoundedProbingComposer(ProbingComposer):
    """BCP: a fixed per-request probe budget split across functions."""

    name = "BCP"

    def __init__(
        self,
        context: CompositionContext,
        probe_budget_total: int = 12,
        vectorized: bool = True,
    ) -> None:
        if probe_budget_total < 1:
            raise ValueError(
                f"probe_budget_total must be >= 1, got {probe_budget_total}"
            )
        super().__init__(
            context,
            probing_ratio=1.0,  # unused: the budget hook overrides it
            hop_policy=HopSelectionPolicy.GUIDED,
            final_policy=FinalSelectionPolicy.PHI,
            use_global_state=True,
            vectorized=vectorized,
        )
        self.probe_budget_total = probe_budget_total

    def _function_budget(
        self, request: StreamRequest, ratio: float, candidate_count: int
    ) -> int:
        """Even split of the request budget, clamped to the pool size."""
        functions = len(request.function_graph)
        share = max(1, self.probe_budget_total // max(1, functions))
        return min(share, candidate_count)
