"""The optimal (exhaustive-search) composition algorithm.

Section 4.1: "The optimal algorithm exhaustively searches all candidate
component compositions to find the best composition."  Its overhead in
Figs. 6(b)/7(b) is "measured by the number of probes required by the
exhaustive search" — i.e. the partial compositions it examines.

:class:`OptimalComposer` finds the exact optimum with a branch-and-bound
depth-first search over function placements in topological order.  It is
exact because every pruning rule is sound:

* **QoS** — accumulation is monotone (additive metrics in additive space),
  so a partial composition violating Eq. 3 cannot be completed into a
  qualified one;
* **resources** — demands only grow, so a partial violating Eq. 4/5 is dead;
* **bound** — φ's terms are non-negative, and the per-placement lower
  bounds (each function's cheapest possible congestion term, computed once
  per request) make ``partial φ + remaining lower bound ≥ best φ`` a valid
  cut.  Candidates are visited cheapest-term-first so a near-optimal
  incumbent appears early and the cut bites.

Like the paper's optimal baseline, the search runs on precise global
knowledge (it is the hypothetical centralised algorithm ACP is compared
against) and performs no transient reservations.

A safety cap on explored partials (default 500k) guards pathological
corners of workload space; if it ever fires the best incumbent is returned
and :attr:`CompositionOutcome.explored` still reports the true work done.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.composer import Composer, CompositionContext, CompositionOutcome
from repro.model.component import Component
from repro.model.qos import QoSVector, elementwise_max
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector, congestion_terms


class OptimalComposer(Composer):
    """Exhaustive search with sound branch-and-bound pruning."""

    name = "Optimal"

    def __init__(self, context: CompositionContext, max_explored: int = 500_000) -> None:
        super().__init__(context)
        if max_explored <= 0:
            raise ValueError(f"max_explored must be positive, got {max_explored}")
        self.max_explored = max_explored
        #: how many compose() calls hit the exploration cap (diagnostics)
        self.truncated_searches = 0

    def compose(self, request: StreamRequest) -> CompositionOutcome:
        """Exhaustively search for the φ-minimal qualified composition."""
        context = self.context
        graph = request.function_graph
        topo = graph.topological_order()
        rates = graph.input_rates(request.stream_rate)

        # Per-placement candidate lists, rate-compatible only, each entry
        # carrying its static congestion term for ordering and bounds.
        ordered_candidates: Dict[int, List[Tuple[float, Component]]] = {}
        # live effective QoS per candidate; constant during the search since
        # the optimal algorithm allocates nothing while searching
        effective_qos: Dict[int, QoSVector] = {}
        for function_index in topo:
            function = graph.node(function_index).function
            requirement = request.requirement_for(function_index)
            entries: List[Tuple[float, Component]] = []
            for candidate in context.registry.candidates(function):
                if rates[function_index] > candidate.max_input_rate:
                    continue
                if not candidate.satisfies_attributes(
                    request.required_attributes
                ):
                    continue
                if not context.network.node(candidate.node_id).alive:
                    continue  # crashed host: component unusable
                available = context.network.node(candidate.node_id).available
                term = sum(congestion_terms(requirement, available))
                entries.append((term, candidate))
                if candidate.component_id not in effective_qos:
                    effective_qos[candidate.component_id] = (
                        context.precise_component_qos(candidate)
                    )
            if not entries:
                return self._fail(request, "no_candidates")
            entries.sort(key=lambda pair: (pair[0], pair[1].component_id))
            ordered_candidates[function_index] = entries

        # Admissible lower bound on the φ contribution of the remaining
        # placements from each search depth onward.
        suffix_bound = [0.0] * (len(topo) + 1)
        for position in range(len(topo) - 1, -1, -1):
            cheapest = ordered_candidates[topo[position]][0][0]
            suffix_bound[position] = suffix_bound[position + 1] + cheapest

        best: Dict[str, object] = {"phi": float("inf"), "composition": None}
        explored = 0
        truncated = False

        assignment: Dict[int, Component] = {}
        accumulated_out: Dict[int, QoSVector] = {}
        node_demand: Dict[int, ResourceVector] = {}

        def search(position: int, partial_phi: float) -> None:
            nonlocal explored, truncated
            if truncated:
                return
            if position == len(topo):
                composition = self.evaluator.build_component_graph(
                    request, assignment
                )
                ok, _reason = self.evaluator.feasible(composition)
                if not ok:
                    return
                phi = self.evaluator.phi(composition)
                if phi < best["phi"]:
                    best["phi"] = phi
                    best["composition"] = composition
                return
            function_index = topo[position]
            predecessors = graph.predecessors(function_index)
            requirement = request.requirement_for(function_index)
            for term, candidate in ordered_candidates[function_index]:
                if truncated:
                    return
                explored += 1
                if explored >= self.max_explored:
                    truncated = True
                    self.truncated_searches += 1
                    return
                if partial_phi + term + suffix_bound[position + 1] >= best["phi"]:
                    # candidates are term-sorted: nothing later can win either
                    break
                extension = self._extend(
                    request,
                    candidate,
                    effective_qos[candidate.component_id],
                    function_index,
                    predecessors,
                    requirement,
                    assignment,
                    accumulated_out,
                    node_demand,
                )
                if extension is None:
                    continue
                accumulated, phi_increment, previous_demand = extension
                assignment[function_index] = candidate
                accumulated_out[function_index] = accumulated
                search(position + 1, partial_phi + phi_increment)
                del assignment[function_index]
                del accumulated_out[function_index]
                if previous_demand is None:
                    del node_demand[candidate.node_id]
                else:
                    node_demand[candidate.node_id] = previous_demand

        search(0, 0.0)

        composition = best["composition"]
        if composition is None:
            return self._fail(
                request, "no_qualified_composition", probe_messages=explored,
                explored=explored,
            )
        return CompositionOutcome(
            request=request,
            composition=composition,
            success=True,
            probe_messages=explored,  # probes of the brute-force prober
            setup_messages=self._setup_messages(composition),
            explored=explored,
            phi=best["phi"],
        )

    def _extend(
        self,
        request: StreamRequest,
        candidate: Component,
        candidate_qos: QoSVector,
        function_index: int,
        predecessors: Tuple[int, ...],
        requirement: ResourceVector,
        assignment: Dict[int, Component],
        accumulated_out: Dict[int, QoSVector],
        node_demand: Dict[int, ResourceVector],
    ) -> Optional[Tuple[QoSVector, float, Optional[ResourceVector]]]:
        """Try extending the partial composition with ``candidate``.

        Returns (accumulated QoS, φ increment, previous node demand) and
        mutates ``node_demand``; returns None if any pruning rule rejects
        the extension (leaving ``node_demand`` untouched).
        """
        context = self.context
        # one component instance per placement per session
        for assigned in assignment.values():
            if assigned.component_id == candidate.component_id:
                return None
        for predecessor in predecessors:
            if not assignment[predecessor].compatible_with(candidate):
                return None

        # QoS accumulation (worst path over joins) + Eq. 3 prune
        link_bandwidth_terms = 0.0
        if predecessors:
            accumulated = None
            for predecessor in predecessors:
                upstream = assignment[predecessor]
                if not context.router.reachable(
                    upstream.node_id, candidate.node_id
                ):
                    return None  # no overlay path: no virtual link possible
                vl_qos = context.router.virtual_link_qos(
                    upstream.node_id, candidate.node_id
                )
                through = accumulated_out[predecessor].combine(vl_qos)
                accumulated = (
                    through
                    if accumulated is None
                    else elementwise_max(accumulated, through)
                )
                bandwidth = request.bandwidth_for((predecessor, function_index))
                if upstream.node_id != candidate.node_id and bandwidth > 0.0:
                    live_bw = context.router.available_bandwidth(
                        upstream.node_id, candidate.node_id
                    )
                    if live_bw < bandwidth - 1e-9:
                        return None  # Eq. 5 prune
                    link_bandwidth_terms += bandwidth / live_bw
            accumulated = accumulated.combine(candidate_qos)
        else:
            accumulated = candidate_qos
        if not accumulated.satisfies(request.qos_requirement):
            return None

        # Eq. 4 prune with aggregate per-node demand
        available = context.network.node(candidate.node_id).available
        previous_demand = node_demand.get(candidate.node_id)
        new_demand = (
            requirement if previous_demand is None else previous_demand + requirement
        )
        if not available.covers(new_demand):
            return None
        node_demand[candidate.node_id] = new_demand

        # φ increment: this component's node terms against availability net
        # of the demand already placed on the node (a lower bound of the
        # final Eq. 1 term — see module docstring), plus its link terms.
        effective = (
            available if previous_demand is None else available - previous_demand
        )
        phi_increment = (
            sum(congestion_terms(requirement, effective)) + link_bandwidth_terms
        )
        return accumulated, phi_increment, previous_demand
