"""Composition algorithms: ACP, the optimal baseline, and heuristics.

The paper's contribution (adaptive composition probing with hierarchical
state management and probing-ratio self-tuning) plus every algorithm its
evaluation compares against.
"""

from repro.core.acp import ACPComposer
from repro.core.bounded import BoundedProbingComposer
from repro.core.baselines import (
    RandomComposer,
    RandomProbingComposer,
    SelectiveProbingComposer,
    StaticComposer,
)
from repro.core.composer import (
    Composer,
    CompositionContext,
    CompositionEvaluator,
    CompositionOutcome,
)
from repro.core.control import (
    ControlChannel,
    LossyControlChannel,
    PerfectControlChannel,
    delay_slack_ms,
)
from repro.core.fastscore import FastScorer, LevelPool
from repro.core.optimal import OptimalComposer
from repro.core.probe import Probe, ProbeFactory
from repro.core.prober import (
    FinalSelectionPolicy,
    HopSelectionPolicy,
    ProbingComposer,
)
from repro.core.selection import (
    RISK_TIE_EPSILON,
    RankingPolicy,
    ScoredCandidate,
    congestion_value,
    probe_budget,
    qualification_failure,
    risk_value,
    select_best,
)
from repro.core.tuning import ProbingRatioTuner, TunerSample
from repro.core.tuning_pid import PIDRatioTuner

__all__ = [
    "ACPComposer",
    "BoundedProbingComposer",
    "Composer",
    "CompositionContext",
    "CompositionEvaluator",
    "CompositionOutcome",
    "ControlChannel",
    "LossyControlChannel",
    "PerfectControlChannel",
    "delay_slack_ms",
    "FastScorer",
    "LevelPool",
    "OptimalComposer",
    "ProbingComposer",
    "HopSelectionPolicy",
    "FinalSelectionPolicy",
    "RandomComposer",
    "StaticComposer",
    "SelectiveProbingComposer",
    "RandomProbingComposer",
    "Probe",
    "ProbeFactory",
    "ProbingRatioTuner",
    "PIDRatioTuner",
    "TunerSample",
    "ScoredCandidate",
    "RankingPolicy",
    "risk_value",
    "congestion_value",
    "qualification_failure",
    "select_best",
    "probe_budget",
    "RISK_TIE_EPSILON",
]
