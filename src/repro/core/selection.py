"""Per-hop candidate component selection (Section 3.5).

When a probe reaches a component, the hosting node must decide which
next-hop candidate components to spawn probes for, under the probing ratio
constraint M = ⌈α·k⌉.  The paper's scheme, implemented here:

1. filter out interface-incompatible candidates (format / stream rate);
2. filter out *unqualified* candidates by Eqs. 6–8 using the coarse-grain
   global state (QoS bound already blown; node resources short; virtual
   link bandwidth short);
3. rank the qualified candidates by the risk function D(c) of Eq. 9 —
   smaller maximum QoS-violation risk first — breaking near-ties with the
   congestion function W(c) of Eq. 10 — less-loaded first — and keep the
   best M.

The functions are pure: all state is passed in, so the same code serves
ACP (stale global state in, precise collected state later) and unit tests
(synthetic values in).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.model.component import Component
from repro.model.qos import QoSVector
from repro.model.resources import ResourceVector, congestion_terms

#: Risk values within this relative distance count as "similar", falling
#: through to the congestion comparison (Section 3.5: "If two candidate
#: components have similar risk function values, we compare them based on
#: the load distribution goal").
RISK_TIE_EPSILON = 0.05


@dataclass(frozen=True)
class ScoredCandidate:
    """One (parent-probe, candidate) expansion option with its scores."""

    candidate: Component
    risk: float
    congestion: float
    #: QoS accumulated through this candidate's output (worst path so far).
    accumulated_qos: QoSVector
    #: Opaque parent handle threaded through by the prober.
    parent: object = None
    #: Per-predecessor virtual-link QoS, threaded through for probe state.
    link_qos: Tuple[QoSVector, ...] = ()
    #: Worst-path QoS accumulated up to (but excluding) this candidate —
    #: i.e. through the virtual links into it.  ``None`` when the candidate
    #: has no predecessors.  The prober re-combines this with the
    #: candidate's *precise* QoS on probe arrival, so the through-link
    #: accumulation is not recomputed per dispatch.
    pre_qos: Optional[QoSVector] = None


def risk_value(accumulated_qos: QoSVector, requirement: QoSVector) -> float:
    """Eq. 9: D(c) = max_m (q_acc + q_c + q_l)_m / q_m^req.

    ``accumulated_qos`` must already include the candidate component and the
    virtual link(s) into it.  Ratios are taken in additive space so the
    loss-rate metric is meaningful.  Values > 1 mean the bound is already
    violated.
    """
    return max(accumulated_qos.utilization(requirement))


def congestion_value(
    requirement: ResourceVector,
    available: ResourceVector,
    bandwidth_requirements: Sequence[float] = (),
    available_bandwidths: Sequence[float] = (),
) -> float:
    """Eq. 10: W(c) = Σ_k r_k/(rr_k + r_k) + Σ b/(rb + b).

    With residuals defined as available − required this reduces to
    Σ r_k/ra_k + Σ b/ba.  Multiple (bandwidth, availability) pairs support
    DAG joins, where a candidate is reached over one virtual link per
    predecessor.  Saturated dimensions yield ``inf``.
    """
    total = sum(congestion_terms(requirement, available))
    for bandwidth, available_bw in zip(bandwidth_requirements, available_bandwidths):
        if bandwidth <= 0.0:
            continue
        if available_bw <= 0.0:
            total += float("inf")
        else:
            total += bandwidth / available_bw
    return total


def qualification_failure(
    accumulated_qos: QoSVector,
    qos_requirement: QoSVector,
    resource_requirement: ResourceVector,
    available: ResourceVector,
    bandwidth_requirements: Sequence[float] = (),
    available_bandwidths: Sequence[float] = (),
) -> Optional[str]:
    """Eqs. 6–8 qualification check; None if qualified, else the reason.

    * Eq. 6 — the QoS accumulation through this candidate already exceeds
      the user requirement in some metric;
    * Eq. 7 — the candidate's node lacks the required end-system resources;
    * Eq. 8 — some virtual link into the candidate lacks the required
      bandwidth.
    """
    if not accumulated_qos.satisfies(qos_requirement):
        return "qos"
    if not available.covers(resource_requirement):
        return "node_resources"
    for bandwidth, available_bw in zip(bandwidth_requirements, available_bandwidths):
        if available_bw < bandwidth - 1e-9:
            return "link_bandwidth"
    return None


class RankingPolicy(enum.Enum):
    """What the per-hop top-M ranking orders on (ablation knob).

    The paper's scheme is :attr:`RISK_THEN_CONGESTION`; the other two
    isolate the contribution of each function for the selection ablation.
    """

    RISK_THEN_CONGESTION = "risk_then_congestion"
    RISK_ONLY = "risk_only"
    CONGESTION_ONLY = "congestion_only"


def select_best(
    scored: Sequence[ScoredCandidate],
    limit: int,
    risk_tie_epsilon: float = RISK_TIE_EPSILON,
    ranking: RankingPolicy = RankingPolicy.RISK_THEN_CONGESTION,
) -> List[ScoredCandidate]:
    """Keep the ``limit`` best candidates by (risk, then congestion).

    Risk values are bucketed by ``risk_tie_epsilon`` so that "similar" risks
    compare on the congestion function, per Section 3.5.  Ties beyond that
    break on component id for determinism.
    """
    if limit <= 0:
        return []

    def key(entry: ScoredCandidate) -> Tuple[float, ...]:
        if ranking is RankingPolicy.RISK_ONLY:
            return (entry.risk, entry.candidate.component_id)
        if ranking is RankingPolicy.CONGESTION_ONLY:
            return (entry.congestion, entry.candidate.component_id)
        bucket = (
            round(entry.risk / risk_tie_epsilon)
            if risk_tie_epsilon > 0
            else entry.risk
        )
        return (bucket, entry.congestion, entry.candidate.component_id)

    return sorted(scored, key=key)[:limit]


def probe_budget(probing_ratio: float, candidate_count: int) -> int:
    """M = ⌈α · k⌉ — how many candidates to probe for one function.

    Section 3.4: "If a function F_i has k_i candidate components and the
    probing ratio is α, ACP will probe ⌈α · k_i⌉ candidate components."
    A positive ratio always probes at least one candidate.
    """
    if not 0.0 < probing_ratio <= 1.0:
        raise ValueError(f"probing ratio must be in (0, 1], got {probing_ratio}")
    if candidate_count < 0:
        raise ValueError(f"negative candidate count {candidate_count}")
    if candidate_count == 0:
        return 0
    budget = -(-probing_ratio * candidate_count // 1)  # ceil
    return max(1, int(budget))
