"""Optional compiled backend for the fastscore inner loops.

The vectorised probing hot path (:mod:`repro.core.fastscore`) spends its
time in three elementwise batches over ``(probes × candidates)`` arrays:

* the per-predecessor **through-QoS fold** — upstream output QoS plus the
  gathered virtual-link row, max-folded into the worst-path accumulator;
* the **candidate finalisation** — worst-path QoS through the candidate
  itself (delay sum, raw-space loss composition);
* the **congestion fold** (Eq. 10) — per-dimension node terms broadcast
  over the probe axis, then per-predecessor link terms, summed in the
  scalar reference's term order.

This module provides those three batches behind a backend switch:

* ``"numpy"`` — the always-available reference, byte-for-byte the array
  expressions fastscore inlined before this module existed;
* ``"numba"`` — the same loops under ``@njit(cache=True)`` (no
  ``fastmath``, so IEEE semantics and operation order are preserved and
  decisions stay **byte-identical** to the numpy path — asserted by
  ``tests/test_scoring_kernel.py``).  Requires the optional ``compiled``
  extra; absence is an error only when explicitly requested.

The risk transform (Eq. 9) stays on numpy deliberately: it routes through
``np.log1p``, whose libm vs compiler-runtime implementations may differ in
the last ulp — the one divergence the determinism contract does not absorb.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

try:  # the optional "compiled" extra; tier-1 never requires it
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised when numba is installed
    _njit = None
    NUMBA_AVAILABLE = False

#: Accepted SystemConfig.scoring_kernel values.
SCORING_KERNELS = ("auto", "numpy", "numba")


def resolve_scoring_kernel(name: str) -> str:
    """Resolve a configured backend name to a concrete one.

    ``"auto"`` prefers numba when importable and silently falls back to
    numpy; ``"numba"`` is an explicit demand and raises when the extra is
    missing, so a benchmark that believes it measured compiled kernels
    actually did.
    """
    if name not in SCORING_KERNELS:
        raise ValueError(
            f"unknown scoring kernel {name!r}; expected one of {SCORING_KERNELS}"
        )
    if name == "numpy":
        return "numpy"
    if name == "numba":
        if not NUMBA_AVAILABLE:
            raise RuntimeError(
                "scoring_kernel='numba' requested but numba is not "
                "installed; install the 'compiled' extra "
                "(pip install repro[compiled]) or use 'auto'/'numpy'"
            )
        return "numba"
    return "numba" if NUMBA_AVAILABLE else "numpy"


class ScoringKernel:
    """The numpy reference backend (and the backend interface).

    Each method is a pure function over float64 arrays; subclasses may
    substitute compiled implementations but must preserve elementwise IEEE
    operation order — the decision-identity contract is byte-level.
    """

    name = "numpy"

    @staticmethod
    def through_qos(
        out_delay: np.ndarray,
        out_loss: np.ndarray,
        link_delay: np.ndarray,
        link_loss: np.ndarray,
        accumulated_delay: Optional[np.ndarray],
        accumulated_loss: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One predecessor's worst-path fold.

        ``out_*`` are per-probe columns ``(probes, 1)``; ``link_*`` are the
        gathered rows ``(probes, candidates)``.  Returns the updated
        ``(accumulated_delay, accumulated_loss)`` — the through-values on
        the first predecessor, the elementwise max fold afterwards.
        """
        through_delay = out_delay + link_delay
        through_loss = 1.0 - (1.0 - out_loss) * (1.0 - link_loss)
        if accumulated_delay is None or accumulated_loss is None:
            return through_delay, through_loss
        return (
            np.maximum(accumulated_delay, through_delay),
            np.maximum(accumulated_loss, through_loss),
        )

    @staticmethod
    def finalize_qos(
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
        candidate_delay: np.ndarray,
        candidate_loss: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Worst-path QoS through the candidate itself (delay sum, raw-space
        loss composition); candidate arrays broadcast over the probe axis."""
        return (
            accumulated_delay + candidate_delay,
            1.0 - (1.0 - accumulated_loss) * (1.0 - candidate_loss),
        )

    @staticmethod
    def congestion(
        requirement_values: Tuple[float, ...],
        available: np.ndarray,
        bandwidth_rows: List[Tuple[float, np.ndarray]],
        shape: Tuple[int, int],
    ) -> np.ndarray:
        """Eq. 10 over the ``(probes × candidates)`` batch, summing terms in
        the scalar order.  Node-resource terms depend only on the candidate,
        so they are computed once per dimension and broadcast over the probe
        axis — each row receives exactly the scalar sequence of additions.

        Division is only ever applied to strictly positive denominators
        (non-positive availability contributes ``inf`` directly), so no
        warnings fire and no errstate guard is needed.
        """
        total = np.zeros(shape)
        node_term = np.empty(available.shape[0])
        for dimension, required in enumerate(requirement_values):
            if required <= 0.0:
                continue
            column = available[:, dimension]
            node_term.fill(math.inf)
            np.divide(required, column, out=node_term, where=column > 0.0)
            total += node_term
        for bandwidth_required, rows in bandwidth_rows:
            if bandwidth_required <= 0.0:
                continue
            link_term = np.full(shape, math.inf)
            np.divide(bandwidth_required, rows, out=link_term, where=rows > 0.0)
            total += link_term
        return total


def _compile_numba_kernels() -> Tuple[Callable[..., Any], ...]:
    """JIT-compile the three loops (called once, only when numba exists).

    ``cache=True`` persists the compilation on disk; ``fastmath`` stays
    off — reassociation would break byte-identity with the numpy path.
    """
    assert _njit is not None

    @_njit(cache=True)
    def through_first(
        out_delay: np.ndarray,
        out_loss: np.ndarray,
        link_delay: np.ndarray,
        link_loss: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        probes, candidates = link_delay.shape
        delay = np.empty((probes, candidates))
        loss = np.empty((probes, candidates))
        for i in range(probes):
            probe_delay = out_delay[i, 0]
            probe_loss = out_loss[i, 0]
            for j in range(candidates):
                delay[i, j] = probe_delay + link_delay[i, j]
                loss[i, j] = 1.0 - (1.0 - probe_loss) * (1.0 - link_loss[i, j])
        return delay, loss

    @_njit(cache=True)
    def through_fold(
        out_delay: np.ndarray,
        out_loss: np.ndarray,
        link_delay: np.ndarray,
        link_loss: np.ndarray,
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        probes, candidates = link_delay.shape
        delay = np.empty((probes, candidates))
        loss = np.empty((probes, candidates))
        for i in range(probes):
            probe_delay = out_delay[i, 0]
            probe_loss = out_loss[i, 0]
            for j in range(candidates):
                through_delay = probe_delay + link_delay[i, j]
                through_loss = 1.0 - (1.0 - probe_loss) * (
                    1.0 - link_loss[i, j]
                )
                previous_delay = accumulated_delay[i, j]
                previous_loss = accumulated_loss[i, j]
                delay[i, j] = (
                    through_delay
                    if through_delay > previous_delay
                    else previous_delay
                )
                loss[i, j] = (
                    through_loss if through_loss > previous_loss else previous_loss
                )
        return delay, loss

    @_njit(cache=True)
    def finalize(
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
        candidate_delay: np.ndarray,
        candidate_loss: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        probes, candidates = accumulated_delay.shape
        delay = np.empty((probes, candidates))
        loss = np.empty((probes, candidates))
        for i in range(probes):
            for j in range(candidates):
                delay[i, j] = accumulated_delay[i, j] + candidate_delay[j]
                loss[i, j] = 1.0 - (1.0 - accumulated_loss[i, j]) * (
                    1.0 - candidate_loss[j]
                )
        return delay, loss

    @_njit(cache=True)
    def congestion_nodes(
        requirements: np.ndarray, available: np.ndarray, probe_count: int
    ) -> np.ndarray:
        candidates = available.shape[0]
        total = np.zeros((probe_count, candidates))
        for dimension in range(requirements.shape[0]):
            required = requirements[dimension]
            if required <= 0.0:
                continue
            for j in range(candidates):
                column = available[j, dimension]
                term = required / column if column > 0.0 else np.inf
                for i in range(probe_count):
                    total[i, j] += term
        return total

    @_njit(cache=True)
    def congestion_links(
        total: np.ndarray, bandwidth_required: float, rows: np.ndarray
    ) -> None:
        probes, candidates = rows.shape
        for i in range(probes):
            for j in range(candidates):
                value = rows[i, j]
                total[i, j] += (
                    bandwidth_required / value if value > 0.0 else np.inf
                )

    return through_first, through_fold, finalize, congestion_nodes, congestion_links


class NumbaScoringKernel(ScoringKernel):
    """Compiled backend: the same loops under ``@njit`` (IEEE-exact)."""

    name = "numba"

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:  # pragma: no cover - guarded by resolve()
            raise RuntimeError("numba is not installed")
        (
            self._through_first,
            self._through_fold,
            self._finalize,
            self._congestion_nodes,
            self._congestion_links,
        ) = _compile_numba_kernels()

    def through_qos(  # type: ignore[override]
        self,
        out_delay: np.ndarray,
        out_loss: np.ndarray,
        link_delay: np.ndarray,
        link_loss: np.ndarray,
        accumulated_delay: Optional[np.ndarray],
        accumulated_loss: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if accumulated_delay is None or accumulated_loss is None:
            result: Tuple[np.ndarray, np.ndarray] = self._through_first(
                out_delay, out_loss, link_delay, link_loss
            )
            return result
        folded: Tuple[np.ndarray, np.ndarray] = self._through_fold(
            out_delay,
            out_loss,
            link_delay,
            link_loss,
            accumulated_delay,
            accumulated_loss,
        )
        return folded

    def finalize_qos(  # type: ignore[override]
        self,
        accumulated_delay: np.ndarray,
        accumulated_loss: np.ndarray,
        candidate_delay: np.ndarray,
        candidate_loss: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        result: Tuple[np.ndarray, np.ndarray] = self._finalize(
            np.ascontiguousarray(accumulated_delay),
            np.ascontiguousarray(accumulated_loss),
            np.ascontiguousarray(candidate_delay),
            np.ascontiguousarray(candidate_loss),
        )
        return result

    def congestion(  # type: ignore[override]
        self,
        requirement_values: Tuple[float, ...],
        available: np.ndarray,
        bandwidth_rows: List[Tuple[float, np.ndarray]],
        shape: Tuple[int, int],
    ) -> np.ndarray:
        total: np.ndarray = self._congestion_nodes(
            np.asarray(requirement_values, dtype=np.float64),
            np.ascontiguousarray(available),
            shape[0],
        )
        for bandwidth_required, rows in bandwidth_rows:
            if bandwidth_required <= 0.0:
                continue
            self._congestion_links(total, bandwidth_required, rows)
        return total


_NUMPY_KERNEL = ScoringKernel()
_NUMBA_KERNEL: Optional[NumbaScoringKernel] = None


def get_scoring_kernel(name: str) -> ScoringKernel:
    """The kernel instance for a *resolved* backend name.

    The numba kernel is a process-wide singleton so its JIT compilation
    cost is paid once, not per FastScorer.
    """
    resolved = resolve_scoring_kernel(name)
    if resolved == "numpy":
        return _NUMPY_KERNEL
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:  # pragma: no cover - needs the compiled extra
        _NUMBA_KERNEL = NumbaScoringKernel()
    return _NUMBA_KERNEL
