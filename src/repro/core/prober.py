"""Hop-by-hop composition probing (Section 3.3, Fig. 3).

:class:`ProbingComposer` implements the distributed probing protocol as a
level-synchronised wavefront over the request's function graph in
topological order — which is exactly how the distributed protocol's probes
advance, since a probe only reaches a function once all of that function's
predecessors are assigned.  Per function placement the prober:

1. enumerates candidate components (service discovery);
2. drops interface-incompatible and — for global-state-guided variants —
   unqualified candidates (Eqs. 6–8 against the coarse-grain state);
3. selects up to M = ⌈α·k⌉ expansions, either by the (risk, congestion)
   ranking of Section 3.5 (*guided*) or uniformly at random (*random*, the
   RP baseline);
4. "sends" a probe to each selected candidate: one message, a precise
   on-arrival conformance check against live local state, transient
   resource reservation (footnote 7), and state collection into the child
   probe.

Completed probes return to the deputy, which merges DAG branches (implicit
in the wavefront: each surviving probe carries a complete assignment),
qualifies compositions against the precise collected states (Eqs. 2–5),
and picks the φ-minimal one (*phi*) — or a random qualified one (*random*,
the SP baseline).

The three paper variants are thin configurations of this class:

================  ============  ==============  ===========
variant           hop policy    global state    final policy
================  ============  ==============  ===========
ACP               guided        yes             phi
SP  (selective)   guided        yes             random
RP  (random)      random        no              phi
================  ============  ==============  ===========
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.observability.hotpath import hot_path
from repro.observability.recorder import wall_clock as perf_counter

from repro.core.composer import Composer, CompositionContext, CompositionOutcome
from repro.core.control import delay_slack_ms
from repro.core.probe import Probe, ProbeFactory
from repro.core.selection import (
    RankingPolicy,
    ScoredCandidate,
    congestion_value,
    probe_budget,
    qualification_failure,
    risk_value,
    select_best,
)
from repro.model.component import Component
from repro.model.qos import QoSVector, elementwise_max
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector


class HopSelectionPolicy(enum.Enum):
    """How per-hop candidates are picked under the probing ratio."""

    GUIDED = "guided"  # risk/congestion ranking on coarse-grain global state
    RANDOM = "random"  # uniform choice (no global state), the RP baseline


class FinalSelectionPolicy(enum.Enum):
    """How the deputy picks among qualified complete compositions."""

    PHI = "phi"  # congestion-aggregation minimum (Eq. 1)
    RANDOM = "random"  # uniform qualified choice, the SP baseline


class ProbingComposer(Composer):
    """The composition-probing protocol with configurable policies."""

    name = "Probing"

    def __init__(
        self,
        context: CompositionContext,
        probing_ratio: float = 0.3,
        hop_policy: HopSelectionPolicy = HopSelectionPolicy.GUIDED,
        final_policy: FinalSelectionPolicy = FinalSelectionPolicy.PHI,
        use_global_state: bool = True,
        ratio_provider: Optional[Callable[[], float]] = None,
        ranking_policy: RankingPolicy = RankingPolicy.RISK_THEN_CONGESTION,
        vectorized: bool = True,
    ) -> None:
        super().__init__(context)
        if not 0.0 < probing_ratio <= 1.0:
            raise ValueError(f"probing ratio must be in (0, 1], got {probing_ratio}")
        self.probing_ratio = probing_ratio
        self.hop_policy = hop_policy
        self.final_policy = final_policy
        self.use_global_state = use_global_state
        self._ratio_provider = ratio_provider
        self.ranking_policy = ranking_policy
        #: score candidate pools through repro.core.fastscore array ops;
        #: False forces the scalar reference implementation
        self.vectorized = vectorized

    # -- knobs -------------------------------------------------------------

    def current_probing_ratio(self) -> float:
        """The ratio used for the next request (the tuner may override)."""
        if self._ratio_provider is not None:
            return self._ratio_provider()
        return self.probing_ratio

    # -- the protocol ---------------------------------------------------------

    @hot_path(budget="O(levels × P × M)")
    def compose(self, request: StreamRequest) -> CompositionOutcome:
        """Run the probing wavefront for one request (Fig. 3's protocol)."""
        context = self.context
        graph = request.function_graph
        ratio = self.current_probing_ratio()
        rates = graph.input_rates(request.stream_rate)
        factory = ProbeFactory()
        beam: List[Probe] = [factory.initial(request, ratio)]
        probe_messages = 0
        explored = 0
        # one enabled check per compose; every further instrumentation
        # site branches on this local so the disabled path costs a branch
        recorder = context.recorder
        observing = recorder.enabled
        if observing:
            recorder.emit(
                "probe.start",
                request_id=request.request_id,
                algorithm=self.name,
                ratio=ratio,
                functions=len(graph),
            )
            compose_start = perf_counter()
        # per-compose memos for the scalar path: the coarse-grain view of a
        # candidate or a virtual link cannot change while one request's
        # wavefront runs, but several probes score the same candidate.
        # Locals by design — no per-request state may outlive compose()
        stale_qos_memo: Dict[int, QoSVector] = {}
        stale_bw_memo: Dict[Tuple[int, int], float] = {}
        scorer = None
        if self.vectorized:
            fast = context.fast_scorer()
            if fast.supports(request):
                fast.begin_request(request)
                scorer = fast

        for function_index in graph.topological_order():
            function = graph.node(function_index).function
            candidates = context.registry.candidates(function)
            if not candidates:
                return self._fail(
                    request,
                    "no_candidates",
                    probe_messages=probe_messages,
                    explored=explored,
                )
            budget = self._function_budget(request, ratio, len(candidates))
            predecessors = graph.predecessors(function_index)
            requirement = request.requirement_for(function_index)
            input_rate = rates[function_index]
            if observing:
                level_start = perf_counter()
                beam_in = len(beam)

            if scorer is not None:
                explored += len(beam) * len(candidates)
                level = scorer.score_level(
                    request,
                    beam,
                    function.function_id,
                    candidates,
                    function_index,
                    predecessors,
                    requirement,
                    input_rate,
                    self.use_global_state,
                )
                if level.size == 0:
                    return self._fail(
                        request,
                        "no_qualified_candidates",
                        probe_messages=probe_messages,
                        explored=explored,
                    )
                if self.hop_policy is HopSelectionPolicy.GUIDED:
                    selected = level.select_best(budget, ranking=self.ranking_policy)
                else:
                    # rng.sample draws by position only, so sampling pool
                    # indices consumes the same randomness as sampling the
                    # scalar path's materialised pool list
                    selected = level.take(
                        context.rng.sample(
                            range(level.size), min(budget, level.size)
                        )
                    )
            else:
                pool: List[ScoredCandidate] = []
                for probe in beam:
                    for candidate in candidates:
                        explored += 1
                        entry = self._score_candidate(
                            probe,
                            function_index,
                            candidate,
                            predecessors,
                            requirement,
                            input_rate,
                            stale_qos_memo,
                            stale_bw_memo,
                        )
                        if entry is not None:
                            pool.append(entry)
                if not pool:
                    return self._fail(
                        request,
                        "no_qualified_candidates",
                        probe_messages=probe_messages,
                        explored=explored,
                    )

                if self.hop_policy is HopSelectionPolicy.GUIDED:
                    selected = select_best(pool, budget, ranking=self.ranking_policy)
                else:
                    selected = context.rng.sample(pool, min(budget, len(pool)))

            if observing:
                score_elapsed = perf_counter() - level_start
                dispatch_start = perf_counter()
            beam, sent = self._dispatch_probes(
                request, factory, selected, function_index, predecessors, requirement
            )
            probe_messages += sent  # one message per delivery attempt
            if observing:
                recorder.observe("phase.score_level", score_elapsed)
                recorder.observe(
                    "phase.dispatch", perf_counter() - dispatch_start
                )
                recorder.inc("probe.messages", sent)
                dropped = len(selected) - len(beam)
                recorder.emit(
                    "probe.level",
                    request_id=request.request_id,
                    function=function_index,
                    beam=beam_in,
                    candidates=len(candidates),
                    budget=budget,
                    selected=len(selected),
                    survivors=len(beam),
                    dropped=dropped,
                )
                if dropped:
                    # probes pruned by precise on-arrival checks (Eqs. 6-8)
                    recorder.inc("probe.pruned", dropped)
            if not beam:
                return self._fail(
                    request,
                    "probes_dropped",
                    probe_messages=probe_messages,
                    explored=explored,
                )

        probe_messages += len(beam)  # completed probes return to the deputy
        if not observing:
            return self._final_selection(request, beam, probe_messages, explored)
        final_start = perf_counter()
        outcome = self._final_selection(request, beam, probe_messages, explored)
        now = perf_counter()
        recorder.observe("phase.final_selection", now - final_start)
        recorder.observe("phase.compose", now - compose_start)
        if outcome.success:
            recorder.emit(
                "probe.commit",
                request_id=request.request_id,
                algorithm=self.name,
                phi=outcome.phi,
                probe_messages=outcome.probe_messages,
                setup_messages=outcome.setup_messages,
                explored=outcome.explored,
            )
        return outcome

    def _function_budget(
        self, request: StreamRequest, ratio: float, candidate_count: int
    ) -> int:
        """How many candidates to probe for one function: M = ⌈α·k⌉.

        Subclasses may bound differently (see
        :class:`~repro.core.bounded.BoundedProbingComposer`).
        """
        return probe_budget(ratio, candidate_count)

    # -- per-hop scoring ---------------------------------------------------------

    def _score_candidate(
        self,
        probe: Probe,
        function_index: int,
        candidate: Component,
        predecessors: Tuple[int, ...],
        requirement: ResourceVector,
        input_rate: float,
        stale_qos_memo: Dict[int, QoSVector],
        stale_bw_memo: Dict[Tuple[int, int], float],
    ) -> Optional[ScoredCandidate]:
        """Compatibility + Eqs. 6-8 + Eq. 9/10 scores for one expansion.

        This is the scalar reference implementation; the vectorised twin in
        :mod:`repro.core.fastscore` must make identical decisions.  The memo
        dicts are per-compose scratch owned by the caller."""
        context = self.context
        request = probe.request
        # a component instance runs at most one placement per session
        for assigned in probe.assignment.values():
            if assigned.component_id == candidate.component_id:
                return None
        # interface compatibility: stream rate, capability tags, then
        # per-predecessor formats
        if input_rate > candidate.max_input_rate:
            return None
        if not candidate.satisfies_attributes(request.required_attributes):
            return None
        if not context.network.node(candidate.node_id).alive:
            return None  # crashed host: component unusable
        for predecessor in predecessors:
            if not probe.assignment[predecessor].compatible_with(candidate):
                return None

        # The candidate's QoS as this node can know it: through the
        # coarse-grain global state when available, else the advertised
        # (base) interface values.  Probes verify precisely on arrival.
        if self.use_global_state:
            candidate_qos = stale_qos_memo.get(candidate.component_id)
            if candidate_qos is None:
                candidate_qos = context.stale_component_qos(candidate)
                stale_qos_memo[candidate.component_id] = candidate_qos
        else:
            candidate_qos = candidate.qos

        # QoS accumulation through the candidate (worst path over joins)
        pre_qos: Optional[QoSVector] = None
        if predecessors:
            accumulated = None
            for predecessor in predecessors:
                upstream = probe.assignment[predecessor]
                if not context.router.reachable(upstream.node_id, candidate.node_id):
                    return None  # no overlay path: no virtual link possible
                vl_qos = context.router.virtual_link_qos(
                    upstream.node_id, candidate.node_id
                )
                through = probe.accumulated_out[predecessor].combine(vl_qos)
                accumulated = (
                    through
                    if accumulated is None
                    else elementwise_max(accumulated, through)
                )
            pre_qos = accumulated
            accumulated = accumulated.combine(candidate_qos)
        else:
            accumulated = candidate_qos

        bandwidth_requirements = [
            request.bandwidth_for((predecessor, function_index))
            for predecessor in predecessors
        ]

        if self.use_global_state:
            available = context.global_state.node_available(candidate.node_id)
            available_bandwidths = []
            for predecessor in predecessors:
                upstream = probe.assignment[predecessor]
                pair = (upstream.node_id, candidate.node_id)
                stale_bw = stale_bw_memo.get(pair)
                if stale_bw is None:
                    # per-pair path walk (the path itself is cached by the
                    # router's per-source tree); the vectorised twin scores
                    # whole candidate columns at once from the router's
                    # bottleneck_bandwidth_row instead
                    path = context.router.overlay_path(*pair)
                    stale_bw = context.global_state.virtual_link_available_kbps(
                        path
                    )
                    stale_bw_memo[pair] = stale_bw
                available_bandwidths.append(stale_bw)
            failure = qualification_failure(
                accumulated,
                request.qos_requirement,
                requirement,
                available,
                bandwidth_requirements,
                available_bandwidths,
            )
            if failure is not None:
                return None
            risk = risk_value(accumulated, request.qos_requirement)
            congestion = congestion_value(
                requirement, available, bandwidth_requirements, available_bandwidths
            )
        else:
            # no global state: only the probe-carried QoS accumulation can
            # disqualify a candidate before travelling there (Eq. 6)
            if not accumulated.satisfies(request.qos_requirement):
                return None
            risk = 0.0
            congestion = 0.0

        return ScoredCandidate(
            candidate=candidate,
            risk=risk,
            congestion=congestion,
            accumulated_qos=accumulated,
            parent=probe,
            pre_qos=pre_qos,
        )

    # -- probe travel ----------------------------------------------------------

    def _dispatch_probes(
        self,
        request: StreamRequest,
        factory: ProbeFactory,
        selected: List[ScoredCandidate],
        function_index: int,
        predecessors: Tuple[int, ...],
        requirement: ResourceVector,
    ) -> Tuple[List[Probe], int]:
        """Send probes to selected candidates: control-channel delivery,
        precise on-arrival checks, transient reservation, state collection.

        Every probe message travels through ``context.control`` — the only
        legal delivery seam.  On a lossless channel each candidate costs
        exactly one message, matching the historical accounting.  On a
        lossy channel the probe is re-sent up to ``channel.max_retries``
        times, but only while the cumulative control-plane delay stays
        within the probe's remaining QoS delay slack — a candidate whose
        accumulated delay already sits near the requirement cannot afford
        retries.  Returns ``(surviving probes, messages spent)``.
        """
        context = self.context
        channel = context.control
        lossless = channel.lossless
        recorder = context.recorder
        observing = recorder.enabled
        survivors: List[Probe] = []
        messages = 0
        if lossless:
            # fast path: no retry machinery, identical to the pre-channel
            # behaviour of one message per spawned probe
            messages = len(selected)
            channel.messages_sent += messages
        now = context.clock()
        for entry in selected:
            parent: Probe = entry.parent
            candidate = entry.candidate
            if not lossless:
                slack_ms = delay_slack_ms(
                    entry.accumulated_qos, request.qos_requirement
                )
                delivered = False
                spent_ms = 0.0
                for _attempt in range(1 + channel.max_retries):
                    messages += 1
                    ok, delay_ms = channel.send()
                    spent_ms += delay_ms
                    if spent_ms > slack_ms + 1e-9:
                        break  # control delay ate the deadline budget
                    if ok:
                        delivered = True
                        break
                if not delivered:
                    if observing:
                        recorder.inc("probe.lost")
                        recorder.emit(
                            "probe.lost",
                            request_id=request.request_id,
                            function=function_index,
                            node=candidate.node_id,
                            attempts=_attempt + 1,
                        )
                    continue  # probe (and all retries) lost in transit
            observed_bw: Dict[Tuple[int, int], float] = {}
            feasible = True
            for predecessor in predecessors:
                upstream = parent.assignment[predecessor]
                # the bounded neighbourhood tree answers member pairs in
                # O(k); the router figure is the fallback (and the value
                # is the router's either way, byte-for-byte)
                live_bw = context.live_available_bandwidth(
                    upstream.node_id, candidate.node_id
                )
                observed_bw[(predecessor, function_index)] = live_bw
                if live_bw < request.bandwidth_for(
                    (predecessor, function_index)
                ) - 1e-9:
                    feasible = False
            if not feasible:
                continue  # probe dropped on arrival (precise Eq. 8)
            # re-accumulate QoS with the candidate's *precise* effective
            # values; the stale-guided estimate got the probe here, the
            # live check decides whether it survives (Eq. 6).  The
            # through-link part was already accumulated at scoring time
            # (ScoredCandidate.pre_qos); only the candidate itself differs
            # between the stale estimate and the live view.
            precise_qos = context.precise_component_qos(candidate)
            if predecessors:
                accumulated = entry.pre_qos.combine(precise_qos)
            else:
                accumulated = precise_qos
            if not accumulated.satisfies(request.qos_requirement):
                continue  # probe dropped on arrival (precise Eq. 6)
            observed_available = context.allocator.available_excluding(
                request.request_id, candidate.node_id
            )
            reserved = context.allocator.reserve_component(
                request.request_id, candidate, requirement, now=now
            )
            if not reserved:
                continue  # probe dropped on arrival (precise Eq. 7)
            survivors.append(
                parent.spawn(
                    factory.next_id(),
                    function_index,
                    candidate,
                    accumulated,
                    observed_available,
                    observed_bw,
                )
            )
        return survivors, messages

    # -- deputy final selection ---------------------------------------------------

    def _final_selection(
        self,
        request: StreamRequest,
        beam: List[Probe],
        probe_messages: int,
        explored: int,
    ) -> CompositionOutcome:
        evaluator = self.evaluator
        compositions = [
            evaluator.build_component_graph(request, probe.assignment)
            for probe in beam
        ]
        best, best_phi, qualified = evaluator.qualify_and_rank(compositions)
        if best is None:
            return self._fail(
                request,
                "no_qualified_composition",
                probe_messages=probe_messages,
                explored=explored,
            )
        if self.final_policy is FinalSelectionPolicy.RANDOM:
            best_phi, best = qualified[self.context.rng.randrange(len(qualified))]
        return CompositionOutcome(
            request=request,
            composition=best,
            success=True,
            probe_messages=probe_messages,
            setup_messages=self._setup_messages(best),
            explored=explored,
            phi=best_phi,
        )
