"""Experiment runner: RunSpec → SimulationReport, serial or parallel.

Builds the system and workload a spec describes, instantiates the named
composer, runs the simulation, and hands back the report.  Every run is
deterministic in (spec.system.seed, spec.workload_seed); two specs that
differ only in the algorithm see identical systems and identical request
sequences, which is what makes the paper's algorithm comparisons fair.

Experiment harnesses fan whole spec batches out over worker processes via
:func:`run_specs` / :func:`parallel_map`.  Parallelism cannot change any
result: each point is an isolated simulation whose entire state derives
from the spec's seeds, workers are started with the ``spawn`` method so
they share no interpreter state with the parent (or each other), and
results are returned in submission order.  ``workers=None`` (or ``<= 1``)
degrades to the plain serial loop in-process.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.acp import ACPComposer
from repro.core.baselines import (
    RandomComposer,
    RandomProbingComposer,
    SelectiveProbingComposer,
    StaticComposer,
)
from repro.core.composer import Composer, CompositionContext
from repro.core.optimal import OptimalComposer
from repro.core.tuning import ProbingRatioTuner
from repro.experiments.config import RunSpec
from repro.middleware.migration import LiveSessionMigrationManager
from repro.observability import Recorder
from repro.simulation.failures import FailureInjector, install_control_plane_faults
from repro.simulation.metrics import SimulationReport
from repro.simulation.simulator import StreamProcessingSimulator
from repro.simulation.population import PopulationWorkload
from repro.simulation.system import StreamSystem, build_system
from repro.simulation.workload import WorkloadGenerator, WorkloadSource


def make_composer(spec: RunSpec, context: CompositionContext) -> Composer:
    """Instantiate the composer a spec names."""
    if spec.algorithm == "ACP":
        return ACPComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "Optimal":
        return OptimalComposer(context, max_explored=spec.optimal_max_explored)
    if spec.algorithm == "SP":
        return SelectiveProbingComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "RP":
        return RandomProbingComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "Random":
        return RandomComposer(context)
    if spec.algorithm == "Static":
        return StaticComposer(context)
    raise ValueError(f"unknown algorithm {spec.algorithm!r}")


def build_simulator(
    spec: RunSpec,
    system: Optional[StreamSystem] = None,
    recorder: Optional[Recorder] = None,
) -> StreamProcessingSimulator:
    """Assemble the simulator for a spec (reusing ``system`` if provided —
    only safe for probing a *fresh* system, since runs mutate state).

    ``recorder`` overrides the spec's ``system.recorder`` — the simulator
    wires it through the context, router, tuner, and session layers, so a
    caller-supplied :class:`~repro.observability.TraceRecorder` sees the
    whole run (the ``repro-experiments trace`` subcommand uses this).
    """
    system = system or build_system(spec.system)
    recorder = recorder if recorder is not None else system.recorder
    workload: WorkloadSource = WorkloadGenerator(
        system.templates,
        spec.schedule,
        qos_level=spec.qos_level,
        num_client_routers=spec.system.num_routers,
        seed=spec.workload_seed,
    )
    if spec.population is not None:
        # the population's arrival process draws from its own seed slot
        # (+43) so attaching it never perturbs the request-attribute
        # stream, and vice versa
        workload = PopulationWorkload(
            workload, spec.population, seed=spec.workload_seed + 43
        )
    context = system.composition_context(
        rng=random.Random(spec.workload_seed + 17), recorder=recorder
    )
    composer = make_composer(spec, context)
    tuner = None
    if spec.adaptive:
        tuner = ProbingRatioTuner(
            target_success_rate=spec.target_success_rate, recorder=recorder
        )
    # fault wiring: every fault stream derives its own seed from the
    # workload seed, so enabling one fault kind never perturbs another —
    # and a zero plan wires nothing, leaving the run decision-identical
    # to a fault-free spec
    failures = None
    if spec.faults is not None:
        if spec.faults.injects_churn:
            failures = FailureInjector(
                system.network,
                system.router,
                rng=random.Random(spec.workload_seed + 31),
                plan=spec.faults,
            )
        install_control_plane_faults(
            spec.faults,
            context,
            system.global_state,
            seed=spec.workload_seed + 41,
        )
    # live migration: the planner's candidate sampling draws from its own
    # seed slot (+46), and a zero plan builds no manager at all, leaving
    # the run byte-identical to a migration-free spec
    live_migration = None
    if spec.migration is not None and not spec.migration.is_zero:
        live_migration = LiveSessionMigrationManager(
            context,
            spec.migration,
            rng=random.Random(spec.workload_seed + 46),
        )
    return StreamProcessingSimulator(
        system,
        composer,
        workload,
        sampling_period_s=spec.sampling_period_s,
        tuner=tuner,
        failures=failures,
        recorder=recorder,
        recovery=spec.recovery,
        live_migration=live_migration,
    )


def run_spec(spec: RunSpec) -> SimulationReport:
    """Run one spec end to end and return its report."""
    simulator = build_simulator(spec)
    return simulator.run(spec.duration_s)


class ParallelExperimentError(RuntimeError):
    """A worker process died before delivering its result.

    Raised instead of the executor's :class:`BrokenProcessPool` so callers
    get one stable exception type (and a hint that the remaining points
    were abandoned, not silently skipped)."""


def parallel_map(
    fn: Callable, items: Iterable, workers: Optional[int] = None
) -> List:
    """Apply ``fn`` to every item, preserving input order in the output.

    With ``workers`` of ``None``, ``0`` or ``1`` this is a plain serial
    loop in the current process — no pool, nothing to pickle.  Otherwise
    items are dispatched to a ``spawn``-context process pool: spawned
    workers import the package fresh and inherit no parent state, so a
    point's result depends only on its argument — serial and parallel
    runs produce identical outputs.

    ``fn`` and the items must be picklable (module-level functions and
    frozen spec dataclasses are).  If a worker dies — OOM kill, hard
    crash, ``os._exit`` — the pool is torn down and
    :class:`ParallelExperimentError` is raised rather than hanging on a
    result that will never arrive.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    context = get_context("spawn")
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)), mp_context=context
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    except BrokenProcessPool as exc:
        raise ParallelExperimentError(
            f"a worker process died while running {len(items)} experiment "
            f"points across {workers} workers; partial results discarded"
        ) from exc


def run_specs(
    specs: Sequence[RunSpec], workers: Optional[int] = None
) -> List[SimulationReport]:
    """Run a batch of specs (one simulation each), optionally in parallel.

    Reports come back in spec order.  Each spec is self-seeding, so the
    fan-out is embarrassingly parallel and bit-deterministic either way.
    """
    return parallel_map(run_spec, specs, workers=workers)


def run_comparison(
    base: RunSpec, algorithms: Tuple[str, ...], workers: Optional[int] = None
) -> Dict[str, SimulationReport]:
    """Run several algorithms against identical systems and workloads."""
    specs = [base.with_algorithm(algorithm) for algorithm in algorithms]
    return dict(zip(algorithms, run_specs(specs, workers=workers)))
