"""Experiment runner: RunSpec → SimulationReport.

Builds the system and workload a spec describes, instantiates the named
composer, runs the simulation, and hands back the report.  Every run is
deterministic in (spec.system.seed, spec.workload_seed); two specs that
differ only in the algorithm see identical systems and identical request
sequences, which is what makes the paper's algorithm comparisons fair.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core.acp import ACPComposer
from repro.core.baselines import (
    RandomComposer,
    RandomProbingComposer,
    SelectiveProbingComposer,
    StaticComposer,
)
from repro.core.composer import Composer, CompositionContext
from repro.core.optimal import OptimalComposer
from repro.core.tuning import ProbingRatioTuner
from repro.experiments.config import RunSpec
from repro.simulation.metrics import SimulationReport
from repro.simulation.simulator import StreamProcessingSimulator
from repro.simulation.system import StreamSystem, build_system
from repro.simulation.workload import WorkloadGenerator


def make_composer(spec: RunSpec, context: CompositionContext) -> Composer:
    """Instantiate the composer a spec names."""
    if spec.algorithm == "ACP":
        return ACPComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "Optimal":
        return OptimalComposer(context, max_explored=spec.optimal_max_explored)
    if spec.algorithm == "SP":
        return SelectiveProbingComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "RP":
        return RandomProbingComposer(context, probing_ratio=spec.probing_ratio)
    if spec.algorithm == "Random":
        return RandomComposer(context)
    if spec.algorithm == "Static":
        return StaticComposer(context)
    raise ValueError(f"unknown algorithm {spec.algorithm!r}")


def build_simulator(
    spec: RunSpec, system: Optional[StreamSystem] = None
) -> StreamProcessingSimulator:
    """Assemble the simulator for a spec (reusing ``system`` if provided —
    only safe for probing a *fresh* system, since runs mutate state)."""
    system = system or build_system(spec.system)
    workload = WorkloadGenerator(
        system.templates,
        spec.schedule,
        qos_level=spec.qos_level,
        num_client_routers=spec.system.num_routers,
        seed=spec.workload_seed,
    )
    context = system.composition_context(
        rng=random.Random(spec.workload_seed + 17)
    )
    composer = make_composer(spec, context)
    tuner = None
    if spec.adaptive:
        tuner = ProbingRatioTuner(target_success_rate=spec.target_success_rate)
    return StreamProcessingSimulator(
        system,
        composer,
        workload,
        sampling_period_s=spec.sampling_period_s,
        tuner=tuner,
    )


def run_spec(spec: RunSpec) -> SimulationReport:
    """Run one spec end to end and return its report."""
    simulator = build_simulator(spec)
    return simulator.run(spec.duration_s)


def run_comparison(
    base: RunSpec, algorithms: Tuple[str, ...]
) -> Dict[str, SimulationReport]:
    """Run several algorithms against identical systems and workloads."""
    return {
        algorithm: run_spec(base.with_algorithm(algorithm))
        for algorithm in algorithms
    }
