"""Rendering experiment results as the paper's rows.

Plain-text tables: one row per x value, one column per series — the same
numbers the paper plots in Figs. 5–8, printable from benchmarks and the
examples without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.figures import (
    FaultsResult,
    FigureResult,
    Fig8Result,
    MigrationResult,
    PopulationResult,
)
from repro.simulation.metrics import SimulationReport


def format_figure_table(result: FigureResult, percent: bool = True) -> str:
    """Render a multi-series figure as an aligned text table.

    ``percent`` scales y values by 100 (success rates); overhead figures
    pass False.
    """
    labels = list(result.series)
    xs: List[float] = []
    for series in result.series.values():
        for x, _y in series.points:
            if x not in xs:
                xs.append(x)
    xs.sort()

    header = [result.x_label] + labels
    rows: List[List[str]] = []
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            lookup = dict(result.series[label].points)
            y = lookup.get(x)
            if y is None:
                row.append("-")
            elif percent:
                row.append(f"{100.0 * y:.1f}")
            else:
                row.append(f"{y:.1f}")
        rows.append(row)
    title = f"Figure {result.figure}: {result.y_label} vs {result.x_label}"
    return title + "\n" + _align([header] + rows)


def format_fig8_table(result: Fig8Result) -> str:
    """Render an adaptability time series: time, rate, success, ratio."""
    header = ["time (min)", "load (reqs/min)", "success rate (%)", "probing ratio"]
    rows = []
    for sample in result.samples:
        rows.append(
            [
                f"{sample.time / 60.0:.0f}",
                f"{result.schedule.rate_at(sample.time):g}",
                f"{100.0 * sample.success_rate:.1f}",
                "-" if sample.probing_ratio is None else f"{sample.probing_ratio:.1f}",
            ]
        )
    title = f"Figure {result.figure}"
    if result.target_success_rate is not None:
        title += f" (adaptive, target {100 * result.target_success_rate:.0f}%)"
    else:
        title += " (fixed probing ratio)"
    return title + "\n" + _align([header] + rows)


def format_faults_table(result: FaultsResult) -> str:
    """Render the fault-tolerance comparison: kill-on-fault vs recovery."""
    header = [
        "mode",
        "sessions",
        "disrupted",
        "recovered",
        "killed",
        "survival (%)",
        "mean recovery (s)",
        "recovery probes",
    ]
    rows = []
    for label, report in (
        ("kill-on-fault", result.baseline),
        ("recovery", result.resilient),
    ):
        rows.append(
            [
                label,
                str(report.sessions_opened),
                str(report.sessions_disrupted),
                str(report.sessions_recovered),
                str(report.sessions_killed),
                f"{100.0 * report.session_survival_rate:.1f}",
                f"{report.mean_recovery_latency_s:.1f}",
                str(report.recovery_probe_messages),
            ]
        )
    plan = result.plan
    title = (
        "Fault tolerance: session survival under the fault cocktail\n"
        f"(node fail p={plan.node_fail_probability:g}, "
        f"link fail p={plan.link_fail_probability:g}, "
        f"probe loss p={plan.probe_loss_probability:g}, "
        f"state-update loss p={plan.state_update_loss_probability:g})"
    )
    return title + "\n" + _align([header] + rows)


def faults_to_dict(result: FaultsResult) -> dict:
    """A fault-tolerance comparison as a JSON-serialisable dict
    (the ``BENCH_faults.json`` payload shape)."""
    plan = result.plan

    def _mode(report: SimulationReport) -> dict:
        payload = report_to_dict(report)
        payload.update(
            {
                "sessions_opened": report.sessions_opened,
                "sessions_disrupted": report.sessions_disrupted,
                "sessions_recovered": report.sessions_recovered,
                "sessions_killed": report.sessions_killed,
                "session_survival_rate": report.session_survival_rate,
                "recovery_probe_messages": report.recovery_probe_messages,
                "mean_recovery_latency_s": report.mean_recovery_latency_s,
                "state_updates_lost": report.state_updates_lost,
                "probe_messages_lost": report.probe_messages_lost,
            }
        )
        return payload

    return {
        "plan": {
            "node_fail_probability": plan.node_fail_probability,
            "node_recover_probability": plan.node_recover_probability,
            "link_fail_probability": plan.link_fail_probability,
            "link_recover_probability": plan.link_recover_probability,
            "probe_loss_probability": plan.probe_loss_probability,
            "probe_delay_ms": plan.probe_delay_ms,
            "max_probe_retries": plan.max_probe_retries,
            "state_update_loss_probability": plan.state_update_loss_probability,
            "max_concurrent_failures": plan.max_concurrent_failures,
            "period_s": plan.period_s,
        },
        "baseline": _mode(result.baseline),
        "resilient": _mode(result.resilient),
    }


def format_migration_table(result: MigrationResult) -> str:
    """Render the proactive-reconfiguration comparison, costs included."""
    header = [
        "mode",
        "requests",
        "success (%)",
        "p99 setup (ms)",
        "survival (%)",
        "migrated",
        "slack aborts",
        "paused (s)",
        "probes",
    ]
    rows = []
    for label, report in (
        ("recover-only", result.recover_only),
        ("proactive+recover", result.proactive),
    ):
        rows.append(
            [
                label,
                str(report.total_requests),
                f"{100.0 * report.success_rate:.1f}",
                "-"
                if report.p99_setup_latency_ms is None
                else f"{report.p99_setup_latency_ms:.1f}",
                f"{100.0 * report.session_survival_rate:.1f}",
                str(report.sessions_migrated),
                str(report.migrations_aborted_on_slack),
                f"{report.migration_paused_stream_s:.2f}",
                str(report.migration_probe_messages),
            ]
        )
    policy = result.plan.policy
    title = (
        "Proactive reconfiguration: recover-only vs proactive+recover\n"
        f"(watermarks {policy.low_watermark:g}/{policy.high_watermark:g}, "
        f"sustain {policy.sustain_rounds} rounds, "
        f"round cap {policy.max_session_migrations_per_round}, "
        f"pause budget {policy.pause_slack_fraction:g}x slack)"
    )
    return title + "\n" + _align([header] + rows)


def migration_to_dict(result: MigrationResult) -> dict:
    """A proactive-reconfiguration comparison as a JSON-serialisable dict
    (the ``BENCH_migration.json`` payload shape)."""
    policy = result.plan.policy

    def _mode(report: SimulationReport) -> dict:
        payload = report_to_dict(report)
        payload.update(
            {
                "sessions_opened": report.sessions_opened,
                "sessions_disrupted": report.sessions_disrupted,
                "sessions_recovered": report.sessions_recovered,
                "sessions_killed": report.sessions_killed,
                "session_survival_rate": report.session_survival_rate,
                "sessions_migrated": report.sessions_migrated,
                "migrations_aborted_on_slack": (
                    report.migrations_aborted_on_slack
                ),
                "migration_paused_stream_s": report.migration_paused_stream_s,
                "migration_probe_messages": report.migration_probe_messages,
            }
        )
        return payload

    return {
        "plan": {
            "period_s": result.plan.period_s,
            "ewma_alpha": policy.ewma_alpha,
            "high_watermark": policy.high_watermark,
            "low_watermark": policy.low_watermark,
            "sustain_rounds": policy.sustain_rounds,
            "min_admission_pressure": policy.min_admission_pressure,
            "max_session_migrations_per_round": (
                policy.max_session_migrations_per_round
            ),
            "candidate_sample": policy.candidate_sample,
            "state_kb_per_unit": policy.state_kb_per_unit,
            "transfer_kbps": policy.transfer_kbps,
            "pause_slack_fraction": policy.pause_slack_fraction,
        },
        "faults": {
            "node_fail_probability": result.faults.node_fail_probability,
            "link_fail_probability": result.faults.link_fail_probability,
            "period_s": result.faults.period_s,
        },
        "recover_only": _mode(result.recover_only),
        "proactive": _mode(result.proactive),
    }


def format_population_table(result: PopulationResult) -> str:
    """Render the population sweep: one row per scenario × multiplier."""
    header = [
        "scenario",
        "load",
        "requests",
        "success (%)",
        "p50 setup (ms)",
        "p99 setup (ms)",
        "admission pressure (%)",
        "peak sessions",
        "peak queue",
    ]
    rows = []
    for scenario in result.scenarios:
        for multiplier, report in scenario.points:
            rows.append(
                [
                    scenario.name,
                    f"{multiplier:g}x",
                    str(report.total_requests),
                    f"{100.0 * report.success_rate:.1f}",
                    "-"
                    if report.p50_setup_latency_ms is None
                    else f"{report.p50_setup_latency_ms:.1f}",
                    "-"
                    if report.p99_setup_latency_ms is None
                    else f"{report.p99_setup_latency_ms:.1f}",
                    f"{100.0 * report.admission_pressure:.1f}",
                    str(report.peak_open_sessions),
                    str(report.peak_transient_reservations),
                ]
            )
    title = "Population-scale workloads: SLO summary by scenario and load"
    return title + "\n" + _align([header] + rows)


def population_to_dict(result: PopulationResult) -> dict:
    """A population sweep as a JSON-serialisable dict (the
    ``BENCH_population.json`` payload shape)."""
    scenarios = {}
    for scenario in result.scenarios:
        profile = scenario.profile
        scenarios[scenario.name] = {
            "profile": {
                "mean_active_users": profile.mean_active_users,
                "requests_per_user_per_min": profile.requests_per_user_per_min,
                "distribution": profile.distribution,
                "user_sampling_window_s": profile.user_sampling_window_s,
                "diurnal": profile.diurnal is not None,
                "events": len(profile.events),
            },
            "loads": {
                f"{multiplier:g}x": report_to_dict(report)
                for multiplier, report in scenario.points
            },
        }
    return {"scenarios": scenarios}


def format_report_summary(reports: Sequence[SimulationReport]) -> str:
    """One line per algorithm: the whole-run summary comparison."""
    header = [
        "algorithm",
        "requests",
        "success (%)",
        "probes/min",
        "state msgs/min",
        "overhead/min",
        "mean phi",
    ]
    rows = []
    for report in reports:
        rows.append(
            [
                report.algorithm,
                str(report.total_requests),
                f"{100.0 * report.success_rate:.1f}",
                f"{report.probe_messages_per_min:.0f}",
                f"{report.state_messages_per_min:.0f}",
                f"{report.overhead_per_min:.0f}",
                "-" if report.mean_phi is None else f"{report.mean_phi:.2f}",
            ]
        )
    return _align([header] + rows)


def figure_to_csv(result: FigureResult) -> str:
    """The figure's series as CSV: one row per x, one column per series.

    Missing points (a series without that x) are empty cells.  Y values
    are raw fractions/values — no percent scaling — so downstream plotting
    owns the formatting.
    """
    labels = list(result.series)
    xs: List[float] = []
    for series in result.series.values():
        for x, _y in series.points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    lines = [",".join([_csv_cell(result.x_label)] + [_csv_cell(l) for l in labels])]
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            lookup = dict(result.series[label].points)
            y = lookup.get(x)
            row.append("" if y is None else f"{y:.6g}")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def fig8_to_csv(result: Fig8Result) -> str:
    """An adaptability time series as CSV."""
    lines = ["time_s,load_reqs_per_min,success_rate,probing_ratio"]
    for sample in result.samples:
        ratio = "" if sample.probing_ratio is None else f"{sample.probing_ratio:.3f}"
        lines.append(
            f"{sample.time:g},{result.schedule.rate_at(sample.time):g},"
            f"{sample.success_rate:.6g},{ratio}"
        )
    return "\n".join(lines) + "\n"


def report_to_dict(report: SimulationReport) -> dict:
    """A simulation report as a JSON-serialisable dict."""
    return {
        "algorithm": report.algorithm,
        "duration_s": report.duration_s,
        "total_requests": report.total_requests,
        "successes": report.successes,
        "success_rate": report.success_rate,
        "probe_messages": report.probe_messages,
        "setup_messages": report.setup_messages,
        "state_update_messages": report.state_update_messages,
        "aggregation_messages": report.aggregation_messages,
        "overhead_per_min": report.overhead_per_min,
        "mean_phi": report.mean_phi,
        "failure_reasons": dict(report.failure_reasons),
        "p50_setup_latency_ms": report.p50_setup_latency_ms,
        "p99_setup_latency_ms": report.p99_setup_latency_ms,
        "admission_pressure": report.admission_pressure,
        "peak_open_sessions": report.peak_open_sessions,
        "peak_transient_reservations": report.peak_transient_reservations,
        "window_samples": [
            {
                "time": sample.time,
                "success_rate": sample.success_rate,
                "requests": sample.requests,
                "probing_ratio": sample.probing_ratio,
                "p50_setup_latency_ms": sample.p50_setup_latency_ms,
                "p99_setup_latency_ms": sample.p99_setup_latency_ms,
                "admission_pressure": sample.admission_pressure,
                "open_sessions": sample.open_sessions,
                "transient_reservations": sample.transient_reservations,
            }
            for sample in report.window_samples
        ],
    }


def _csv_cell(text: str) -> str:
    if "," in text or '"' in text:
        return '"' + text.replace('"', '""') + '"'
    return text


def _align(rows: Sequence[Sequence[str]]) -> str:
    """Column-align rows of strings."""
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)
