"""Per-figure experiment harnesses (paper Section 4.2).

One function per evaluation figure.  Each returns plain data — series of
(x, y) points or sampled time series — that ``repro.experiments.reporting``
renders as the same rows the paper plots:

* :func:`run_fig5a` — success rate vs probing ratio at request rates
  {50, 100} req/min (Fig. 5(a));
* :func:`run_fig5b` — success rate vs probing ratio at QoS stringency
  {high, very high} (Fig. 5(b));
* :func:`run_fig6`  — success rate (6(a)) and overhead (6(b)) vs request
  rate {20..100} for Optimal/ACP/SP/RP/Random/Static at 400 nodes, α = 0.3;
* :func:`run_fig7`  — the same pair vs node count {200..600} at
  80 req/min (Fig. 7);
* :func:`run_fig8`  — success-rate time series under the dynamic workload
  40 → 80 → 60 req/min with a fixed α = 0.3 (8(a)) and with adaptive
  tuning toward a 90 % target (8(b)).

All harnesses accept an :class:`ExperimentScale` so benchmarks can run the
same code at reduced fidelity, and a ``workers`` count that fans the
figure's independent simulation points out over a process pool via
:func:`repro.experiments.runner.run_specs` — every point is
self-seeding, so the parallel results are identical to the serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import (
    ALGORITHMS,
    ExperimentScale,
    PAPER_SCALE,
    RunSpec,
    default_spec,
)
from repro.experiments.runner import run_specs
from repro.middleware.migration import LiveMigrationPolicy, MigrationPlan
from repro.middleware.session import RecoveryPolicy
from repro.simulation.failures import FaultPlan
from repro.simulation.metrics import SimulationReport, WindowSample
from repro.simulation.population import (
    DiurnalCurve,
    PopulationProfile,
    TrafficEvent,
)
from repro.simulation.workload import RateSchedule

#: x-axis defaults straight from the paper
DEFAULT_PROBING_RATIOS: Tuple[float, ...] = tuple(
    round(0.1 * step, 1) for step in range(1, 11)
)
DEFAULT_REQUEST_RATES: Tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_NODE_COUNTS: Tuple[int, ...] = (200, 300, 400, 500, 600)
#: overhead is only plotted for these in Figs. 6(b)/7(b)
OVERHEAD_ALGORITHMS: Tuple[str, ...] = ("Optimal", "ACP", "RP")

#: The evaluation's default QoS stringency.  "normal" (slack ~1.8 over the
#: expected critical-path cost) reproduces the paper's Fig. 6 success-rate
#: levels most closely; Fig. 5(b) tightens to "high"/"very_high".
DEFAULT_QOS = "normal"


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus (x, y) points."""

    label: str
    points: Tuple[Tuple[float, float], ...]

    def xs(self) -> Tuple[float, ...]:
        return tuple(x for x, _y in self.points)

    def ys(self) -> Tuple[float, ...]:
        return tuple(y for _x, y in self.points)


@dataclass(frozen=True)
class FigureResult:
    """A family of series keyed by label, plus run metadata."""

    figure: str
    x_label: str
    y_label: str
    series: Dict[str, Series]

    def series_labels(self) -> Tuple[str, ...]:
        return tuple(self.series)


# -- Fig. 5: probing ratio tuning effect ------------------------------------------


def _fig5_base(scale: ExperimentScale, seed: int, num_nodes: int) -> RunSpec:
    return default_spec(
        scale=scale, algorithm="ACP", num_nodes=num_nodes, seed=seed
    ).with_qos(DEFAULT_QOS)


def run_fig5a(
    scale: ExperimentScale = PAPER_SCALE,
    request_rates: Sequence[float] = (50.0, 100.0),
    probing_ratios: Sequence[float] = DEFAULT_PROBING_RATIOS,
    num_nodes: int = 400,
    seed: int = 0,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 5(a): success rate vs probing ratio under increasing workload."""
    base = _fig5_base(scale, seed, num_nodes)
    specs = [
        base.with_rate(rate).with_ratio(ratio)
        for rate in request_rates
        for ratio in probing_ratios
    ]
    reports = iter(run_specs(specs, workers=workers))
    series: Dict[str, Series] = {}
    for rate in request_rates:
        points = [
            (ratio, next(reports).success_rate) for ratio in probing_ratios
        ]
        label = f"{rate:g} reqs/min"
        series[label] = Series(label, tuple(points))
    return FigureResult("5a", "probing ratio", "success rate (%)", series)


def run_fig5b(
    scale: ExperimentScale = PAPER_SCALE,
    qos_levels: Sequence[str] = ("high", "very_high"),
    request_rate: float = 50.0,
    probing_ratios: Sequence[float] = DEFAULT_PROBING_RATIOS,
    num_nodes: int = 400,
    seed: int = 0,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 5(b): success rate vs probing ratio under QoS stringency."""
    base = default_spec(
        scale=scale, algorithm="ACP", num_nodes=num_nodes, seed=seed
    ).with_rate(request_rate)
    specs = [
        base.with_qos(level).with_ratio(ratio)
        for level in qos_levels
        for ratio in probing_ratios
    ]
    reports = iter(run_specs(specs, workers=workers))
    series: Dict[str, Series] = {}
    for level in qos_levels:
        points = [
            (ratio, next(reports).success_rate) for ratio in probing_ratios
        ]
        label = f"{level} QoS"
        series[label] = Series(label, tuple(points))
    return FigureResult("5b", "probing ratio", "success rate (%)", series)


# -- Fig. 6: efficiency ------------------------------------------------------------


def run_fig6(
    scale: ExperimentScale = PAPER_SCALE,
    request_rates: Sequence[float] = DEFAULT_REQUEST_RATES,
    algorithms: Sequence[str] = ALGORITHMS,
    probing_ratio: float = 0.3,
    num_nodes: int = 400,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Fig. 6: (a) success rate and (b) overhead vs request rate, 400 nodes."""
    base = (
        default_spec(scale=scale, num_nodes=num_nodes, seed=seed)
        .with_qos(DEFAULT_QOS)
        .with_ratio(probing_ratio)
    )
    specs = [
        base.with_algorithm(algorithm).with_rate(rate)
        for algorithm in algorithms
        for rate in request_rates
    ]
    reports = iter(run_specs(specs, workers=workers))
    success: Dict[str, Series] = {}
    overhead: Dict[str, Series] = {}
    for algorithm in algorithms:
        success_points = []
        overhead_points = []
        for rate in request_rates:
            report = next(reports)
            success_points.append((rate, report.success_rate))
            overhead_points.append((rate, report.overhead_per_min))
        success[algorithm] = Series(algorithm, tuple(success_points))
        if algorithm in OVERHEAD_ALGORITHMS:
            overhead[algorithm] = Series(algorithm, tuple(overhead_points))
    return (
        FigureResult("6a", "request rate (reqs/min)", "success rate (%)", success),
        FigureResult("6b", "request rate (reqs/min)", "overhead (msgs/min)", overhead),
    )


# -- Fig. 7: scalability -------------------------------------------------------------


def run_fig7(
    scale: ExperimentScale = PAPER_SCALE,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    algorithms: Sequence[str] = ALGORITHMS,
    request_rate: float = 80.0,
    probing_ratio: float = 0.3,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Fig. 7: (a) success rate and (b) overhead vs system size at
    80 req/min; candidate pools scale with the node count (the deployment
    places components per node)."""
    specs = [
        default_spec(
            scale=scale,
            algorithm=algorithm,
            num_nodes=node_count,
            rate_per_min=request_rate,
            seed=seed,
        )
        .with_qos(DEFAULT_QOS)
        .with_ratio(probing_ratio)
        for algorithm in algorithms
        for node_count in node_counts
    ]
    reports = iter(run_specs(specs, workers=workers))
    success: Dict[str, Series] = {}
    overhead: Dict[str, Series] = {}
    for algorithm in algorithms:
        success_points = []
        overhead_points = []
        for node_count in node_counts:
            report = next(reports)
            success_points.append((node_count, report.success_rate))
            overhead_points.append((node_count, report.overhead_per_min))
        success[algorithm] = Series(algorithm, tuple(success_points))
        if algorithm in OVERHEAD_ALGORITHMS:
            overhead[algorithm] = Series(algorithm, tuple(overhead_points))
    return (
        FigureResult("7a", "node number", "success rate (%)", success),
        FigureResult("7b", "node number", "overhead (msgs/min)", overhead),
    )


# -- Fig. 8: adaptability ----------------------------------------------------------


@dataclass(frozen=True)
class Fig8Result:
    """Time series for one adaptability run."""

    figure: str
    samples: Tuple[WindowSample, ...]
    schedule: RateSchedule
    target_success_rate: Optional[float]


def _dynamic_schedule(duration_s: float) -> RateSchedule:
    """The paper's dynamic workload: 40 → 80 (at 1/3) → 60 (at 2/3)."""
    return RateSchedule.steps(
        (0.0, 40.0),
        (duration_s / 3.0, 80.0),
        (2.0 * duration_s / 3.0, 60.0),
    )


def run_fig8(
    scale: ExperimentScale = PAPER_SCALE,
    target_success_rate: float = 0.75,
    fixed_ratio: float = 0.3,
    num_nodes: int = 400,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Tuple[Fig8Result, Fig8Result]:
    """Fig. 8: (a) fixed probing ratio vs (b) adaptive tuning under the
    dynamic workload.

    The paper targets a 90 % success rate; in its simulator the 40 and 60
    req/min phases saturate near 100 % and the 80 req/min phase near 90 %.
    Our calibration saturates lower (≈85 / 70 / 78 % for the three phases),
    so the default target is 75 % — the same *relative* position (just
    under the low-load saturation, above what a fixed α sustains at the
    load peak) that makes the paper's dynamic visible: α rises on the load
    step, success recovers to the target, α falls back when load drops.
    Pass ``target_success_rate=0.9`` to reproduce the paper's literal
    setting (the tuner then rails at α = 1 during the overload phase)."""
    duration = scale.adaptability_duration_s
    schedule = _dynamic_schedule(duration)
    base = default_spec(
        scale=scale, algorithm="ACP", num_nodes=num_nodes, seed=seed
    ).with_qos(DEFAULT_QOS)
    base = replace(
        base,
        schedule=schedule,
        duration_s=duration,
        target_success_rate=target_success_rate,
    )

    fixed_report, adaptive_report = run_specs(
        [base.with_ratio(fixed_ratio), replace(base, adaptive=True)],
        workers=workers,
    )
    return (
        Fig8Result("8a", fixed_report.window_samples, schedule, None),
        Fig8Result("8b", adaptive_report.window_samples, schedule, target_success_rate),
    )


# -- Fault tolerance: survival under the full fault cocktail ----------------------

#: The standard fault cocktail of the fault-tolerance experiment: node
#: churn and link flaps every minute, a lossy/laggy probe control plane,
#: and a lossy management plane for state updates.
DEFAULT_FAULT_PLAN = FaultPlan(
    node_fail_probability=0.05,
    node_recover_probability=0.5,
    link_fail_probability=0.02,
    link_recover_probability=0.5,
    probe_loss_probability=0.05,
    probe_delay_ms=2.0,
    max_probe_retries=2,
    state_update_loss_probability=0.10,
    period_s=60.0,
)


@dataclass(frozen=True)
class FaultsResult:
    """Two identical runs under one fault cocktail: the baseline kills
    disrupted sessions (the legacy behaviour); the resilient run
    re-composes them under a :class:`~repro.middleware.session.RecoveryPolicy`."""

    plan: FaultPlan
    baseline: SimulationReport
    resilient: SimulationReport


def run_faults(
    scale: ExperimentScale = PAPER_SCALE,
    num_nodes: int = 400,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    workers: Optional[int] = None,
) -> FaultsResult:
    """Fig. 8-style adaptability run under the full fault cocktail.

    Both runs see the identical system, workload, and fault schedule
    (same seeds); the only difference is the recovery policy — so any
    survival-rate gap is attributable to crash-triggered re-composition.
    """
    plan = plan if plan is not None else DEFAULT_FAULT_PLAN
    recovery = recovery if recovery is not None else RecoveryPolicy()
    duration = scale.adaptability_duration_s
    schedule = _dynamic_schedule(duration)
    base = default_spec(
        scale=scale, algorithm="ACP", num_nodes=num_nodes, seed=seed
    ).with_qos(DEFAULT_QOS)
    base = replace(base, schedule=schedule, duration_s=duration)
    baseline_report, resilient_report = run_specs(
        [base.with_faults(plan), base.with_faults(plan, recovery)],
        workers=workers,
    )
    return FaultsResult(plan, baseline_report, resilient_report)


# -- Population-scale workloads: overload, diurnal curves, flash crowds ------------

#: Load multipliers of the population sweep — the paper's regime (1×),
#: sustained heavy load (10×), and deep overload (100×).
DEFAULT_LOAD_MULTIPLIERS: Tuple[float, ...] = (1.0, 10.0, 100.0)

#: Scenario names the sweep knows how to build.
POPULATION_SCENARIOS: Tuple[str, ...] = ("steady", "diurnal", "flash_crowd")


def population_scenarios(
    duration_s: float,
    mean_active_users: float = 25.0,
    requests_per_user_per_min: float = 2.0,
    num_client_routers: int = 800,
) -> Dict[str, PopulationProfile]:
    """The standard scenario set at 1× load, compressed into the horizon.

    * ``steady`` — the population process alone (Poisson-resampled users,
      no modulation): the paper's flat regime, but rate now emerges from
      users × per-user rate;
    * ``diurnal`` — one full day/night cycle squeezed into the run
      (trough 0.3×, peak 1.5×), so every run sees a quiet phase, a climb,
      and a peak;
    * ``flash_crowd`` — steady traffic plus a 6× system-wide surge over
      the middle third and a 3× regional spike (first quarter of the
      client-router space) late in the run.
    """
    curve = DiurnalCurve(
        (
            (0.15 * duration_s, 0.3),
            (0.60 * duration_s, 1.5),
        ),
        period_s=duration_s,
    )
    flash = TrafficEvent.flash_crowd(
        start_s=0.35 * duration_s,
        peak_multiplier=6.0,
        ramp_s=0.05 * duration_s,
        plateau_s=0.15 * duration_s,
        decay_s=0.10 * duration_s,
    )
    spike = TrafficEvent.regional_spike(
        start_s=0.70 * duration_s,
        peak_multiplier=3.0,
        region=(0, max(1, num_client_routers // 4)),
        ramp_s=0.03 * duration_s,
        plateau_s=0.10 * duration_s,
        decay_s=0.05 * duration_s,
    )
    base = PopulationProfile(
        mean_active_users=mean_active_users,
        requests_per_user_per_min=requests_per_user_per_min,
    )
    return {
        "steady": base,
        "diurnal": replace(base, diurnal=curve),
        "flash_crowd": replace(base, events=(flash, spike)),
    }


@dataclass(frozen=True)
class PopulationScenario:
    """One scenario's sweep: the 1× profile plus per-multiplier reports."""

    name: str
    profile: PopulationProfile
    points: Tuple[Tuple[float, SimulationReport], ...]

    def report_at(self, multiplier: float) -> SimulationReport:
        for point_multiplier, report in self.points:
            if point_multiplier == multiplier:
                return report
        raise KeyError(f"no report at multiplier {multiplier}")


@dataclass(frozen=True)
class PopulationResult:
    """The population sweep: scenarios × load multipliers."""

    scenarios: Tuple[PopulationScenario, ...]

    def scenario(self, name: str) -> PopulationScenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario {name!r}")


def run_population(
    scale: ExperimentScale = PAPER_SCALE,
    scenarios: Sequence[str] = POPULATION_SCENARIOS,
    multipliers: Sequence[float] = DEFAULT_LOAD_MULTIPLIERS,
    mean_active_users: float = 25.0,
    requests_per_user_per_min: float = 2.0,
    algorithm: str = "ACP",
    num_nodes: int = 400,
    seed: int = 0,
    workers: Optional[int] = None,
) -> PopulationResult:
    """Sweep population scenarios across load multipliers.

    Every run shares the system seed and workload seed, so two points
    differ only in their population profile — success-rate and latency
    deltas are attributable to load alone.  The interesting regime is the
    top multiplier, where admission pressure and queue depth become
    visible in the per-window SLO series.
    """
    profiles = population_scenarios(
        scale.duration_s,
        mean_active_users=mean_active_users,
        requests_per_user_per_min=requests_per_user_per_min,
        num_client_routers=scale.num_routers,
    )
    unknown = [name for name in scenarios if name not in profiles]
    if unknown:
        raise ValueError(
            f"unknown scenarios {unknown}; pick from {sorted(profiles)}"
        )
    base = default_spec(
        scale=scale, algorithm=algorithm, num_nodes=num_nodes, seed=seed
    ).with_qos(DEFAULT_QOS)
    specs = [
        base.with_population(profiles[name].scaled(multiplier))
        for name in scenarios
        for multiplier in multipliers
    ]
    reports = iter(run_specs(specs, workers=workers))
    results = []
    for name in scenarios:
        points = tuple(
            (multiplier, next(reports)) for multiplier in multipliers
        )
        results.append(PopulationScenario(name, profiles[name], points))
    return PopulationResult(tuple(results))


# -- Proactive reconfiguration: live migration under sustained load drift ----------

#: The migration experiment's live-migration configuration.  The stock
#: :class:`LiveMigrationPolicy` is deliberately conservative (half the
#: QoS slack, strict 0.45 cool bar); under a diurnal peak it aborts
#: nearly every transfer, so the experiment plan loosens exactly the
#: knobs the cost model gates on: the full slack budget may be spent on
#: a pause, any node below 0.6 utilisation counts as a target, rounds
#: come every 30 s with a 16-session budget, and two sustained-hot
#: rounds (one simulated minute) trigger.  Costs stay fully accounted —
#: the aborted/paused/probe counters report whatever this plan spends.
DEFAULT_MIGRATION_PLAN = MigrationPlan(
    policy=LiveMigrationPolicy(
        low_watermark=0.6,
        sustain_rounds=2,
        max_session_migrations_per_round=16,
        candidate_sample=8,
        pause_slack_fraction=1.0,
    ),
    period_s=30.0,
)

#: Light fault cocktail for the migration experiment: enough churn that
#: the recovery machinery stays exercised on both arms, mild enough that
#: load drift — not crashes — dominates the outcome.
MIGRATION_FAULT_PLAN = FaultPlan(
    node_fail_probability=0.01,
    node_recover_probability=0.5,
    link_fail_probability=0.01,
    link_recover_probability=0.5,
    period_s=120.0,
)


@dataclass(frozen=True)
class MigrationResult:
    """Two identical runs under diurnal + regionally-skewed load and a
    light fault cocktail: ``recover_only`` reacts to faults but leaves
    sessions pinned to hot nodes; ``proactive`` adds the live-migration
    plan on top of the same recovery policy."""

    plan: MigrationPlan
    faults: FaultPlan
    recover_only: SimulationReport
    proactive: SimulationReport


def run_migration(
    scale: ExperimentScale = PAPER_SCALE,
    num_nodes: int = 400,
    seed: int = 0,
    load_multiplier: float = 0.75,
    spike_peak: float = 4.0,
    plan: Optional[MigrationPlan] = None,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    workers: Optional[int] = None,
) -> MigrationResult:
    """Recover-only vs proactive+recover under skewed diurnal load.

    The workload is the population engine's diurnal curve plus a regional
    flash-crowd spike (``spike_peak`` times the region's base rate),
    scaled by ``load_multiplier`` so the peak drives a *subset* of nodes
    over the migration high watermark while the rest stay cool enough to
    receive sessions — deep uniform overload leaves no targets and the
    plan degrades to recover-only.  Both runs see the identical system,
    workload, and fault schedule (same seeds); the only difference is
    the migration plan — so any gap in success rate or setup latency is
    attributable to proactive reconfiguration, and its cost
    (paused-stream time, slack aborts) is reported alongside.
    """
    plan = plan if plan is not None else DEFAULT_MIGRATION_PLAN
    faults = faults if faults is not None else MIGRATION_FAULT_PLAN
    recovery = recovery if recovery is not None else RecoveryPolicy()
    profiles = population_scenarios(
        scale.duration_s, num_client_routers=scale.num_routers
    )
    skewed = replace(
        profiles["diurnal"],
        events=(
            TrafficEvent.regional_spike(
                start_s=0.45 * scale.duration_s,
                peak_multiplier=spike_peak,
                region=(0, max(1, scale.num_routers // 4)),
                ramp_s=0.05 * scale.duration_s,
                plateau_s=0.25 * scale.duration_s,
                decay_s=0.05 * scale.duration_s,
            ),
        ),
    ).scaled(load_multiplier)
    base = (
        default_spec(scale=scale, algorithm="ACP", num_nodes=num_nodes, seed=seed)
        .with_qos(DEFAULT_QOS)
        .with_population(skewed)
        .with_faults(faults, recovery)
    )
    recover_only_report, proactive_report = run_specs(
        [base, base.with_migration(plan)], workers=workers
    )
    return MigrationResult(plan, faults, recover_only_report, proactive_report)
