"""Experiment harnesses regenerating every figure of the paper's evaluation."""

from repro.experiments.config import (
    ALGORITHMS,
    EVALUATION_DEPLOYMENT,
    ExperimentScale,
    FAST_SCALE,
    PAPER_SCALE,
    RunSpec,
    default_spec,
)
from repro.experiments.figures import (
    DEFAULT_NODE_COUNTS,
    DEFAULT_PROBING_RATIOS,
    DEFAULT_REQUEST_RATES,
    Fig8Result,
    FigureResult,
    Series,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.reporting import (
    fig8_to_csv,
    figure_to_csv,
    format_fig8_table,
    format_figure_table,
    format_report_summary,
    report_to_dict,
)
from repro.experiments.runner import (
    build_simulator,
    make_composer,
    run_comparison,
    run_spec,
)

__all__ = [
    "ALGORITHMS",
    "EVALUATION_DEPLOYMENT",
    "ExperimentScale",
    "PAPER_SCALE",
    "FAST_SCALE",
    "RunSpec",
    "default_spec",
    "FigureResult",
    "Fig8Result",
    "Series",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "DEFAULT_PROBING_RATIOS",
    "DEFAULT_REQUEST_RATES",
    "DEFAULT_NODE_COUNTS",
    "format_figure_table",
    "format_fig8_table",
    "figure_to_csv",
    "fig8_to_csv",
    "report_to_dict",
    "format_report_summary",
    "run_spec",
    "run_comparison",
    "build_simulator",
    "make_composer",
]
