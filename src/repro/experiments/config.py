"""Experiment configuration: run specs and scales.

A :class:`RunSpec` pins down everything one simulation run needs — the
system, the workload, the algorithm, and the horizon — so that experiment
harnesses and benchmarks share one entry point
(:func:`repro.experiments.runner.run_spec`).

Two stock :class:`ExperimentScale` presets trade fidelity for wall-clock:

* ``PAPER_SCALE`` — Section 4.1's setup: 3200 routers, 100-minute runs
  (150 for the adaptability experiment), 5-minute sampling.
* ``FAST_SCALE``  — the same system shrunk for CI and pytest-benchmark
  runs: fewer routers, 20-minute horizons.  All qualitative shapes
  (orderings, crossovers, saturation) survive the shrink; absolute rates
  shift slightly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.discovery.deployment import DeploymentProfile
from repro.middleware.migration import MigrationPlan
from repro.middleware.session import RecoveryPolicy
from repro.simulation.failures import FaultPlan
from repro.simulation.population import PopulationProfile
from repro.simulation.system import SystemConfig
from repro.simulation.workload import QOS_LEVELS, QoSLevel, RateSchedule

#: Algorithms of the paper's evaluation, in its plotting order.
ALGORITHMS: Tuple[str, ...] = ("Optimal", "ACP", "SP", "RP", "Random", "Static")

#: Deployment used throughout the evaluation: one or two components per
#: node, giving candidate pools (k ≈ N·1.5/80) in the regime the paper's
#: exhaustive-search overhead figures imply.
EVALUATION_DEPLOYMENT = DeploymentProfile(components_per_node=(1, 2))


@dataclass(frozen=True)
class ExperimentScale:
    """Global knobs that scale a whole experiment up or down."""

    name: str
    num_routers: int
    duration_s: float
    adaptability_duration_s: float
    sampling_period_s: float
    optimal_max_explored: int

    def system(self, num_nodes: int = 400, seed: int = 0) -> SystemConfig:
        return SystemConfig(
            num_routers=self.num_routers,
            num_nodes=num_nodes,
            deployment=EVALUATION_DEPLOYMENT,
            seed=seed,
        )


PAPER_SCALE = ExperimentScale(
    name="paper",
    num_routers=3200,
    duration_s=6000.0,  # 100 minutes
    adaptability_duration_s=9000.0,  # 150 minutes
    sampling_period_s=300.0,  # 5 minutes
    optimal_max_explored=100_000,
)

FAST_SCALE = ExperimentScale(
    name="fast",
    num_routers=800,
    duration_s=1200.0,  # 20 minutes
    adaptability_duration_s=2700.0,  # 45 minutes
    sampling_period_s=150.0,
    optimal_max_explored=30_000,
)


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully specified."""

    algorithm: str
    system: SystemConfig
    schedule: RateSchedule
    qos_level: QoSLevel = QOS_LEVELS["normal"]
    probing_ratio: float = 0.3
    duration_s: float = 6000.0
    sampling_period_s: float = 300.0
    workload_seed: int = 1000
    #: attach the adaptive probing-ratio tuner (ACP only)
    adaptive: bool = False
    target_success_rate: float = 0.9
    optimal_max_explored: int = 100_000
    #: fault cocktail injected during the run (None: fault-free)
    faults: Optional[FaultPlan] = None
    #: crash-triggered session re-composition (None: faults kill sessions)
    recovery: Optional[RecoveryPolicy] = None
    #: user-population arrival process; overrides ``schedule`` when set
    #: (the population draws from its own workload_seed + 43 stream)
    population: Optional[PopulationProfile] = None
    #: proactive live session migration (None or the zero plan: off —
    #: the planner draws from its own workload_seed + 46 stream)
    migration: Optional[MigrationPlan] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; pick one of {ALGORITHMS}"
            )
        if self.adaptive and self.algorithm != "ACP":
            raise ValueError("only ACP supports adaptive probing-ratio tuning")

    def with_algorithm(self, algorithm: str) -> "RunSpec":
        return replace(self, algorithm=algorithm, adaptive=False)

    def with_rate(self, rate_per_min: float) -> "RunSpec":
        return replace(self, schedule=RateSchedule.constant(rate_per_min))

    def with_ratio(self, probing_ratio: float) -> "RunSpec":
        return replace(self, probing_ratio=probing_ratio)

    def with_qos(self, level: Union[str, QoSLevel]) -> "RunSpec":
        if isinstance(level, str):
            level = QOS_LEVELS[level]
        return replace(self, qos_level=level)

    def with_faults(
        self,
        faults: Optional[FaultPlan],
        recovery: Optional[RecoveryPolicy] = None,
    ) -> "RunSpec":
        return replace(self, faults=faults, recovery=recovery)

    def with_population(
        self, population: Optional[PopulationProfile]
    ) -> "RunSpec":
        return replace(self, population=population)

    def with_migration(self, migration: Optional[MigrationPlan]) -> "RunSpec":
        return replace(self, migration=migration)


def default_spec(
    scale: ExperimentScale = PAPER_SCALE,
    algorithm: str = "ACP",
    num_nodes: int = 400,
    rate_per_min: float = 80.0,
    seed: int = 0,
) -> RunSpec:
    """The evaluation's common starting point: 400 nodes, α = 0.3."""
    return RunSpec(
        algorithm=algorithm,
        system=scale.system(num_nodes=num_nodes, seed=seed),
        schedule=RateSchedule.constant(rate_per_min),
        duration_s=scale.duration_s,
        sampling_period_s=scale.sampling_period_s,
        workload_seed=seed + 1000,
        optimal_max_explored=scale.optimal_max_explored,
    )
