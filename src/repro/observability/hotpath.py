"""The ``@hot_path`` complexity-budget marker.

DEVELOPMENT.md's complexity-budget table declares an asymptotic budget
for every subsystem that runs per composition, per churn event, or per
state update.  ``@hot_path(budget="O(P × k)")`` attaches that declared
budget to the function that implements it, so the static analyser
(``repro.analysis.hotpath``, rules HOT501–HOT506) can flag O(N)-shaped
work — full materialisations, dense N×N allocations, unguarded
formatting — inside the marked function *and* its statically-resolved
callees.

The marker is deliberately free at runtime: it stores the budget string
on the function object and returns the function unchanged — no wrapper,
no extra frame, nothing for the disabled-trace overhead guard to notice.
It lives in ``observability`` (the universal sidecar) because runtime
packages may not import the ``analysis`` tool package.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: attribute the marker stores the declared budget under
BUDGET_ATTRIBUTE = "__hot_path_budget__"


def hot_path(budget: str) -> Callable[[F], F]:
    """Declare the complexity budget of a hot-path function.

    ``budget`` is the declared asymptotic cost, written as an ``O(...)``
    expression in the vocabulary of DEVELOPMENT.md's complexity-budget
    table (``N`` overlay nodes, ``P`` probes per level, ``k`` the prune
    bound, ``C`` a cache bound, ...).  The linter rejects markers whose
    budget is not an ``O(...)`` string (HOT506).
    """

    def mark(func: F) -> F:
        setattr(func, BUDGET_ATTRIBUTE, budget)
        return func

    return mark


def declared_budget(func: Callable[..., Any]) -> str | None:
    """The budget a callable declared via :func:`hot_path`, if any."""
    value = getattr(func, BUDGET_ATTRIBUTE, None)
    return value if isinstance(value, str) else None
