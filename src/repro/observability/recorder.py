"""The recorder protocol: structured trace events plus a metrics registry.

Every layer of the pipeline holds a :class:`Recorder` and reports what it
does through it — probe wavefront progress, fastscore cache hits and
rebuilds, router tree drops under churn, tuner decisions, session
lifecycle, failure injections.  Two implementations:

* :class:`NullRecorder` — the default everywhere.  ``enabled`` is False
  and every method is a no-op, so instrumented call sites guard their
  work with one attribute check and the disabled path costs a branch
  (``benchmarks/test_observability_overhead.py`` bounds it at ≤ 5 % of a
  composition).  The module-level :data:`NULL_RECORDER` singleton is
  shared so identity checks (``recorder is NULL_RECORDER``) can tell
  "nobody asked for tracing" apart from a caller-supplied recorder.
* :class:`TraceRecorder` — captures :class:`TraceEvent` records in memory
  and owns a :class:`~repro.observability.registry.MetricsRegistry`.
  Event timestamps come from a bindable clock (the simulator binds its
  event scheduler, so traces carry *simulated* seconds); phase timers
  measure *wall-clock* seconds, since their job is profiling the code.

Recorders hold only plain containers, so a fresh ``TraceRecorder``
travels through ``SystemConfig`` into spawned experiment workers; traces
are in-memory per process and exported explicitly
(:func:`repro.observability.export.write_jsonl`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.observability.registry import MetricsRegistry

#: The process wall clock, re-exported so instrumentation outside this
#: module imports it from here rather than from :mod:`time` — repro-lint
#: (DET102) funnels every wall-clock read through this one module, which
#: keeps profiling timers auditable and everything else on simulated time.
wall_clock = perf_counter


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record: a kind, a timestamp, flat fields."""

    time: float
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)


class Recorder:
    """Interface every instrumented layer records through.

    Call sites must treat :attr:`enabled` as the master switch: skip any
    non-trivial argument construction when it is False so the disabled
    path stays free.  (The methods are no-op safe either way.)
    """

    #: False on the null recorder — hot paths branch on this.
    enabled: bool = False

    def emit(
        self, kind: str, time: Optional[float] = None, **fields: object
    ) -> None:
        """Record one structured event (timestamp defaults to the clock)."""

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter."""

    def set_gauge(self, name: str, value: float) -> None:
        """Set a named gauge."""

    def observe(self, name: str, value: float) -> None:
        """Observe one value into a named histogram."""

    def phase(self, name: str) -> "_PhaseTimer":
        """Context manager timing a named phase into ``phase.<name>``."""
        return _NULL_PHASE

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Source of event timestamps (e.g. the simulation clock)."""


class _NullPhase:
    """Shared no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _PhaseTimer:
    """Times one ``with`` block and observes the wall-clock duration."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.histogram(self._name).observe(perf_counter() - self._start)


class NullRecorder(Recorder):
    """The zero-overhead default: records nothing, answers instantly."""

    enabled = False

    def __repr__(self) -> str:
        return "NullRecorder()"


#: Shared do-nothing recorder; the default for every instrumented layer.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """In-memory structured trace capture plus a metrics registry."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._events: List[TraceEvent] = []
        self._clock = clock
        self.registry = MetricsRegistry()

    # -- event capture ------------------------------------------------------

    def emit(
        self, kind: str, time: Optional[float] = None, **fields: object
    ) -> None:
        if time is None:
            time = self._clock() if self._clock is not None else 0.0
        self._events.append(TraceEvent(time, kind, fields))

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def events_of(self, kind: str) -> Tuple[TraceEvent, ...]:
        return tuple(event for event in self._events if event.kind == kind)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- metrics ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def phase(self, name: str) -> _PhaseTimer:
        return _PhaseTimer(self.registry, "phase." + name)

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self._events)})"
