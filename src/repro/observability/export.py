"""JSONL trace export and the ``trace-summary`` report.

A trace file is one JSON object per line.  Event records carry ``t``
(simulated seconds), ``kind``, and the event's flat fields; the final
record has kind ``trace.registry`` and holds the metrics registry
snapshot (counters, gauges, histograms — including the wall-clock phase
timers).  The format is append-friendly and greppable; ``jq`` and pandas
both read it directly.

:func:`summarize_trace` folds a trace back into the figures the paper's
evaluation plots — the per-window success-rate series μ(t) and the α(t)
tuner series — plus cache hit rates and per-phase timings, and
:func:`format_trace_summary` renders that as the ``trace-summary`` CLI
output.  A traced run reconstructs the window and tuner series exactly
(``tests/test_observability.py`` asserts equality against
``SimulationReport`` and ``TunerSample``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.observability.recorder import TraceRecorder

#: kind of the trailing registry-snapshot record in a JSONL trace
REGISTRY_KIND = "trace.registry"


def write_jsonl(path: str, recorder: TraceRecorder) -> int:
    """Write the recorder's events plus a registry snapshot; returns the
    number of records written."""
    records = 0
    with open(path, "w", encoding="utf-8") as sink:
        for event in recorder.events:
            record = {"t": event.time, "kind": event.kind}
            record.update(event.fields)
            sink.write(json.dumps(record) + "\n")
            records += 1
        snapshot = recorder.registry.snapshot()
        snapshot["kind"] = REGISTRY_KIND
        sink.write(json.dumps(snapshot) + "\n")
        records += 1
    return records


def read_trace(path: str) -> List[Dict]:
    """Read a JSONL trace back into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _rate(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


def summarize_trace(records: Sequence[Dict]) -> Dict:
    """Fold trace records into the summary ``trace-summary`` prints."""
    kinds: Dict[str, int] = {}
    windows = []
    tuner = []
    failure_reasons: Dict[str, int] = {}
    crashes = recoveries = 0
    sessions_opened = sessions_closed = sessions_killed = admission_races = 0
    composes = commits = 0
    registry: Optional[Dict] = None
    for record in records:
        kind = record.get("kind", "?")
        if kind == REGISTRY_KIND:
            registry = record
            continue
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "window.close":
            windows.append(record)
        elif kind == "tuner.decision":
            tuner.append(record)
        elif kind == "probe.start":
            composes += 1
        elif kind == "probe.commit":
            commits += 1
        elif kind == "probe.fail":
            reason = record.get("reason", "?")
            failure_reasons[reason] = failure_reasons.get(reason, 0) + 1
        elif kind == "failure.crash":
            crashes += 1
        elif kind == "failure.recover":
            recoveries += 1
        elif kind == "session.open":
            sessions_opened += 1
        elif kind == "session.close":
            sessions_closed += 1
        elif kind == "session.killed":
            sessions_killed += int(record.get("count", 0))
        elif kind == "session.admission_race":
            admission_races += 1

    counters = registry.get("counters", {}) if registry else {}
    cache_rates = {
        "fastscore.table": _rate(
            counters.get("fastscore.table_hit", 0),
            counters.get("fastscore.table_build", 0),
        ),
        "fastscore.stale_qos": _rate(
            counters.get("fastscore.stale_hit", 0),
            counters.get("fastscore.stale_refresh", 0),
        ),
        "fastscore.bandwidth_row": _rate(
            counters.get("fastscore.bw_row_hit", 0),
            counters.get("fastscore.bw_row_build", 0),
        ),
    }
    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "windows": windows,
        "tuner": tuner,
        "composes": composes,
        "commits": commits,
        "failure_reasons": dict(sorted(failure_reasons.items())),
        "crashes": crashes,
        "recoveries": recoveries,
        "sessions": {
            "opened": sessions_opened,
            "closed": sessions_closed,
            "killed": sessions_killed,
            "admission_races": admission_races,
        },
        "cache_hit_rates": cache_rates,
        "registry": registry,
    }


def format_trace_summary(summary: Dict) -> str:
    """Render :func:`summarize_trace` output as the CLI report."""
    lines = [f"trace: {summary['events']} events"]
    lines.append("")
    lines.append("event counts")
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:<24} {count}")

    composes = summary["composes"]
    if composes:
        lines.append("")
        rate = summary["commits"] / composes
        lines.append(
            f"compositions: {composes} attempted, {summary['commits']} "
            f"committed ({rate:.1%} success)"
        )
        for reason, count in summary["failure_reasons"].items():
            lines.append(f"  fail {reason:<22} {count}")

    sessions = summary["sessions"]
    if sessions["opened"]:
        lines.append("")
        lines.append(
            f"sessions: {sessions['opened']} opened, {sessions['closed']} "
            f"closed, {sessions['killed']} killed by crashes, "
            f"{sessions['admission_races']} admission races"
        )
    if summary["crashes"] or summary["recoveries"]:
        lines.append(
            f"churn: {summary['crashes']} crashes, "
            f"{summary['recoveries']} recoveries"
        )

    if summary["windows"]:
        lines.append("")
        lines.append("sampling windows  t(min)  success  requests  ratio")
        for window in summary["windows"]:
            ratio = window.get("probing_ratio")
            lines.append(
                f"  {window['t'] / 60.0:15.1f}  "
                f"{window['success_rate']:7.3f}  "
                f"{window['requests']:8d}  "
                + (f"{ratio:5.2f}" if ratio is not None else "    -")
            )

    if summary["tuner"]:
        lines.append("")
        lines.append(
            "tuner decisions  t(min)  alpha  measured  predicted  -> next"
        )
        for decision in summary["tuner"]:
            predicted = decision.get("predicted")
            flag = " R" if decision.get("reprofiled") else ""
            lines.append(
                f"  {decision['t'] / 60.0:14.1f}  "
                f"{decision['ratio']:5.2f}  "
                f"{decision['measured']:8.3f}  "
                + (f"{predicted:9.3f}" if predicted is not None else "        -")
                + f"  {decision['new_ratio']:7.2f}{flag}"
            )

    rates = {
        name: rate
        for name, rate in summary["cache_hit_rates"].items()
        if rate is not None
    }
    if rates:
        lines.append("")
        lines.append("cache hit rates")
        for name, rate in rates.items():
            lines.append(f"  {name:<26} {rate:.1%}")

    registry = summary.get("registry")
    histograms = registry.get("histograms", {}) if registry else {}
    phases = {
        name: stats
        for name, stats in histograms.items()
        if name.startswith("phase.")
    }
    if phases:
        lines.append("")
        lines.append("phase timings (wall-clock)    count      mean       max")
        for name, stats in phases.items():
            lines.append(
                f"  {name[len('phase.'):]:<24} {stats['count']:9d} "
                f"{stats['mean'] * 1e3:8.3f}ms {stats['max'] * 1e3:8.3f}ms"
            )
    return "\n".join(lines)
