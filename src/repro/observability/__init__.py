"""Observability: structured tracing and metrics for the whole pipeline.

The paper's evaluation is a visibility exercise — success rate μ(t),
probing overhead in messages per minute, the α(t) tuner trace of Fig. 8 —
and this package is how the reproduction sees inside a run.  Attach a
:class:`TraceRecorder` (``SystemConfig(recorder=...)`` or the simulator's
``recorder`` argument) and every layer reports structured events:

==========================  ==================================================
event kind                  emitted by
==========================  ==================================================
``probe.start/level/fail``  the probing wavefront (per request / per level)
``probe.commit``            deputy final selection (φ, message accounting)
``fastscore.table_rebuild`` candidate-table cache rebuilds
``router.churn``            per-source tree drops/patches under churn
``tuner.decision``          predicted-vs-measured rates, reprofiles, new α
``window.close``            sampling-period μ(t) samples
``session.*``               open / close / killed / admission races
``failure.crash/recover``   failure injection
``sim.start/end``           run lifecycle
==========================  ==================================================

The default everywhere is the :data:`NULL_RECORDER` singleton, whose cost
is one attribute check per instrumentation site —
``benchmarks/test_observability_overhead.py`` bounds the disabled path at
≤ 5 % of a composition.  Traces export to JSONL (one event per line plus
a final registry snapshot) and ``repro-experiments trace-summary`` folds
a file back into the evaluation's series.
"""

from repro.observability.hotpath import declared_budget, hot_path
from repro.observability.export import (
    REGISTRY_KIND,
    format_trace_summary,
    read_trace,
    summarize_trace,
    write_jsonl,
)
from repro.observability.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceEvent,
    TraceRecorder,
)
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "REGISTRY_KIND",
    "TraceEvent",
    "TraceRecorder",
    "declared_budget",
    "format_trace_summary",
    "hot_path",
    "read_trace",
    "summarize_trace",
    "write_jsonl",
]
