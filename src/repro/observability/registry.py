"""Counter / gauge / histogram registry behind the trace recorder.

The registry is deliberately minimal: metrics are named scalars updated on
the hot path, so every instrument is a plain attribute update — no labels,
no lock, no allocation per observation.  Histograms keep streaming
statistics (count, total, min, max) rather than samples; the per-phase
timers around the compose hot path observe wall-clock seconds into them.

The whole registry serialises to one JSON-friendly dict via
:meth:`MetricsRegistry.snapshot`, which the JSONL trace exporter appends
as the final ``trace.registry`` record.
"""

from __future__ import annotations

import math
from typing import Dict


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution summary of a named observation."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms for one recorder."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serialisable view of every instrument's current state."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "mean": histogram.mean,
                    "min": histogram.min if histogram.count else 0.0,
                    "max": histogram.max if histogram.count else 0.0,
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }
