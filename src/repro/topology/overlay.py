"""Overlay mesh of stream processing nodes.

Section 2.1: "For failure resilience, we connect distributed nodes using
application-level overlay links (e_i) into an overlay mesh."  Section 4.1:
"The simulator then randomly selects N ∈ [200, 500] nodes as stream
processing nodes, which are connected into an overlay mesh.  Each node of
the mesh has K neighbors."

:class:`OverlayLink` is the unit of bandwidth state: it carries a static
QoS vector (delay derived from the IP-layer shortest path between its
endpoints, a small loss rate) and a mutable available-bandwidth figure.
All bandwidth mutation goes through :meth:`OverlayLink.allocate_bandwidth`
and :meth:`OverlayLink.release_bandwidth` so observers — the hierarchical
state manager — can watch for threshold crossings.

:class:`OverlayNetwork` owns the nodes and links and answers adjacency
queries; end-to-end *virtual links* (overlay paths) live in
``repro.topology.routing``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.model.node import Node
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSSchema, QoSVector
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.topology.ip_network import IPNetwork

#: Signature of overlay link change listeners: listener(link) after change.
LinkListener = Callable[["OverlayLink"], None]


class InsufficientBandwidthError(RuntimeError):
    """Raised when an allocation would drive a link's residual negative."""


class OverlayLink:
    """An application-level overlay link between two stream nodes."""

    __slots__ = (
        "link_id",
        "node_a",
        "node_b",
        "delay_ms",
        "loss_rate",
        "capacity_kbps",
        "_allocated_kbps",
        "_listeners",
        "_qos",
    )

    def __init__(
        self,
        link_id: int,
        node_a: int,
        node_b: int,
        delay_ms: float,
        loss_rate: float,
        capacity_kbps: float,
        qos_schema: QoSSchema = DEFAULT_QOS_SCHEMA,
    ) -> None:
        if node_a == node_b:
            raise ValueError(f"overlay link endpoints must differ, got {node_a}")
        if capacity_kbps <= 0.0:
            raise ValueError(f"capacity must be positive, got {capacity_kbps}")
        self.link_id = link_id
        self.node_a = min(node_a, node_b)
        self.node_b = max(node_a, node_b)
        self.delay_ms = float(delay_ms)
        self.loss_rate = float(loss_rate)
        self.capacity_kbps = float(capacity_kbps)
        self._allocated_kbps = 0.0
        self._listeners: List[LinkListener] = []
        self._qos = QoSVector(qos_schema, [self.delay_ms, self.loss_rate])

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.node_a, self.node_b)

    @property
    def qos(self) -> QoSVector:
        """Static link QoS (delay, loss)."""
        return self._qos

    @property
    def allocated_kbps(self) -> float:
        return self._allocated_kbps

    @property
    def available_kbps(self) -> float:
        """Current bandwidth availability ``ba`` of the link."""
        return self.capacity_kbps - self._allocated_kbps

    def other_end(self, node_id: int) -> int:
        if node_id == self.node_a:
            return self.node_b
        if node_id == self.node_b:
            return self.node_a
        raise ValueError(f"node {node_id} is not an endpoint of {self!r}")

    def can_allocate(self, kbps: float) -> bool:
        return self.available_kbps >= kbps - 1e-9

    def allocate_bandwidth(self, kbps: float) -> None:
        if kbps < 0.0:
            raise ValueError(f"negative bandwidth {kbps}")
        if not self.can_allocate(kbps):
            raise InsufficientBandwidthError(
                f"{self!r}: cannot allocate {kbps} kbps; "
                f"available {self.available_kbps} kbps"
            )
        self._allocated_kbps += kbps
        self._notify()

    def release_bandwidth(self, kbps: float) -> None:
        if kbps < 0.0:
            raise ValueError(f"negative bandwidth {kbps}")
        if kbps > self._allocated_kbps + 1e-9:
            raise ValueError(
                f"{self!r}: releasing {kbps} kbps exceeds allocated "
                f"{self._allocated_kbps} kbps"
            )
        self._allocated_kbps = max(0.0, self._allocated_kbps - kbps)
        self._notify()

    def add_change_listener(self, listener: LinkListener) -> None:
        self._listeners.append(listener)

    def remove_change_listener(self, listener: LinkListener) -> None:
        """Unregister a bandwidth-change listener (no-op when absent).

        Without this, every observer ever attached — e.g. each fresh
        :class:`~repro.topology.routing.OverlayRouter` the differential
        tests build on a shared network — stays referenced and keeps being
        notified forever.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self)

    def __repr__(self) -> str:
        return (
            f"OverlayLink(e{self.link_id} v{self.node_a}<->v{self.node_b}, "
            f"{self.delay_ms:.1f}ms, {self.available_kbps:.0f}/"
            f"{self.capacity_kbps:.0f}kbps)"
        )


class OverlayNetwork:
    """The overlay mesh: stream processing nodes plus overlay links."""

    def __init__(self, nodes: Sequence[Node], links: Sequence[OverlayLink]) -> None:
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        for index, node in enumerate(self._nodes):
            if node.node_id != index:
                raise ValueError(
                    f"node ids must be dense 0..n-1; position {index} has "
                    f"id {node.node_id}"
                )
        self._links: Tuple[OverlayLink, ...] = tuple(links)
        self._by_pair: Dict[Tuple[int, int], OverlayLink] = {}
        adjacency: Dict[int, List[int]] = {n.node_id: [] for n in self._nodes}
        for index, link in enumerate(self._links):
            if link.link_id != index:
                raise ValueError(
                    f"link ids must be dense 0..m-1; position {index} has "
                    f"id {link.link_id}"
                )
            pair = link.endpoints
            if pair in self._by_pair:
                raise ValueError(f"duplicate overlay link between {pair}")
            self._by_pair[pair] = link
            adjacency[link.node_a].append(link.link_id)
            adjacency[link.node_b].append(link.link_id)
        self._adjacency = {k: tuple(v) for k, v in adjacency.items()}
        self._down_node_ids: set = set()
        for node in self._nodes:
            if not node.alive:
                self._down_node_ids.add(node.node_id)
            node.add_liveness_listener(self._on_liveness_change)

    def _on_liveness_change(self, node: Node) -> None:
        if node.alive:
            self._down_node_ids.discard(node.node_id)
        else:
            self._down_node_ids.add(node.node_id)

    def close(self) -> None:
        """Detach the liveness listeners registered in ``__init__``.

        Teardown hook for shard migration and test isolation: a network
        handed off or discarded must not stay subscribed to its nodes,
        or the nodes keep the dead network (and everything it references)
        alive and keep invoking it on every fail/recover.  Idempotent —
        :meth:`Node.remove_liveness_listener` is a no-op when absent.
        """
        for node in self._nodes:
            node.remove_liveness_listener(self._on_liveness_change)

    # -- accessors ---------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def down_node_ids(self) -> frozenset:
        """Ids of currently-crashed nodes (usually empty), maintained via
        liveness listeners so hot paths need not poll every node."""
        return frozenset(self._down_node_ids)

    @property
    def links(self) -> Tuple[OverlayLink, ...]:
        return self._links

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def link(self, link_id: int) -> OverlayLink:
        return self._links[link_id]

    def link_between(self, node_a: int, node_b: int) -> Optional[OverlayLink]:
        return self._by_pair.get((min(node_a, node_b), max(node_a, node_b)))

    def adjacent_links(self, node_id: int) -> Tuple[OverlayLink, ...]:
        return tuple(self._links[i] for i in self._adjacency[node_id])

    def neighbors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(
            self._links[i].other_end(node_id) for i in self._adjacency[node_id]
        )

    def path_available_bw(self, link_ids: Iterable[int]) -> float:
        """Bottleneck bandwidth of an overlay path (Section 2.1:
        ``ba_li = min(ba_e1, ..., ba_ek)``); ``inf`` for the empty
        (co-located) path."""
        available = float("inf")
        for link_id in link_ids:
            available = min(available, self._links[link_id].available_kbps)
        return available


def default_node_capacity_sampler(rng: random.Random) -> ResourceVector:
    """Default node capacity draw: CPU U(50, 100) units, memory U(256, 1024) MB.

    The paper only says capacities are "uniformly distributed within certain
    range based on the real-world measurements"; these ranges put tens of
    concurrent component instances on a node, matching the contention regime
    of the evaluation.
    """
    return ResourceVector(
        DEFAULT_RESOURCE_SCHEMA,
        [rng.uniform(50.0, 100.0), rng.uniform(256.0, 1024.0)],
    )


def _bridge_components(
    pairs: Set[Tuple[int, int]],
    num_nodes: int,
    rows_for: Callable[[Sequence[int]], np.ndarray],
) -> None:
    """Make the k-nearest-neighbour mesh connected.

    Nearest-neighbour unions can leave clusters of mutually-close nodes
    isolated; any pair of unreachable overlay nodes would make some
    compositions structurally impossible.  Bridge each component into the
    first one through the minimum-delay inter-component pair (mutates
    ``pairs`` in place).

    ``rows_for(node_ids)`` supplies delay rows on demand — shape
    ``(len(node_ids), num_nodes)`` — so bridging never needs the dense
    all-pairs delay matrix; it fetches rows only for the (usually zero)
    nodes stranded outside the main component.
    """
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in sorted(pairs):
        parent[find(a)] = find(b)
    components: Dict[int, List[int]] = {}
    for node in range(num_nodes):
        components.setdefault(find(node), []).append(node)
    groups = sorted(components.values(), key=len, reverse=True)
    base = groups[0]
    for group in groups[1:]:
        group_rows = rows_for(group)
        position = {node: index for index, node in enumerate(group)}
        best = min(
            ((a, b) for a in group for b in base),
            key=lambda pair: group_rows[position[pair[0]], pair[1]],
        )
        pairs.add((min(best), max(best)))
        base = base + group


def k_smallest_stable(row: np.ndarray, count: int) -> np.ndarray:
    """The first ``count`` indices of ``np.argsort(row, kind="stable")``,
    via partial sort.

    ``argpartition`` finds the ``count`` smallest in O(n); the candidates
    at or below their maximum are then stable-sorted.  ``np.nonzero``
    yields candidate indices in ascending order, so equal values tie-break
    by ascending index — exactly the full stable argsort's order — and the
    returned prefix is element-identical to the full sort's.
    """
    n = len(row)
    if count >= n:
        return np.argsort(row, kind="stable")
    part = np.argpartition(row, count - 1)[:count]
    threshold = row[part].max()
    candidate_idx = np.nonzero(row <= threshold)[0]
    order = candidate_idx[np.argsort(row[candidate_idx], kind="stable")]
    return order[:count]


def build_overlay_network(
    ip_network: IPNetwork,
    num_nodes: int,
    neighbors_per_node: int = 6,
    bandwidth_range_kbps: Tuple[float, float] = (20_000.0, 100_000.0),
    loss_per_ms: Tuple[float, float] = (1e-5, 1e-4),
    node_capacity_sampler: Callable[[random.Random], ResourceVector] = (
        default_node_capacity_sampler
    ),
    rng: Optional[random.Random] = None,
    dijkstra_batch_size: int = 512,
) -> OverlayNetwork:
    """Build the overlay mesh over an IP network (Section 4.1's recipe).

    ``num_nodes`` distinct routers are selected as stream processing nodes;
    each node links to its ``neighbors_per_node`` nearest peers by IP-layer
    delay.  Overlay link delay is the IP shortest-path delay between the
    endpoints' routers; loss grows with delay; capacity is drawn uniformly.

    Construction is streamed: Dijkstra runs in batches of
    ``dijkstra_batch_size`` deduplicated attachment routers, and each
    node's delay row is discarded as soon as its nearest neighbours and
    link delays are recorded — peak memory is O(batch × routers), never
    the dense O(nodes × routers) (or O(nodes²)) matrix the old build
    materialised.  The stream of drawn random numbers and every link's
    float delay are byte-identical to the dense build: a link's delay is
    always read from its *lower-id endpoint's* Dijkstra row (the row the
    dense matrix indexed via ``delays[a, b]`` with ``a < b``), which is
    why the sweep below visits nodes in descending id order — when node
    ``u`` is processed, every mesh pair whose lower id is ``u`` already
    exists (created by ``u``'s own picks or by higher-id nodes picking
    ``u``) and is resolved from ``u``'s freshly computed row.
    """
    # explicit fixed seed when the caller doesn't care about the stream;
    # never the process-global RNG, so builds replay byte-identically
    rng = rng if rng is not None else random.Random(0)
    if num_nodes < 2:
        raise ValueError(f"need at least 2 overlay nodes, got {num_nodes}")
    if num_nodes > ip_network.num_routers:
        raise ValueError(
            f"cannot place {num_nodes} overlay nodes on "
            f"{ip_network.num_routers} routers"
        )
    if neighbors_per_node < 1:
        raise ValueError("neighbors_per_node must be ≥ 1")
    if dijkstra_batch_size < 1:
        raise ValueError(
            f"dijkstra_batch_size must be ≥ 1, got {dijkstra_batch_size}"
        )

    routers = rng.sample(range(ip_network.num_routers), num_nodes)
    nodes = [
        Node(node_id, router_id, node_capacity_sampler(rng))
        for node_id, router_id in enumerate(routers)
    ]

    def rows_for(node_ids: Sequence[int]) -> np.ndarray:
        """Delay rows (one per requested node) over the overlay columns,
        solved per *unique* attachment router in dijkstra-batched calls."""
        unique = sorted({routers[node_id] for node_id in node_ids})
        row_of: Dict[int, np.ndarray] = {}
        for start in range(0, len(unique), dijkstra_batch_size):
            batch = unique[start : start + dijkstra_batch_size]
            solved = ip_network.delays_from(batch)[:, routers]
            for offset, router_id in enumerate(batch):
                row_of[router_id] = solved[offset]
        return np.stack([row_of[routers[node_id]] for node_id in node_ids])

    pairs: Set[Tuple[int, int]] = set()
    # higher-id endpoint → lower-id endpoint's pairs awaiting their delay
    by_min: Dict[int, List[int]] = {}
    pair_delay: Dict[Tuple[int, int], float] = {}
    k = min(neighbors_per_node, num_nodes - 1)

    def add_pair(node_a: int, node_b: int) -> None:
        pair = (min(node_a, node_b), max(node_a, node_b))
        if pair not in pairs:
            pairs.add(pair)
            by_min.setdefault(pair[0], []).append(pair[1])

    for chunk_end in range(num_nodes - 1, -1, -dijkstra_batch_size):
        chunk = list(range(chunk_end, max(-1, chunk_end - dijkstra_batch_size), -1))
        chunk_rows = ip_network.delays_from([routers[u] for u in chunk])[:, routers]
        for row_index, node_id in enumerate(chunk):
            row = chunk_rows[row_index]
            # the pick loop consumes at most k+1 entries (k picks plus the
            # skipped self), so a stable partial sort replaces the full
            # O(N log N) argsort with identical picks
            order = k_smallest_stable(row, k + 1)
            picked = 0
            for neighbor in order:
                neighbor = int(neighbor)
                if neighbor == node_id:
                    continue
                add_pair(node_id, neighbor)
                picked += 1
                if picked >= k:
                    break
            # all pairs keyed by this node exist now (descending sweep):
            # resolve their authoritative delays from this node's row
            for other in by_min.pop(node_id, ()):
                pair_delay[(node_id, other)] = float(row[other])

    _bridge_components(pairs, num_nodes, rows_for)

    # bridge links may key on a node whose row is gone; re-solve just those
    missing = [pair for pair in sorted(pairs) if pair not in pair_delay]
    if missing:
        lower_ids = sorted({pair[0] for pair in missing})
        lower_rows = rows_for(lower_ids)
        row_index_of = {node_id: i for i, node_id in enumerate(lower_ids)}
        for a, b in missing:
            pair_delay[(a, b)] = float(lower_rows[row_index_of[a], b])

    links = []
    for link_id, (a, b) in enumerate(sorted(pairs)):
        delay = pair_delay[(a, b)]
        loss = min(0.5, delay * rng.uniform(*loss_per_ms))
        capacity = rng.uniform(*bandwidth_range_kbps)
        links.append(OverlayLink(link_id, a, b, delay, loss, capacity))
    return OverlayNetwork(nodes, links)
