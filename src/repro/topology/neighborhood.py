"""Router-neighbourhood index: bounded shortest-path trees for pruning.

The scale curve's remaining superlinearity (BENCH_scale.json, PR 6) comes
from per-source *full-row* routing work: every fresh upstream node costs
one whole-graph Dijkstra plus three O(N) row passes (`_annotated`, the
bottleneck-bandwidth fold) even though a probing level only ever commits
to a handful of nearby candidates.  Asaduzzaman & Maheswaran and Benoit
et al. (PAPERS.md) observe that mapping quality survives when each step
considers only a resource's *network neighbourhood* — which is exactly
what :class:`NeighborhoodIndex` materialises:

* per source, a **bounded Dijkstra** over the overlay mesh that stops
  after ``k`` settled nodes — the ``k`` delay-nearest routers (including
  the source itself), in settle (= nondecreasing-delay) order, with the
  composed loss, arriving tree link, and predecessor position of each;
* maintained **incrementally under churn** through the router's churn
  listener seam (the same dirty-set reasoning as
  :mod:`repro.topology.routing`, specialised below);
* **LRU-bounded** (``SystemConfig.neighborhood_cache_size``): resident
  memory is O(cache × k) — strictly inside PR 6's O(cache × N) contract —
  and :meth:`memory_footprint` attributes it for BENCH_scale.

Determinism/byte-identity contract: overlay delays are continuous, so
shortest paths are unique and the bounded tree is a *prefix* of the full
tree in distance order.  Distance accumulates as ``d(v) = d(u) + w`` —
float-for-float what scipy's Dijkstra computes — and loss composes per
tree edge as ``1 − (1 − loss(u))(1 − w)``, the same expression
:meth:`OverlayRouter._annotated` folds.  Every figure the index answers
for a member (delay, loss, path links, bottleneck bandwidth) is therefore
byte-identical to the full router's answer, which is what makes pruned
candidate scoring decision-identical to the full scan whenever
``k >= N`` (``tests/test_fastscore_pruned.py``).

Churn invalidation rules (why they are sufficient):

* **node crash** ``d``: a bounded tree is affected only if ``d`` is one
  of its members — every relay of a bounded tree is itself settled
  (a node on the unique shortest path to a settled node settles first),
  so a non-member crash can neither break a member's path nor shrink any
  member's distance, and removing a node never brings a new node into
  the k-nearest set;
* **node recovery** ``r``: a new path via ``r`` enters it through a
  neighbour ``x`` whose prefix avoids every recovered node (take the
  first recovered node along the path), so ``x`` was already reachable
  at a distance below the current k-th member's — i.e. ``x`` is a
  member.  Dropping trees whose members touch ``{r} ∪ neighbours(r)``
  therefore catches every tree the recovery can change;
* **link failure**: only trees using the link as a *tree edge* (it
  appears in ``uplink``) can change — removing a non-tree edge cannot
  reroute a unique shortest path nor admit new members;
* **link recovery**: a shortcut via the new link enters through one of
  its endpoints, reachable below the k-th distance by the same
  first-recovered-edge argument, so dropping trees whose members touch
  either endpoint suffices.
"""

from __future__ import annotations

import math
import sys
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.model.component_graph import VirtualLinkPath
from repro.model.lru import LRUDict
from repro.model.qos import MetricKind, QoSVector
from repro.observability import NULL_RECORDER, Recorder
from repro.topology.routing import OverlayRouter

#: ``SystemConfig.candidate_prune_k`` accepts ``None`` (full scan), the
#: string ``"auto"``, or an explicit positive neighbourhood size.
PruneSpec = Union[None, int, str]

#: Floor of the ``"auto"`` neighbourhood size: below this, pruning saves
#: nothing (the full candidate table is already this small) and the
#: widen-retry rate climbs.
AUTO_PRUNE_FLOOR = 256


def resolve_prune_k(spec: PruneSpec, num_nodes: int) -> Optional[int]:
    """Resolve a configured prune spec to a concrete neighbourhood size.

    ``None`` disables pruning (the full-scan default — committed figures
    replay byte-identically).  ``"auto"`` scales the neighbourhood as
    ``max(256, ceil(8·√N))`` capped at ``N``: wide enough that a level's
    probe budget ``⌈α·k⌉`` finds qualified candidates without widening in
    the common case, sublinear so per-source routing work stops growing
    with the overlay.  An explicit int is validated and capped at ``N``.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        if spec != "auto":
            raise ValueError(
                f"candidate_prune_k must be None, 'auto', or a positive "
                f"int, got {spec!r}"
            )
        return min(num_nodes, max(AUTO_PRUNE_FLOOR, math.ceil(8.0 * math.sqrt(num_nodes))))
    if spec < 1:
        raise ValueError(f"candidate_prune_k must be >= 1, got {spec}")
    return min(num_nodes, int(spec))


class NeighborhoodEntry:
    """One source's bounded shortest-path tree (its delay neighbourhood).

    Parallel arrays over the ``<= k`` members in settle order —
    ``members[0]`` is the source itself at distance 0.  ``members_sorted``
    / ``sorted_to_pos`` support O(log k) membership and batched gathers
    (``np.searchsorted``); the per-member arrays are O(k), never O(N).
    """

    __slots__ = (
        "source",
        "k",
        "version",
        "members",
        "members_sorted",
        "sorted_to_pos",
        "delay",
        "loss",
        "uplink",
        "parent_pos",
        "bw_link_version",
        "bw_row",
    )

    def __init__(
        self,
        source: int,
        k: int,
        version: int,
        members: np.ndarray,
        delay: np.ndarray,
        loss: np.ndarray,
        uplink: np.ndarray,
        parent_pos: np.ndarray,
    ) -> None:
        self.source = source
        self.k = k
        #: router epoch the tree was solved at (churn drops stale entries)
        self.version = version
        self.members = members
        self.delay = delay
        self.loss = loss
        self.uplink = uplink
        self.parent_pos = parent_pos
        sort = np.argsort(members, kind="stable")
        self.members_sorted = members[sort]
        self.sorted_to_pos = sort
        #: stale bottleneck-bandwidth row over the members, valid for one
        #: global-state link version (lazily filled by the scorer)
        self.bw_link_version = -1
        self.bw_row: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.members)

    def positions(self, node_ids: np.ndarray) -> np.ndarray:
        """Member position of each node id (-1 where not a member)."""
        sorted_members = self.members_sorted
        count = len(sorted_members)
        index = np.searchsorted(sorted_members, node_ids)
        index = np.minimum(index, count - 1)
        found = sorted_members[index] == node_ids
        return np.where(found, self.sorted_to_pos[index], -1)

    def position(self, node_id: int) -> int:
        """Member position of one node id (-1 when not a member)."""
        sorted_members = self.members_sorted
        index = int(np.searchsorted(sorted_members, node_id))
        if index < len(sorted_members) and int(sorted_members[index]) == node_id:
            return int(self.sorted_to_pos[index])
        return -1

    def path_links(self, position: int) -> Tuple[int, ...]:
        """Overlay link ids from the source to a member, in path order."""
        links: List[int] = []
        while position > 0:
            links.append(int(self.uplink[position]))
            position = int(self.parent_pos[position])
        links.reverse()
        return tuple(links)

    def nbytes(self) -> int:
        total = (
            self.members.nbytes
            + self.members_sorted.nbytes
            + self.sorted_to_pos.nbytes
            + self.delay.nbytes
            + self.loss.nbytes
            + self.uplink.nbytes
            + self.parent_pos.nbytes
        )
        if self.bw_row is not None:
            total += self.bw_row.nbytes
        return int(total)


class NeighborhoodIndex:
    """LRU-bounded cache of per-source bounded shortest-path trees.

    Entries are keyed ``(source, k)`` — the widen-retry fallback asks for
    progressively larger neighbourhoods of the same source, and each size
    is a distinct (cheap, O(k)) entry.  The index registers itself on the
    router's churn-listener seam; :meth:`close` detaches it.
    """

    def __init__(
        self,
        router: OverlayRouter,
        k: int,
        capacity: Optional[int] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if k < 1:
            raise ValueError(f"neighbourhood size k must be >= 1, got {k}")
        self.router = router
        self.network = router.network
        self.k = k
        self.recorder = recorder
        self._closed = False
        #: bounded trees solved / dropped by churn since construction
        #: (plain counters so benchmarks need no recorder)
        self.solves = 0
        self.churn_drops = 0
        self._entries: LRUDict[Tuple[int, int], NeighborhoodEntry] = LRUDict(
            capacity=capacity, on_evict=self._on_evicted
        )
        # adjacency in plain-python form: tuple iteration beats repeated
        # numpy indexing in the (python-level) bounded Dijkstra loop.
        # Built once; links are static, liveness is filtered per solve.
        # Link delays/losses are python floats (C doubles), so ``d + w``
        # matches the numpy/scipy float64 accumulation bit-for-bit.
        neighbors: List[List[Tuple[int, int, float, float]]] = [
            [] for _ in range(len(self.network))
        ]
        loss_index = None
        if self.network.links:
            loss_index = next(
                (
                    index
                    for index, kind in enumerate(
                        self.network.links[0].qos.schema.kinds
                    )
                    if kind is MetricKind.MULTIPLICATIVE_LOSS
                ),
                None,
            )
        for link in self.network.links:
            loss = (
                float(link.qos.values[loss_index])
                if loss_index is not None
                else 0.0
            )
            edge_ab = (link.node_b, link.link_id, link.delay_ms, loss)
            edge_ba = (link.node_a, link.link_id, link.delay_ms, loss)
            neighbors[link.node_a].append(edge_ab)
            neighbors[link.node_b].append(edge_ba)
        self._neighbors: Tuple[Tuple[Tuple[int, int, float, float], ...], ...] = (
            tuple(tuple(edges) for edges in neighbors)
        )
        # O(N) scratch shared by every solve, reset via the touched list;
        # plain lists — python-level element access dominates the solve
        n = len(self.network)
        self._dist: List[float] = [math.inf] * n
        self._done: List[bool] = [False] * n
        self._pred_node: List[int] = [-1] * n
        self._pred_link: List[int] = [-1] * n
        router.add_churn_listener(self._on_churn)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the router's churn seam and free all entries."""
        if self._closed:
            return
        self._closed = True
        self.router.remove_churn_listener(self._on_churn)
        self._entries.clear()

    @property
    def cached_entry_count(self) -> int:
        return len(self._entries)

    @property
    def evictions(self) -> int:
        """Entries evicted by the capacity bound since construction."""
        return self._entries.evictions

    def _on_evicted(
        self, key: Tuple[int, int], entry: NeighborhoodEntry
    ) -> None:
        if self.recorder.enabled:
            self.recorder.inc("neighborhood.evictions")

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident bytes per substructure (O(cache × k)
        entries plus the O(N) solve scratch and O(L) adjacency)."""
        entries = sum(entry.nbytes() for _, entry in self._entries.items())
        scratch = int(
            sys.getsizeof(self._dist)
            + sys.getsizeof(self._done)
            + sys.getsizeof(self._pred_node)
            + sys.getsizeof(self._pred_link)
        )
        adjacency = sys.getsizeof(self._neighbors)
        for edges in self._neighbors:
            adjacency += sys.getsizeof(edges)
        footprint = {
            "entries": int(entries),
            "scratch": scratch,
            "adjacency": int(adjacency),
        }
        footprint["total"] = sum(footprint.values())
        return footprint

    # -- solving -----------------------------------------------------------

    def entry(self, source: int, k: Optional[int] = None) -> NeighborhoodEntry:
        """The bounded tree for ``source`` (size ``k``, default the
        configured neighbourhood), solved on demand and LRU-cached."""
        size = self.k if k is None else k
        key = (source, size)
        entry = self._entries.get(key)
        if entry is not None and entry.version == self.router.epoch:
            if self.recorder.enabled:
                self.recorder.inc("neighborhood.hit")
            return entry
        entry = self._solve(source, size)
        self._entries[key] = entry
        self.solves += 1
        if self.recorder.enabled:
            self.recorder.inc("neighborhood.solve")
        return entry

    def _solve(self, source: int, k: int) -> NeighborhoodEntry:
        """Bounded Dijkstra: settle at most ``k`` nodes (source included).

        Mirrors the router's matrix semantics exactly: links adjacent to a
        down node are skipped, and so are down links.  ``d(v) = d(u) + w``
        accumulation and per-edge raw-space loss composition reproduce the
        full solver's floats bit-for-bit on the unique shortest paths.
        """
        router = self.router
        down_nodes = router.down_nodes
        down_links = router.down_links
        filtered = bool(down_nodes) or bool(down_links)
        dist = self._dist
        done = self._done
        pred_node = self._pred_node
        pred_link = self._pred_link
        neighbors = self._neighbors
        infinity = math.inf
        touched: List[int] = [source]

        members: List[int] = []
        delay: List[float] = []
        loss: List[float] = []
        uplink: List[int] = []
        parent_pos: List[int] = []
        position_of: Dict[int, int] = {}
        loss_at: Dict[int, float] = {}
        edge_loss_of: Dict[int, float] = {}

        source_down = source in down_nodes
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap and len(members) < k:
            d, node = heappop(heap)
            if done[node]:
                continue
            done[node] = True
            position = len(members)
            position_of[node] = position
            members.append(node)
            delay.append(d)
            if node == source:
                node_loss = 0.0
                uplink.append(-1)
                parent_pos.append(-1)
            else:
                parent = pred_node[node]
                link_id = pred_link[node]
                node_loss = 1.0 - (1.0 - loss_at[parent]) * (
                    1.0 - edge_loss_of[node]
                )
                uplink.append(link_id)
                parent_pos.append(position_of[parent])
            loss_at[node] = node_loss
            loss.append(node_loss)
            if source_down:
                break  # a crashed source relays nothing (matrix drops its links)
            for other, link_id, weight, edge_loss in neighbors[node]:
                if done[other]:
                    continue
                if filtered and (link_id in down_links or other in down_nodes):
                    continue
                through = d + weight
                if through < dist[other]:
                    if dist[other] == infinity:
                        touched.append(other)
                    dist[other] = through
                    pred_node[other] = node
                    pred_link[other] = link_id
                    edge_loss_of[other] = edge_loss
                    heappush(heap, (through, other))

        for node in touched:
            dist[node] = infinity
            done[node] = False
            pred_node[node] = -1
            pred_link[node] = -1

        return NeighborhoodEntry(
            source,
            k,
            router.epoch,
            np.asarray(members, dtype=np.int64),
            np.asarray(delay, dtype=np.float64),
            np.asarray(loss, dtype=np.float64),
            np.asarray(uplink, dtype=np.int64),
            np.asarray(parent_pos, dtype=np.int64),
        )

    # -- churn maintenance -------------------------------------------------

    def _on_churn(
        self,
        newly_down_nodes: frozenset,
        newly_up_nodes: frozenset,
        newly_down_links: frozenset,
        newly_up_links: frozenset,
    ) -> None:
        """Drop exactly the bounded trees the churn event can affect (see
        the module docstring for why these tests are sufficient)."""
        probe_nodes = set(newly_down_nodes)
        for recovered in sorted(newly_up_nodes):
            probe_nodes.add(recovered)
            probe_nodes.update(self.network.neighbors(recovered))
        for link_id in sorted(newly_up_links):
            link = self.network.link(link_id)
            probe_nodes.add(link.node_a)
            probe_nodes.add(link.node_b)
        probe = (
            np.fromiter(sorted(probe_nodes), dtype=np.int64, count=len(probe_nodes))
            if probe_nodes
            else None
        )
        failed = (
            np.fromiter(
                sorted(newly_down_links),
                dtype=np.int64,
                count=len(newly_down_links),
            )
            if newly_down_links
            else None
        )
        if probe is None and failed is None:
            return
        dropped = 0
        # repro-lint: disable=DET103 -- LRUDict.keys() is a list snapshot in deterministic recency order, not hash order
        for key in self._entries.keys():
            entry = self._entries.peek(key)
            if entry is None:  # pragma: no cover - snapshot, no concurrent evict
                continue
            affected = False
            if probe is not None:
                affected = bool((entry.positions(probe) >= 0).any())
            if not affected and failed is not None:
                affected = bool(np.isin(entry.uplink, failed).any())
            if affected:
                self._entries.pop(key)
                dropped += 1
        self.churn_drops += dropped
        if dropped and self.recorder.enabled:
            self.recorder.inc("neighborhood.churn_drops", dropped)

    # -- queries -----------------------------------------------------------

    def stale_bottleneck_row(
        self, entry: NeighborhoodEntry, link_available_kbps: np.ndarray, link_version: int
    ) -> np.ndarray:
        """Bottleneck bandwidth from the entry's source to each member.

        One O(k) fold down the bounded tree in settle order (parents
        settle first) — the member-restricted twin of
        :meth:`OverlayRouter.bottleneck_bandwidth_row`, min-folding the
        identical link values so member figures match byte-for-byte.
        Cached on the entry for one global-state link version.
        """
        if entry.bw_row is not None and entry.bw_link_version == link_version:
            return entry.bw_row
        count = len(entry.members)
        row = np.empty(count)
        row[0] = np.inf
        uplink = entry.uplink
        parent_pos = entry.parent_pos
        for position in range(1, count):
            upstream = row[parent_pos[position]]
            value = link_available_kbps[uplink[position]]
            row[position] = value if value < upstream else upstream
        entry.bw_row = row
        entry.bw_link_version = link_version
        return row

    def live_bandwidth(self, source: int, node_id: int) -> Optional[float]:
        """Live bottleneck bandwidth source → node via the bounded tree,
        or None when the node is outside the source's neighbourhood (the
        caller falls back to the full router).  Matches
        :meth:`OverlayRouter.available_bandwidth` exactly for members —
        the same link values under the same (exact) min fold.
        """
        if node_id == source:
            return float("inf")
        entry = self.entry(source)
        position = entry.position(node_id)
        if position < 0:
            return None
        values = self.router.link_available
        available = np.inf
        uplink = entry.uplink
        parent_pos = entry.parent_pos
        while position > 0:
            value = values[uplink[position]]
            if value < available:
                available = value
            position = int(parent_pos[position])
        return float(available)

    def virtual_link(self, source: int, node_id: int) -> Optional[VirtualLinkPath]:
        """The virtual link source → member, reconstructed from the bounded
        tree (same overlay links, same QoS floats as the full router), or
        None when the destination is outside the neighbourhood."""
        entry = self.entry(source)
        position = entry.position(node_id)
        if position < 0:
            return None
        schema = self.network.links[0].qos.schema
        return VirtualLinkPath(
            src_node_id=source,
            dst_node_id=node_id,
            overlay_link_ids=entry.path_links(position),
            qos=QoSVector(
                schema,
                [float(entry.delay[position]), float(entry.loss[position])],
            ),
        )
