"""Power-law Internet topology generation.

Section 4.1: "The simulator first uses the degree-based Internet topology
generator Inet-3.0 to generate a 3200 node power-law graph to represent the
IP-layer network."

Inet-3.0 is long-unmaintained C code; what the evaluation depends on is a
*connected router graph with a power-law degree distribution* and per-link
delay attributes, so that overlay paths are heterogeneous.  This module
reimplements that: a degree-based generator that samples a power-law degree
sequence, wires it with a configuration-model pairing (rejecting self-loops
and parallel edges), and patches connectivity by bridging components into
the giant component — the same overall recipe as degree-based Internet
generators.

The output is a plain :class:`RouterGraph`: routers ``0..n-1`` plus an edge
list with delay (ms), bandwidth capacity (kbps), and loss-rate attributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class RouterLink:
    """An undirected IP-layer link with its static attributes."""

    link_id: int
    router_a: int
    router_b: int
    delay_ms: float
    bandwidth_kbps: float
    loss_rate: float


@dataclass
class RouterGraph:
    """An IP-layer router topology."""

    num_routers: int
    links: Tuple[RouterLink, ...]
    _adjacency: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        adjacency: Dict[int, List[int]] = {r: [] for r in range(self.num_routers)}
        for link in self.links:
            adjacency[link.router_a].append(link.router_b)
            adjacency[link.router_b].append(link.router_a)
        self._adjacency = adjacency

    def neighbors(self, router_id: int) -> Sequence[int]:
        return self._adjacency[router_id]

    def degree(self, router_id: int) -> int:
        return len(self._adjacency[router_id])

    def degree_sequence(self) -> List[int]:
        return [self.degree(r) for r in range(self.num_routers)]

    def is_connected(self) -> bool:
        return len(_component_of(self._adjacency, 0)) == self.num_routers


def _component_of(adjacency: Dict[int, List[int]], start: int) -> Set[int]:
    """Connected component containing ``start`` (iterative DFS)."""
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def sample_powerlaw_degrees(
    rng: random.Random,
    count: int,
    exponent: float = 2.2,
    min_degree: int = 1,
    max_degree: int = 0,
) -> List[int]:
    """Sample ``count`` degrees with P(k) ∝ k^(−exponent).

    ``max_degree`` defaults to ``count − 1``.  The returned sequence has an
    even sum (required by the configuration model) — the first entry is
    bumped by one if needed.
    """
    if count <= 1:
        raise ValueError(f"need at least 2 routers, got {count}")
    if min_degree < 1:
        raise ValueError(f"min_degree must be ≥ 1, got {min_degree}")
    max_degree = max_degree or count - 1
    if max_degree < min_degree:
        raise ValueError("max_degree < min_degree")
    supports = list(range(min_degree, max_degree + 1))
    weights = [k ** (-exponent) for k in supports]
    # inverse-CDF sampling over the discrete power law
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    degrees = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        degrees.append(supports[lo])
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    return degrees


class PowerLawTopologyGenerator:
    """Degree-based power-law router topology generator (Inet-3.0 stand-in).

    Args:
        num_routers: Router count (paper default: 3200).
        exponent: Power-law exponent of the degree distribution.
        min_degree: Minimum router degree before connectivity patching.
        delay_range_ms: Uniform range of per-link propagation delay.
        bandwidth_range_kbps: Uniform range of per-link capacity.
        loss_range: Uniform range of per-link loss rate.
        seed: RNG seed; generation is fully deterministic given the seed.
    """

    def __init__(
        self,
        num_routers: int = 3200,
        exponent: float = 2.2,
        min_degree: int = 1,
        delay_range_ms: Tuple[float, float] = (1.0, 10.0),
        bandwidth_range_kbps: Tuple[float, float] = (50_000.0, 200_000.0),
        loss_range: Tuple[float, float] = (0.0, 0.001),
        seed: int = 0,
    ) -> None:
        self.num_routers = num_routers
        self.exponent = exponent
        self.min_degree = min_degree
        self.delay_range_ms = delay_range_ms
        self.bandwidth_range_kbps = bandwidth_range_kbps
        self.loss_range = loss_range
        self.seed = seed

    def generate(self) -> RouterGraph:
        rng = random.Random(self.seed)
        degrees = sample_powerlaw_degrees(
            rng, self.num_routers, self.exponent, self.min_degree
        )
        edges = self._configuration_model(rng, degrees)
        edges = self._connect_components(rng, edges)
        links = tuple(
            RouterLink(
                link_id=index,
                router_a=a,
                router_b=b,
                delay_ms=rng.uniform(*self.delay_range_ms),
                bandwidth_kbps=rng.uniform(*self.bandwidth_range_kbps),
                loss_rate=rng.uniform(*self.loss_range),
            )
            for index, (a, b) in enumerate(sorted(edges))
        )
        return RouterGraph(self.num_routers, links)

    def _configuration_model(
        self, rng: random.Random, degrees: List[int]
    ) -> Set[Tuple[int, int]]:
        """Pair degree stubs, rejecting self-loops and parallel edges.

        Stubs that cannot be placed after a few reshuffles are dropped —
        standard practice; connectivity patching restores reachability.
        """
        stubs: List[int] = []
        for router, degree in enumerate(degrees):
            stubs.extend([router] * degree)
        edges: Set[Tuple[int, int]] = set()
        for _ in range(3):  # a few passes over leftover stubs
            rng.shuffle(stubs)
            leftover: List[int] = []
            for i in range(0, len(stubs) - 1, 2):
                a, b = stubs[i], stubs[i + 1]
                edge = (min(a, b), max(a, b))
                if a == b or edge in edges:
                    leftover.extend((a, b))
                else:
                    edges.add(edge)
            if len(stubs) % 2 == 1:
                leftover.append(stubs[-1])
            if not leftover:
                break
            stubs = leftover
        return edges

    def _connect_components(
        self, rng: random.Random, edges: Set[Tuple[int, int]]
    ) -> Set[Tuple[int, int]]:
        """Bridge every component into the largest one with single links."""
        adjacency: Dict[int, List[int]] = {r: [] for r in range(self.num_routers)}
        for a, b in sorted(edges):
            adjacency[a].append(b)
            adjacency[b].append(a)
        unassigned = set(range(self.num_routers))
        components: List[Set[int]] = []
        while unassigned:
            start = min(unassigned)
            component = _component_of(adjacency, start)
            components.append(component)
            unassigned -= component
        components.sort(key=len, reverse=True)
        giant = components[0]
        for component in components[1:]:
            a = rng.choice(sorted(component))
            b = rng.choice(sorted(giant))
            edges.add((min(a, b), max(a, b)))
            giant = giant | component
        return edges
