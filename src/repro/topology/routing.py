"""Overlay routing and virtual links.

Section 2.1: "The connection between two adjacent components is called
virtual link (l_i), which consists of a set of overlay links.  The QoS of
the virtual link is the aggregation of QoS values among its constituent
overlay links; the bandwidth availability ba_li is the bottleneck bandwidth
among the overlay links."

:class:`OverlayRouter` computes delay-based shortest paths over the overlay
mesh once (scipy Dijkstra with predecessors), then answers virtual-link
queries: the overlay-link path between any node pair, its static QoS
(delay sums, loss composes), and its *current* bottleneck bandwidth (always
read live from the links, since bandwidth is the dynamic quantity).

Co-located pairs (a == b) yield the empty path with zero QoS — footnote 4's
"0 network delay" and footnote 8's infinite residual bandwidth.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.model.component_graph import VirtualLinkPath
from repro.model.qos import MetricKind, QoSVector, combine_all
from repro.topology.overlay import OverlayNetwork


class RoutingError(RuntimeError):
    """Raised when no overlay path exists between two nodes."""


class OverlayRouter:
    """Delay-based shortest-path routing over an overlay mesh."""

    def __init__(self, network: OverlayNetwork):
        self.network = network
        self._down_nodes: frozenset = frozenset()
        self._path_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._qos_cache: Dict[Tuple[int, int], QoSVector] = {}
        self._row_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        #: monotone topology epoch, bumped by every :meth:`_solve`; derived
        #: caches (``repro.core.fastscore``) key on it
        self.epoch = 0
        schema = (
            network.links[0].qos.schema
            if network.links
            else QoSVector.zero().schema
        )
        self._zero_qos = QoSVector.zero(schema)
        # the per-source rows of virtual_link_rows represent the full link
        # QoS only for the default (delay, loss) metric shape; other schemas
        # keep the per-pair combine_all fold
        self._rows_represent_qos = schema.kinds == (
            MetricKind.ADDITIVE,
            MetricKind.MULTIPLICATIVE_LOSS,
        )
        self._solve()

    def _solve(self) -> None:
        """(Re)compute all-pairs shortest paths, skipping down nodes.

        Links adjacent to a down node are removed from the routing graph —
        a crashed node cannot relay overlay traffic.
        """
        network = self.network
        n = len(network)
        rows, cols, delays = [], [], []
        for link in network.links:
            if link.node_a in self._down_nodes or link.node_b in self._down_nodes:
                continue
            rows.extend((link.node_a, link.node_b))
            cols.extend((link.node_b, link.node_a))
            delays.extend((link.delay_ms, link.delay_ms))
        matrix = csr_matrix(
            (np.asarray(delays), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
        )
        self._distances, self._predecessors = dijkstra(
            matrix, directed=False, return_predecessors=True
        )
        self._path_cache.clear()
        self._qos_cache.clear()
        self._row_cache.clear()
        self.epoch += 1

    # -- liveness (failure injection) -----------------------------------------

    @property
    def down_nodes(self) -> frozenset:
        return self._down_nodes

    def set_down_nodes(self, node_ids) -> None:
        """Declare the set of crashed nodes and re-route around them.

        Recomputes the all-pairs matrices (O(N·E log N)); callers batch
        failure/recovery events per round rather than per node.
        """
        down = frozenset(node_ids)
        if down != self._down_nodes:
            self._down_nodes = down
            self._solve()

    # -- paths -------------------------------------------------------------

    def delay(self, node_a: int, node_b: int) -> float:
        """Shortest overlay path delay in ms (0 for a == b)."""
        return float(self._distances[node_a, node_b])

    def reachable(self, node_a: int, node_b: int) -> bool:
        return np.isfinite(self._distances[node_a, node_b])

    def overlay_path(self, node_a: int, node_b: int) -> Tuple[int, ...]:
        """Overlay link ids along the delay-shortest path (empty if a == b).

        Raises:
            RoutingError: if the mesh does not connect the two nodes.
        """
        if node_a == node_b:
            return ()
        key = (node_a, node_b)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if not self.reachable(node_a, node_b):
            raise RoutingError(f"no overlay path v{node_a} -> v{node_b}")
        link_ids = []
        current = node_b
        while current != node_a:
            previous = int(self._predecessors[node_a, current])
            link = self.network.link_between(previous, current)
            if link is None:  # pragma: no cover - predecessor matrix guarantees it
                raise RoutingError(
                    f"routing inconsistency between v{previous} and v{current}"
                )
            link_ids.append(link.link_id)
            current = previous
        path = tuple(reversed(link_ids))
        self._path_cache[key] = path
        return path

    # -- virtual links -------------------------------------------------------

    def virtual_link_qos(self, node_a: int, node_b: int) -> QoSVector:
        """Static aggregated QoS of the virtual link between two nodes.

        For the default (delay, loss) schema this reads the per-source rows
        of :meth:`virtual_link_rows` — the same floats the vectorised
        scoring path (``repro.core.fastscore``) ranks on — so the cache is
        keyed on the *directed* pair; both directions fold the same links
        and agree to within summation order.
        """
        if node_a == node_b:
            return self._zero_qos
        key = (node_a, node_b)
        cached = self._qos_cache.get(key)
        if cached is None:
            if self._rows_represent_qos:
                if not self.reachable(node_a, node_b):
                    raise RoutingError(f"no overlay path v{node_a} -> v{node_b}")
                delay_row, loss_row = self.virtual_link_rows(node_a)
                cached = QoSVector(
                    self._zero_qos.schema,
                    [float(delay_row[node_b]), float(loss_row[node_b])],
                )
            else:
                path = self.overlay_path(node_a, node_b)
                cached = combine_all(
                    (self.network.link(link_id).qos for link_id in path),
                    self._zero_qos.schema,
                )
            self._qos_cache[key] = cached
        return cached

    def virtual_link_rows(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        """Virtual-link QoS from ``source`` to *every* node, as arrays.

        Returns ``(delay_row, loss_row)``: per destination the delay sum and
        the composed loss rate along the delay-shortest path.  Unreachable
        destinations have infinite delay (loss is left at 0 there; callers
        must mask on reachability).  Rows are cached per topology epoch —
        the loss accumulation walks the shortest-path tree in distance
        order, applying the same raw-space composition
        ``1 − (1 − a)(1 − b)`` per tree edge that :meth:`virtual_link_qos`
        folds along the path, so both views agree.
        """
        cached = self._row_cache.get(source)
        if cached is not None:
            return cached
        distances = self._distances[source]
        predecessors = self._predecessors[source]
        loss_row = np.zeros(len(self.network))
        loss_index = next(
            (
                index
                for index, kind in enumerate(self._zero_qos.schema.kinds)
                if kind is MetricKind.MULTIPLICATIVE_LOSS
            ),
            None,
        )
        for destination in np.argsort(distances, kind="stable"):
            destination = int(destination)
            if destination == source:
                continue
            if not np.isfinite(distances[destination]):
                break  # infinities sort last: the rest are unreachable too
            previous = int(predecessors[destination])
            link = self.network.link_between(previous, destination)
            if link is None:  # pragma: no cover - predecessor matrix guarantees it
                raise RoutingError(
                    f"routing inconsistency between v{previous} and v{destination}"
                )
            link_loss = link.qos.values[loss_index] if loss_index is not None else 0.0
            loss_row[destination] = 1.0 - (1.0 - loss_row[previous]) * (
                1.0 - link_loss
            )
        rows = (distances, loss_row)
        self._row_cache[source] = rows
        return rows

    def virtual_link(self, node_a: int, node_b: int) -> VirtualLinkPath:
        """The virtual link between two (possibly identical) nodes."""
        path = self.overlay_path(node_a, node_b)
        return VirtualLinkPath(
            src_node_id=node_a,
            dst_node_id=node_b,
            overlay_link_ids=path,
            qos=self.virtual_link_qos(node_a, node_b),
        )

    def available_bandwidth(self, node_a: int, node_b: int) -> float:
        """Current bottleneck bandwidth of the virtual link (live values)."""
        if node_a == node_b:
            return float("inf")
        return self.network.path_available_bw(self.overlay_path(node_a, node_b))
