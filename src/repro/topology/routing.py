"""Overlay routing and virtual links.

Section 2.1: "The connection between two adjacent components is called
virtual link (l_i), which consists of a set of overlay links.  The QoS of
the virtual link is the aggregation of QoS values among its constituent
overlay links; the bandwidth availability ba_li is the bottleneck bandwidth
among the overlay links."

:class:`OverlayRouter` answers virtual-link queries — the overlay-link path
between any node pair, its static QoS (delay sums, loss composes), and its
*current* bottleneck bandwidth — from **lazy per-source shortest-path
trees**.  A single-source scipy Dijkstra runs the first time a source is
queried and is cached; churn (:meth:`set_down_nodes`) invalidates only the
trees the event can actually affect:

* a **crash** of node ``d`` drops only the trees that route *through* ``d``
  (``d`` appears in the tree's relay set).  Trees where ``d`` is a leaf are
  patched in place — the entry *for* ``d`` becomes unreachable, every other
  distance, path, loss and bandwidth answer provably cannot change;
* a **recovery** of node ``r`` can create new shortcuts, so it drops the
  trees whose reachable set touches ``r`` or any of its neighbours (any new
  path must enter ``r`` through a previously-reachable neighbour) — and
  nothing else, which matters when crashes have partitioned the mesh.

Link faults (:meth:`set_down_links`) get the same treatment at finer
granularity — a down overlay link is excluded from the routing matrix
exactly like a link adjacent to a down endpoint:

* a **link failure** drops only the trees that use the link as a *tree
  edge* (one endpoint is the predecessor of the other); removing a
  non-tree edge provably cannot change any shortest path, so every other
  tree survives untouched;
* a **link recovery** can only create shortcuts reachable through one of
  its endpoints, so it drops the trees whose reachable set touches either
  endpoint.

Each tree carries a **row version** (the topology epoch it was solved at);
derived caches (``repro.core.fastscore``) key per-source state on
:meth:`row_version` so a churn event rebuilds only the affected columns.
In-place leaf patches deliberately do *not* bump the version: they only
flip entries for down destinations, which every consumer already masks via
node liveness.  ``epoch`` remains the global topology counter (bumped once
per :meth:`set_down_nodes` change).

``incremental=False`` restores the eager baseline — one all-pairs solve
plus a wholesale cache flush per churn event — kept reachable so the macro
churn benchmark (``make bench-macro``) can measure the ratio.

Co-located pairs (a == b) yield the empty path with zero QoS — footnote 4's
"0 network delay" and footnote 8's infinite residual bandwidth.

With distinct path costs the incrementally maintained state is identical
to a freshly constructed router's (``tests/test_routing_incremental.py``
checks this differentially under randomized churn); on exact cost ties a
surviving tree may break the tie differently than a fresh solve would —
both choices are optimal.
"""

from __future__ import annotations

import sys
from types import TracebackType
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.model.component_graph import VirtualLinkPath
from repro.model.lru import LRUDict
from repro.model.qos import MetricKind, QoSVector, combine_all
from repro.observability.hotpath import hot_path
from repro.observability import NULL_RECORDER, Recorder
from repro.topology.overlay import OverlayLink, OverlayNetwork

#: Above this overlay size the eager ``incremental=False`` baseline refuses
#: to run: its two dense N×N float64 matrices (distances + predecessors)
#: cost 16·N² bytes — ~64 MB at 2k nodes, ~1.6 GB at 10k — for a mode that
#: exists only as a small-scale measurement baseline.
EAGER_ALLPAIRS_MAX_NODES = 2048

#: Signature of router churn listeners:
#: ``listener(newly_down_nodes, newly_up_nodes, newly_down_links,
#: newly_up_links)`` — invoked once per effective :meth:`set_down_nodes`
#: / :meth:`set_down_links` change (node events carry empty link sets and
#: vice versa), *after* the router has updated its own state.  Derived
#: per-source caches (``repro.topology.neighborhood``) hang their own
#: dirty-set invalidation off this seam instead of polling epochs.
ChurnListener = Callable[[frozenset, frozenset, frozenset, frozenset], None]


class RoutingError(RuntimeError):
    """Raised when no overlay path exists between two nodes."""


class _SourceTree:
    """One source's shortest-path tree plus lazily-built per-row arrays.

    ``distances``/``loss_row`` are exposed to callers read-only; the
    router unfreezes them only for leaf-crash patches it owns.
    """

    __slots__ = (
        "source",
        "version",
        "distances",
        "predecessors",
        "finite",
        "relay",
        "order",
        "uplink",
        "loss_row",
    )

    def __init__(
        self,
        source: int,
        version: int,
        distances: np.ndarray,
        predecessors: np.ndarray,
    ) -> None:
        self.source = source
        self.version = version
        self.distances = distances
        self.predecessors = predecessors
        self.finite = np.isfinite(distances)
        # relay nodes: every node that forwards to at least one child in
        # the tree.  A crash outside this set (a leaf) cannot change any
        # distance except the crashed node's own entry.
        relay = np.zeros(len(distances), dtype=bool)
        used = predecessors[self.finite]
        used = used[used >= 0]
        relay[used] = True
        self.relay = relay
        #: reachable destinations in nondecreasing distance order
        self.order: Optional[np.ndarray] = None
        #: per destination, the link id of the tree edge arriving at it
        #: (-1 at the source and at unreachable/patched destinations)
        self.uplink: Optional[np.ndarray] = None
        self.loss_row: Optional[np.ndarray] = None
        distances.setflags(write=False)

    def nbytes(self) -> int:
        """Resident bytes of this tree's arrays (lazy rows count once built)."""
        total = (
            self.distances.nbytes
            + self.predecessors.nbytes
            + self.finite.nbytes
            + self.relay.nbytes
        )
        if self.order is not None:
            total += self.order.nbytes
        if self.uplink is not None:
            total += self.uplink.nbytes
        if self.loss_row is not None:
            total += self.loss_row.nbytes
        return int(total)


class OverlayRouter:
    """Delay-based shortest-path routing over an overlay mesh."""

    def __init__(
        self,
        network: OverlayNetwork,
        incremental: bool = True,
        recorder: Recorder = NULL_RECORDER,
        tree_cache_size: Optional[int] = None,
        eager_max_nodes: int = EAGER_ALLPAIRS_MAX_NODES,
    ) -> None:
        self.network = network
        self._incremental = incremental
        self.recorder = recorder
        self._eager_max_nodes = eager_max_nodes
        self._down_nodes: frozenset = frozenset()
        self._down_links: frozenset = frozenset()
        self._closed = False
        #: monotone topology epoch, bumped once per down-set change; per
        #: source, :meth:`row_version` is the finer-grained cache key
        self.epoch = 0
        # per-source caches: trees are the LRU-bounded master; the path and
        # QoS caches only ever hold sources present in ``_trees`` (the
        # eviction callback drops their entries), so total router cache
        # memory is O(tree_cache_size × N), never O(N²).  Evictions are
        # decision-invisible: delays are continuous, so a re-solve of an
        # evicted source reproduces the identical tree.
        self._trees: LRUDict[int, _SourceTree] = LRUDict(
            capacity=tree_cache_size, on_evict=self._on_tree_evicted
        )
        self._path_cache: Dict[int, Dict[int, Tuple[int, ...]]] = {}  # repro-lint: disable=SHR402 -- evicted in lockstep with the _trees LRU above; bound is tree_cache_size, a second LRU would double the bookkeeping for the same bound
        self._qos_cache: Dict[int, Dict[int, QoSVector]] = {}  # repro-lint: disable=SHR402 -- same lockstep eviction as _path_cache
        schema = (
            network.links[0].qos.schema
            if network.links
            else QoSVector.zero().schema
        )
        self._zero_qos = QoSVector.zero(schema)
        # the per-source rows of virtual_link_rows represent the full link
        # QoS only for the default (delay, loss) metric shape; other schemas
        # keep the per-pair combine_all fold
        self._rows_represent_qos = schema.kinds == (
            MetricKind.ADDITIVE,
            MetricKind.MULTIPLICATIVE_LOSS,
        )
        self._loss_index = next(
            (
                index
                for index, kind in enumerate(schema.kinds)
                if kind is MetricKind.MULTIPLICATIVE_LOSS
            ),
            None,
        )

        links = network.links
        count = len(links)
        self._link_a = np.fromiter(
            (link.node_a for link in links), dtype=np.int64, count=count
        )
        self._link_b = np.fromiter(
            (link.node_b for link in links), dtype=np.int64, count=count
        )
        self._link_delay = np.fromiter(
            (link.delay_ms for link in links), dtype=np.float64, count=count
        )
        # live residual bandwidth, maintained O(1) per allocation so the
        # bottleneck queries never re-read every link object
        self._link_available = np.fromiter(
            (link.available_kbps for link in links), dtype=np.float64, count=count
        )
        for link in links:
            link.add_change_listener(self._on_link_bandwidth)
        self._churn_listeners: List[ChurnListener] = []

        self._all_distances: Optional[np.ndarray] = None
        self._all_predecessors: Optional[np.ndarray] = None
        self._build_matrix()
        if not self._incremental:
            self._solve_all()

    # -- substrate -------------------------------------------------------------

    def _on_link_bandwidth(self, link: OverlayLink) -> None:
        self._link_available[link.link_id] = link.available_kbps

    @property
    def link_available(self) -> np.ndarray:
        """Live per-link residual bandwidth, indexed by link id.

        Maintained O(1) per allocation via link listeners.  Treat as
        read-only — it is the array the router's own bottleneck queries
        fold over, shared so neighbourhood-pruned paths min-fold the
        identical floats.
        """
        return self._link_available

    def add_churn_listener(self, listener: ChurnListener) -> None:
        """Register a churn listener (see :data:`ChurnListener`)."""
        self._churn_listeners.append(listener)

    def remove_churn_listener(self, listener: ChurnListener) -> None:
        """Unregister a churn listener (no-op when absent)."""
        try:
            self._churn_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_churn(
        self,
        newly_down_nodes: frozenset,
        newly_up_nodes: frozenset,
        newly_down_links: frozenset,
        newly_up_links: frozenset,
    ) -> None:
        for listener in self._churn_listeners:
            listener(
                newly_down_nodes, newly_up_nodes, newly_down_links, newly_up_links
            )

    @property
    def tree_cache_capacity(self) -> Optional[int]:
        """Configured bound on cached source trees (None = unbounded)."""
        return self._trees.capacity

    @property
    def cached_tree_count(self) -> int:
        """Source trees currently resident (≤ :attr:`tree_cache_capacity`)."""
        return len(self._trees)

    @property
    def tree_evictions(self) -> int:
        """Source trees evicted by the capacity bound since construction."""
        return self._trees.evictions

    def _on_tree_evicted(self, source: int, tree: _SourceTree) -> None:
        """Capacity eviction of a source tree drops its sibling caches too,
        keeping the ``path/qos ⊆ trees`` invariant that bounds memory."""
        self._path_cache.pop(source, None)
        self._qos_cache.pop(source, None)
        if self.recorder.enabled:
            self.recorder.inc("router.tree_evictions")

    def close(self) -> None:
        """Detach this router from the shared network and free its caches.

        Routers register a bandwidth listener on every overlay link; a
        router that is discarded without ``close()`` stays referenced by
        the network and keeps its arrays alive (and updated) forever —
        exactly what the differential tests' fresh-router-per-step pattern
        used to leak.  Idempotent; the router must not be queried after.
        """
        if self._closed:
            return
        self._closed = True
        for link in self.network.links:
            link.remove_change_listener(self._on_link_bandwidth)
        self._churn_listeners.clear()
        self._trees.clear()
        self._path_cache.clear()
        self._qos_cache.clear()
        self._all_distances = None
        self._all_predecessors = None

    def __enter__(self) -> "OverlayRouter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident bytes per router substructure.

        ``nbytes`` for the numpy state (exact) plus ``sys.getsizeof``
        container overheads for the path/QoS caches (close).  BENCH_scale
        uses this to attribute memory per subsystem; ``total`` sums the
        parts.
        """
        trees = sum(tree.nbytes() for _, tree in self._trees.items())
        link_arrays = int(
            self._link_a.nbytes
            + self._link_b.nbytes
            + self._link_delay.nbytes
            + self._link_available.nbytes
        )
        path_cache = sys.getsizeof(self._path_cache)
        for per_source in self._path_cache.values():
            path_cache += sys.getsizeof(per_source)
            for path in per_source.values():
                path_cache += sys.getsizeof(path)
        qos_cache = sys.getsizeof(self._qos_cache)
        for per_source_qos in self._qos_cache.values():
            qos_cache += sys.getsizeof(per_source_qos)
            for qos in per_source_qos.values():
                qos_cache += sys.getsizeof(qos) + sys.getsizeof(qos.values)
        all_pairs = 0
        if self._all_distances is not None:
            all_pairs += int(self._all_distances.nbytes)
        if self._all_predecessors is not None:
            all_pairs += int(self._all_predecessors.nbytes)
        footprint = {
            "trees": int(trees),
            "path_cache": int(path_cache),
            "qos_cache": int(qos_cache),
            "link_arrays": link_arrays,
            "all_pairs": all_pairs,
        }
        footprint["total"] = sum(footprint.values())
        return footprint

    def _build_matrix(self) -> None:
        """CSR routing graph for the current down sets.

        Links adjacent to a down node are removed — a crashed node cannot
        relay overlay traffic — and so are links that are down themselves
        (a failed link is a down endpoint at per-link granularity).
        """
        n = len(self.network)
        if self._down_nodes or self._down_links:
            keep = np.ones(len(self._link_a), dtype=bool)
            if self._down_nodes:
                down = np.fromiter(
                    # repro-lint: disable=DET103 -- feeds np.isin masks only; element order is unobservable
                    self._down_nodes, dtype=np.int64, count=len(self._down_nodes)
                )
                keep &= ~(np.isin(self._link_a, down) | np.isin(self._link_b, down))
            if self._down_links:
                down_links = np.fromiter(
                    # repro-lint: disable=DET103 -- feeds a boolean index assignment; element order is unobservable
                    self._down_links, dtype=np.int64, count=len(self._down_links)
                )
                keep[down_links] = False
            link_a = self._link_a[keep]
            link_b = self._link_b[keep]
            delays = self._link_delay[keep]
        else:
            link_a, link_b, delays = self._link_a, self._link_b, self._link_delay
        self._matrix = csr_matrix(
            (
                np.concatenate((delays, delays)),
                (
                    np.concatenate((link_a, link_b)),
                    np.concatenate((link_b, link_a)),
                ),
            ),
            shape=(n, n),
        )

    def _solve_all(self) -> None:
        """Eager baseline: all-pairs solve + wholesale cache flush."""
        n = len(self.network)
        if n > self._eager_max_nodes:
            raise RoutingError(
                f"eager all-pairs routing (incremental=False) refuses "
                f"{n} overlay nodes: it would allocate two dense "
                f"{n}×{n} float64 matrices "
                f"(~{2 * 16 * n * n // 2 ** 20} MB). Use "
                f"SystemConfig(incremental_routing=True) (the default) for "
                f"LRU-bounded per-source trees, or raise the cap explicitly "
                f"with OverlayRouter(eager_max_nodes=...) (module default "
                f"EAGER_ALLPAIRS_MAX_NODES = {EAGER_ALLPAIRS_MAX_NODES}; "
                f"this router's limit {self._eager_max_nodes})."
            )
        self._all_distances, self._all_predecessors = dijkstra(
            self._matrix, directed=False, return_predecessors=True
        )
        self._trees.clear()
        self._path_cache.clear()
        self._qos_cache.clear()

    def _tree(self, source: int) -> _SourceTree:
        tree = self._trees.get(source)
        if tree is None:
            if self.recorder.enabled:
                self.recorder.inc("router.tree_solve")
            if self._incremental:
                distances, predecessors = dijkstra(
                    self._matrix,
                    directed=False,
                    indices=source,
                    return_predecessors=True,
                )
            else:
                assert self._all_distances is not None
                assert self._all_predecessors is not None
                distances = self._all_distances[source]
                predecessors = self._all_predecessors[source]
            tree = _SourceTree(source, self.epoch, distances, predecessors)
            self._trees[source] = tree
        elif self.recorder.enabled:
            self.recorder.inc("router.tree_hit")
        return tree

    def _annotated(self, source: int) -> _SourceTree:
        """The tree plus its order/uplink/loss arrays (one O(N) pass)."""
        tree = self._tree(source)
        if tree.order is not None:
            return tree
        network = self.network
        distances = tree.distances
        n = len(network)
        loss_row = np.zeros(n)
        uplink = np.full(n, -1, dtype=np.int64)
        order = []
        loss_index = self._loss_index
        for destination in np.argsort(distances, kind="stable"):
            destination = int(destination)
            if destination == tree.source:
                continue
            if not np.isfinite(distances[destination]):
                break  # infinities sort last: the rest are unreachable too
            previous = int(tree.predecessors[destination])
            link = network.link_between(previous, destination)
            if link is None:  # pragma: no cover - predecessor matrix guarantees it
                raise RoutingError(
                    f"routing inconsistency between v{previous} and v{destination}"
                )
            link_loss = link.qos.values[loss_index] if loss_index is not None else 0.0
            loss_row[destination] = 1.0 - (1.0 - loss_row[previous]) * (
                1.0 - link_loss
            )
            uplink[destination] = link.link_id
            order.append(destination)
        tree.order = np.asarray(order, dtype=np.int64)
        tree.uplink = uplink
        loss_row.setflags(write=False)
        tree.loss_row = loss_row
        return tree

    def _patch_unreachable(self, tree: _SourceTree, node_id: int) -> None:
        """Mark a crashed leaf destination unreachable without a re-solve.

        Only the entry *for* the leaf changes — it has no children, so no
        other distance, path, or loss figure depends on it.  The tree's
        row version is intentionally kept: consumers mask down nodes via
        liveness, so their cached derivations stay valid.
        """
        distances = tree.distances
        distances.setflags(write=True)
        distances[node_id] = np.inf
        distances.setflags(write=False)
        tree.finite[node_id] = False
        if tree.loss_row is not None:
            tree.uplink[node_id] = -1
            loss_row = tree.loss_row
            loss_row.setflags(write=True)
            loss_row[node_id] = 0.0
            loss_row.setflags(write=False)

    # -- liveness (failure injection) -----------------------------------------

    @property
    def down_nodes(self) -> frozenset:
        return self._down_nodes

    @hot_path(budget="O(affected × N)")
    def set_down_nodes(self, node_ids: Iterable[int]) -> None:
        """Declare the set of crashed nodes and re-route around them.

        Incremental mode invalidates only the per-source trees the change
        can affect (O(affected · N) plus lazy re-solves on demand); the
        eager baseline recomputes the all-pairs matrices (O(N·E log N))
        and flushes every cache.  Callers batch co-temporal failure and
        recovery events into one call (see
        :meth:`repro.simulation.failures.FailureInjector.crash_many`).
        """
        down = frozenset(node_ids)
        if down == self._down_nodes:
            return
        newly_down = down - self._down_nodes
        newly_up = self._down_nodes - down
        self._down_nodes = down
        self.epoch += 1
        self._build_matrix()
        observing = self.recorder.enabled
        if not self._incremental:
            dropped = len(self._trees)
            self._solve_all()
            if observing:
                self.recorder.emit(
                    "router.churn",
                    epoch=self.epoch,
                    down=len(down),
                    dropped_trees=dropped,
                    patched_trees=0,
                    eager=True,
                )
            self._notify_churn(newly_down, newly_up, frozenset(), frozenset())
            return

        changed_roots = newly_down | newly_up
        crashed = (
            # repro-lint: disable=DET103 -- feeds tree.relay[...].any() only; element order is unobservable
            np.fromiter(newly_down, dtype=np.int64, count=len(newly_down))
            if newly_down
            else None
        )
        # any new path via a recovered node enters it through one of its
        # neighbours, which must already be reachable from the source
        probe = set(newly_up)
        for node_id in newly_up:  # repro-lint: disable=DET103 -- accumulates into a set; order is unobservable
            probe.update(self.network.neighbors(node_id))
        recovered_probe = (
            # repro-lint: disable=DET103 -- feeds tree.finite[...].any() only; element order is unobservable
            np.fromiter(probe, dtype=np.int64, count=len(probe)) if probe else None
        )

        dropped = 0
        patched = 0
        # peek: an invalidation scan must not rewrite recency order
        # repro-lint: disable=DET103 -- LRUDict.keys() is a list snapshot in deterministic recency order, not hash order
        # repro-lint: disable=HOT503 -- scans the LRU-bounded tree cache: O(C) with C = tree_cache_size, not O(N)
        for source in self._trees.keys():
            tree = self._trees.peek(source)
            if tree is None:  # pragma: no cover - snapshot, no concurrent evict
                continue
            if (
                source in changed_roots
                or (crashed is not None and bool(tree.relay[crashed].any()))
                or (
                    recovered_probe is not None
                    and bool(tree.finite[recovered_probe].any())
                )
            ):
                self._trees.pop(source)
                self._path_cache.pop(source, None)
                self._qos_cache.pop(source, None)
                dropped += 1
            elif crashed is not None:
                paths = self._path_cache.get(source)
                qos = self._qos_cache.get(source)
                tree_patched = False
                for node_id in sorted(newly_down):
                    if tree.finite[node_id]:
                        self._patch_unreachable(tree, node_id)
                        tree_patched = True
                    if paths is not None:
                        paths.pop(node_id, None)
                    if qos is not None:
                        qos.pop(node_id, None)
                if tree_patched:
                    patched += 1
        if observing:
            self.recorder.emit(
                "router.churn",
                epoch=self.epoch,
                down=len(down),
                dropped_trees=dropped,
                patched_trees=patched,
                eager=False,
            )
        self._notify_churn(newly_down, newly_up, frozenset(), frozenset())

    @property
    def down_links(self) -> frozenset:
        return self._down_links

    @hot_path(budget="O(affected × N)")
    def set_down_links(self, link_ids: Iterable[int]) -> None:
        """Declare the set of failed overlay links and re-route around them.

        The per-link analogue of :meth:`set_down_nodes`.  Incremental mode
        drops only the trees a change can affect:

        * a failed link invalidates a tree only when it is one of the
          tree's edges (an endpoint is the other's predecessor) — removing
          an edge no shortest path uses cannot change any answer;
        * a recovered link invalidates a tree only when the tree already
          reaches one of its endpoints — the only ways a new edge can
          shorten or create a path from that source.

        Callers batch co-temporal link failures and recoveries into one
        call, mirroring the node-churn batching contract.
        """
        down = frozenset(link_ids)
        if down == self._down_links:
            return
        for link_id in sorted(down - self._down_links):
            if not 0 <= link_id < len(self.network.links):
                raise ValueError(f"unknown overlay link id {link_id}")
        newly_down = down - self._down_links
        newly_up = self._down_links - down
        self._down_links = down
        self.epoch += 1
        self._build_matrix()
        observing = self.recorder.enabled
        if not self._incremental:
            dropped = len(self._trees)
            self._solve_all()
            if observing:
                self.recorder.emit(
                    "router.link_churn",
                    epoch=self.epoch,
                    down=len(down),
                    dropped_trees=dropped,
                    eager=True,
                )
            self._notify_churn(frozenset(), frozenset(), newly_down, newly_up)
            return

        failed = (
            # repro-lint: disable=DET103 -- feeds vectorised any() masks only; element order is unobservable
            np.fromiter(newly_down, dtype=np.int64, count=len(newly_down))
            if newly_down
            else None
        )
        recovered_ends = None
        if newly_up:
            up = np.fromiter(
                # repro-lint: disable=DET103 -- feeds tree.finite[...].any() only; element order is unobservable
                newly_up, dtype=np.int64, count=len(newly_up)
            )
            recovered_ends = np.concatenate((self._link_a[up], self._link_b[up]))

        dropped = 0
        # repro-lint: disable=DET103 -- LRUDict.keys() is a list snapshot in deterministic recency order, not hash order
        # repro-lint: disable=HOT503 -- scans the LRU-bounded tree cache: O(C) with C = tree_cache_size, not O(N)
        for source in self._trees.keys():
            tree = self._trees.peek(source)
            if tree is None:  # pragma: no cover - snapshot, no concurrent evict
                continue
            affected = False
            if failed is not None:
                ends_a = self._link_a[failed]
                ends_b = self._link_b[failed]
                # tree edge test: the link is used iff one endpoint is the
                # tree predecessor of the other (and that other is reached)
                affected = bool(
                    np.any(
                        (tree.finite[ends_a] & (tree.predecessors[ends_a] == ends_b))
                        | (tree.finite[ends_b] & (tree.predecessors[ends_b] == ends_a))
                    )
                )
            if not affected and recovered_ends is not None:
                affected = bool(tree.finite[recovered_ends].any())
            if affected:
                self._trees.pop(source)
                self._path_cache.pop(source, None)
                self._qos_cache.pop(source, None)
                dropped += 1
        if observing:
            self.recorder.emit(
                "router.link_churn",
                epoch=self.epoch,
                down=len(down),
                dropped_trees=dropped,
                eager=False,
            )
        self._notify_churn(frozenset(), frozenset(), newly_down, newly_up)

    def row_version(self, source: int) -> int:
        """Version of ``source``'s routing rows (the topology epoch its
        tree was solved at).  Consumers key per-source caches on this so
        churn rebuilds only the affected columns; entries for down
        destinations may be patched without a bump and must be masked via
        node liveness."""
        return self._tree(source).version

    # -- paths -------------------------------------------------------------

    def delay(self, node_a: int, node_b: int) -> float:
        """Shortest overlay path delay in ms (0 for a == b)."""
        return float(self._tree(node_a).distances[node_b])

    def reachable(self, node_a: int, node_b: int) -> bool:
        return bool(self._tree(node_a).finite[node_b])

    def overlay_path(self, node_a: int, node_b: int) -> Tuple[int, ...]:
        """Overlay link ids along the delay-shortest path (empty if a == b).

        Raises:
            RoutingError: if the mesh does not connect the two nodes.
        """
        if node_a == node_b:
            return ()
        cache = self._path_cache.get(node_a)
        if cache is None:
            cache = self._path_cache.setdefault(node_a, {})
        cached = cache.get(node_b)
        if cached is not None:
            return cached
        tree = self._annotated(node_a)
        if not tree.finite[node_b]:
            raise RoutingError(f"no overlay path v{node_a} -> v{node_b}")
        link_ids = []
        current = node_b
        uplink = tree.uplink
        predecessors = tree.predecessors
        while current != node_a:
            link_ids.append(int(uplink[current]))
            current = int(predecessors[current])
        path = tuple(reversed(link_ids))
        cache[node_b] = path
        return path

    # -- virtual links -------------------------------------------------------

    def virtual_link_qos(self, node_a: int, node_b: int) -> QoSVector:
        """Static aggregated QoS of the virtual link between two nodes.

        For the default (delay, loss) schema this reads the per-source rows
        of :meth:`virtual_link_rows` — the same floats the vectorised
        scoring path (``repro.core.fastscore``) ranks on — so the cache is
        keyed on the *directed* pair; both directions fold the same links
        and agree to within summation order.
        """
        if node_a == node_b:
            return self._zero_qos
        cache = self._qos_cache.get(node_a)
        if cache is None:
            cache = self._qos_cache.setdefault(node_a, {})
        cached = cache.get(node_b)
        if cached is None:
            if self._rows_represent_qos:
                if not self.reachable(node_a, node_b):
                    raise RoutingError(f"no overlay path v{node_a} -> v{node_b}")
                delay_row, loss_row = self.virtual_link_rows(node_a)
                cached = QoSVector(
                    self._zero_qos.schema,
                    [float(delay_row[node_b]), float(loss_row[node_b])],
                )
            else:
                path = self.overlay_path(node_a, node_b)
                cached = combine_all(
                    (self.network.link(link_id).qos for link_id in path),
                    self._zero_qos.schema,
                )
            cache[node_b] = cached
        return cached

    def virtual_link_rows(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        """Virtual-link QoS from ``source`` to *every* node, as arrays.

        Returns ``(delay_row, loss_row)``: per destination the delay sum
        and the composed loss rate along the delay-shortest path.
        Unreachable destinations — including crashed ones — have infinite
        delay (loss is left at 0 there; callers must mask on reachability
        or liveness).  Both arrays are **read-only views** of router state,
        valid until :meth:`row_version` moves for this source; the loss
        accumulation walks the shortest-path tree in distance order,
        applying the same raw-space composition ``1 − (1 − a)(1 − b)`` per
        tree edge that :meth:`virtual_link_qos` folds along the path, so
        both views agree.
        """
        tree = self._annotated(source)
        return tree.distances, tree.loss_row

    def virtual_link(self, node_a: int, node_b: int) -> VirtualLinkPath:
        """The virtual link between two (possibly identical) nodes."""
        path = self.overlay_path(node_a, node_b)
        return VirtualLinkPath(
            src_node_id=node_a,
            dst_node_id=node_b,
            overlay_link_ids=path,
            qos=self.virtual_link_qos(node_a, node_b),
        )

    def bottleneck_bandwidth_row(
        self, source: int, link_available_kbps: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Bottleneck bandwidth from ``source`` to *every* node, as an array.

        One pass down the shortest-path tree replaces a per-destination
        path walk; ``link_available_kbps`` substitutes a coarse-grain
        per-link view (``GlobalStateManager.link_available_array``) for the
        live residuals.  Entries are ``-inf`` for unreachable destinations
        and ``+inf`` at the source (footnote 8's co-located case).  The
        result is freshly computed — callers cache it keyed on
        (:meth:`row_version`, their link-state version).
        """
        tree = self._annotated(source)
        values = (
            self._link_available
            if link_available_kbps is None
            else link_available_kbps
        )
        row = np.full(len(self.network), -np.inf)
        row[source] = np.inf
        uplink = tree.uplink
        predecessors = tree.predecessors
        for destination in tree.order.tolist():
            link_id = uplink[destination]
            if link_id < 0:  # patched (crashed) leaf
                continue
            upstream = row[predecessors[destination]]
            value = values[link_id]
            row[destination] = value if value < upstream else upstream
        return row

    def available_bandwidth(self, node_a: int, node_b: int) -> float:
        """Current bottleneck bandwidth of the virtual link (live values).

        Walks the tree's uplink arrays directly — no path materialisation
        per query.
        """
        if node_a == node_b:
            return float("inf")
        tree = self._annotated(node_a)
        if not tree.finite[node_b]:
            raise RoutingError(f"no overlay path v{node_a} -> v{node_b}")
        available = np.inf
        values = self._link_available
        uplink = tree.uplink
        predecessors = tree.predecessors
        current = node_b
        while current != node_a:
            value = values[uplink[current]]
            if value < available:
                available = value
            current = int(predecessors[current])
        return float(available)
