"""IP-layer routing over a router graph.

Section 4.1: "The simulator simulates both IP-layer and overlay data routing
using delay-based shortest path routing algorithm."

:class:`IPNetwork` wraps a :class:`~repro.topology.powerlaw.RouterGraph`
with a sparse adjacency matrix and exposes delay-based shortest-path
distances (scipy Dijkstra).  Overlay construction uses these distances to
(a) attach stream processing nodes, (b) pick overlay neighbours by
proximity, and (c) derive overlay link delays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.topology.powerlaw import RouterGraph


class IPNetwork:
    """Delay-based shortest-path routing over an IP router graph."""

    def __init__(self, graph: RouterGraph) -> None:
        self.graph = graph
        n = graph.num_routers
        rows, cols, delays = [], [], []
        for link in graph.links:
            rows.extend((link.router_a, link.router_b))
            cols.extend((link.router_b, link.router_a))
            delays.extend((link.delay_ms, link.delay_ms))
        self._matrix = csr_matrix(
            (np.asarray(delays), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
        )

    @property
    def num_routers(self) -> int:
        return self.graph.num_routers

    def delays_from(self, sources: Sequence[int]) -> np.ndarray:
        """Shortest-path delay (ms) from each source router to every router.

        Returns an array of shape ``(len(sources), num_routers)``;
        unreachable routers are ``inf`` (never happens on connected graphs).
        """
        return dijkstra(self._matrix, directed=False, indices=list(sources))

    def delays_between(self, routers: Sequence[int]) -> np.ndarray:
        """Square matrix of pairwise shortest-path delays among ``routers``."""
        full = self.delays_from(routers)
        return full[:, list(routers)]

    def hop_counts_from(self, sources: Sequence[int]) -> np.ndarray:
        """Shortest-path *hop counts* from each source (unit link weights)."""
        unit = self._matrix.copy()
        unit.data = np.ones_like(unit.data)
        return dijkstra(unit, directed=False, indices=list(sources))

    def delay(self, router_a: int, router_b: int) -> float:
        """Shortest-path delay between one router pair."""
        return float(self.delays_from([router_a])[0, router_b])
