"""Network substrate: power-law IP topology, overlay mesh, routing.

Reproduces Section 4.1's network setup: an Inet-style 3200-router power-law
IP graph, N stream processing nodes connected into a K-neighbour overlay
mesh, and delay-based shortest-path routing on both layers.
"""

from repro.topology.deputy import DeputySelector
from repro.topology.ip_network import IPNetwork
from repro.topology.overlay import (
    InsufficientBandwidthError,
    OverlayLink,
    OverlayNetwork,
    build_overlay_network,
    default_node_capacity_sampler,
)
from repro.topology.powerlaw import (
    PowerLawTopologyGenerator,
    RouterGraph,
    RouterLink,
    sample_powerlaw_degrees,
)
from repro.topology.routing import OverlayRouter, RoutingError

__all__ = [
    "DeputySelector",
    "IPNetwork",
    "OverlayLink",
    "OverlayNetwork",
    "InsufficientBandwidthError",
    "build_overlay_network",
    "default_node_capacity_sampler",
    "PowerLawTopologyGenerator",
    "RouterGraph",
    "RouterLink",
    "sample_powerlaw_degrees",
    "OverlayRouter",
    "RoutingError",
]
