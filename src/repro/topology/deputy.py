"""Deputy node selection (Section 3.3).

"When a stream processing request is submitted, the request is redirected
to a node that is closest to the client based on a predefined proximity
metric (e.g., geographical location).  The selected node, called *deputy
node*, initiates the ACP protocol."

:class:`DeputySelector` precomputes IP-layer shortest-path delays from
every overlay node's attachment router to every router, then answers
"which overlay node is closest to this client?" in O(N).  The proximity
metric is network delay — the natural stand-in for geography on a
delay-weighted topology.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.ip_network import IPNetwork
from repro.topology.overlay import OverlayNetwork


class DeputySelector:
    """Closest-overlay-node lookup for client attachment routers."""

    def __init__(self, ip_network: IPNetwork, network: OverlayNetwork) -> None:
        self.network = network
        routers = [node.router_id for node in network.nodes]
        #: shape (num_overlay_nodes, num_routers): delay from each overlay
        #: node's router to every router in the IP graph
        self._delays = ip_network.delays_from(routers)

    def deputy_for_router(self, client_router_id: int) -> int:
        """The overlay node with minimal IP delay to the client's router."""
        if not 0 <= client_router_id < self._delays.shape[1]:
            raise ValueError(f"unknown client router {client_router_id}")
        return int(np.argmin(self._delays[:, client_router_id]))

    def delay_to_deputy(self, client_router_id: int) -> float:
        """IP delay (ms) between the client and its deputy."""
        deputy = self.deputy_for_router(client_router_id)
        return float(self._delays[deputy, client_router_id])

    def deputies_for(self, client_router_ids: Sequence[int]) -> np.ndarray:
        """Vectorised lookup for a batch of clients."""
        return np.argmin(self._delays[:, list(client_router_ids)], axis=0)
