"""Proactive reconfiguration: hotspot-driven live session migration.

The watermark machinery in :mod:`repro.placement.migration` moves
*deployable instances* — it changes which placements future compositions
can pick, and never touches a running session.  Under sustained load
drift (diurnal curves, flash crowds) that is not enough: sessions stay
pinned to the nodes where they were admitted, and a hot node stays hot
until its sessions drain.  This module closes the paper's future-work
direction 3 at the session level, treating migration as a *planned,
cost-priced* operation rather than a fault:

* :class:`HotspotDetector` — consumes the observability layer's
  per-round signals (the same worst-dimension utilisation the watermark
  policy reads, plus the metrics layer's per-window admission pressure)
  and flags **sustained** hot nodes: an EWMA of utilisation must sit
  above the high watermark for ``sustain_rounds`` consecutive rounds.
  One instantaneous spike never triggers a migration.
* :class:`LiveSessionMigrationManager` — per round, picks victim
  sessions on sustained-hot nodes, partially re-composes *only* the
  affected placements onto cool nodes through the shared
  :class:`~repro.core.composer.CompositionEvaluator` (interface
  compatibility, Eqs. 3–5 feasibility, φ ranking — exactly the machinery
  admission uses), and prices every move with a **migration cost model**:
  the state-transfer pause is proportional to the session's accumulated
  state, plus one re-setup handshake along the new composition's critical
  path.  The paused-stream penalty is charged against the session's
  remaining QoS slack (:func:`~repro.core.control.delay_slack_ms`); a
  migration that would blow the slack is rejected — graceful degradation,
  surfaced as ``migrations_aborted_on_slack``.

Execution goes through the session middleware's
:meth:`~repro.middleware.session.SessionManager.begin_migration` /
:meth:`~repro.middleware.session.SessionManager.complete_migration`
pair: the session holds exactly one committed allocation at every
instant, and a fault or lifetime expiry mid-transfer supersedes the
migration cleanly (the pending commit no-ops).

A zero plan (:meth:`MigrationPlan.none`) builds no manager, draws no
randomness, and leaves runs byte-identical to a migration-free spec —
the same invisibility contract :class:`~repro.simulation.failures.FaultPlan`
honours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.composer import CompositionContext, CompositionEvaluator
from repro.core.control import delay_slack_ms
from repro.middleware.session import SessionManager, StreamSession
from repro.model.component import Component
from repro.model.component_graph import ComponentGraph
from repro.model.node import Node
from repro.model.qos_model import LoadDependentQoSModel
from repro.observability import NULL_RECORDER, Recorder


@dataclass(frozen=True)
class LiveMigrationPolicy:
    """Knobs of the hotspot detector and the migration cost model.

    Attributes:
        ewma_alpha: Smoothing factor of the per-node utilisation EWMA
            (1.0 = instantaneous, the detector degenerates to a spike
            detector).
        high_watermark: A node is *hot* while its EWMA utilisation
            exceeds this.
        low_watermark: Only nodes whose EWMA utilisation is at or below
            this receive migrated placements (the cool pool).
        sustain_rounds: Consecutive rounds the EWMA must sit above the
            high watermark before a node is flagged — the sustained-
            hotspot filter.
        min_admission_pressure: Optional gate on the metrics layer's
            per-window admission pressure: rounds whose last closed
            window rejected a smaller fraction of requests for
            contention do not advance hot streaks (0.0 disables the
            gate).
        max_session_migrations_per_round: Round-level churn cap across
            all hot nodes; 0 disables live migration entirely (the zero
            plan).
        candidate_sample: Candidate components probed per affected
            placement, sampled from the cool pool with the manager's
            dedicated rng (the ACP-style probing ratio of the migration
            planner).
        state_kb_per_unit: Retained operator state per processed data
            unit, in kilobits — accumulated state grows with the
            session's lifetime throughput.
        transfer_kbps: State-transfer bandwidth between the old and new
            hosts; pause time is state size divided by this.
        pause_slack_fraction: Fraction of the session's remaining QoS
            delay slack the paused stream may consume; a plan whose
            pause exceeds ``fraction × slack`` is rejected.
    """

    ewma_alpha: float = 0.3
    high_watermark: float = 0.75
    low_watermark: float = 0.45
    sustain_rounds: int = 3
    min_admission_pressure: float = 0.0
    max_session_migrations_per_round: int = 4
    candidate_sample: int = 4
    state_kb_per_unit: float = 0.05
    transfer_kbps: float = 100_000.0
    pause_slack_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1, got "
                f"{self.low_watermark}, {self.high_watermark}"
            )
        if self.sustain_rounds < 1:
            raise ValueError(
                f"sustain_rounds must be >= 1, got {self.sustain_rounds}"
            )
        if not 0.0 <= self.min_admission_pressure <= 1.0:
            raise ValueError(
                "min_admission_pressure must be in [0, 1], got "
                f"{self.min_admission_pressure}"
            )
        if self.max_session_migrations_per_round < 0:
            raise ValueError(
                "max_session_migrations_per_round must be >= 0, got "
                f"{self.max_session_migrations_per_round}"
            )
        if self.candidate_sample < 1:
            raise ValueError(
                f"candidate_sample must be >= 1, got {self.candidate_sample}"
            )
        if self.state_kb_per_unit < 0.0:
            raise ValueError(
                f"state_kb_per_unit must be non-negative, got "
                f"{self.state_kb_per_unit}"
            )
        if self.transfer_kbps <= 0.0:
            raise ValueError(
                f"transfer_kbps must be positive, got {self.transfer_kbps}"
            )
        if not 0.0 < self.pause_slack_fraction <= 1.0:
            raise ValueError(
                "pause_slack_fraction must be in (0, 1], got "
                f"{self.pause_slack_fraction}"
            )


@dataclass(frozen=True)
class MigrationPlan:
    """Declarative live-migration configuration for one run.

    Attached to a :class:`~repro.experiments.config.RunSpec` via
    ``with_migration``; the zero plan (:meth:`none`) is byte-identical
    to running with no migration manager at all.
    """

    policy: LiveMigrationPolicy = field(default_factory=LiveMigrationPolicy)
    #: rebalance round period in simulated seconds
    period_s: float = 60.0

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    @classmethod
    def none(cls) -> "MigrationPlan":
        """The zero plan: detection and migration both disabled."""
        return cls(
            policy=LiveMigrationPolicy(max_session_migrations_per_round=0)
        )

    @property
    def is_zero(self) -> bool:
        return self.policy.max_session_migrations_per_round == 0


@dataclass(frozen=True)
class SessionMigrationRecord:
    """One committed-to-transfer live migration (diagnostics)."""

    time: float
    session_id: int
    hot_node: int
    #: per-placement moves: (function_index, from_node, to_node)
    moved: Tuple[Tuple[int, int, int], ...]
    #: paused-stream time charged by the cost model, in seconds
    pause_s: float


class HotspotDetector:
    """Sustained-hotspot detection over per-round utilisation EWMAs."""

    def __init__(
        self,
        policy: LiveMigrationPolicy = LiveMigrationPolicy(),
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.policy = policy
        self.recorder = recorder
        self._ewma: Dict[int, float] = {}
        self._streak: Dict[int, int] = {}
        #: rebalance rounds observed
        self.rounds = 0

    @staticmethod
    def _utilization(node: Node) -> float:
        return LoadDependentQoSModel.utilization(node.available, node.capacity)

    def observe(
        self, nodes: Tuple[Node, ...], admission_pressure: float = 0.0
    ) -> None:
        """Fold one round of utilisation gauges into the EWMAs.

        ``admission_pressure`` is the metrics layer's last closed-window
        contention fraction; when the policy gates on it, low-pressure
        rounds reset no streaks but do not advance them either — hot
        streaks only grow while the system is actually turning requests
        away.
        """
        alpha = self.policy.ewma_alpha
        pressured = admission_pressure >= self.policy.min_admission_pressure
        for node in nodes:
            if not node.alive:
                # a crashed node serves nothing; its streak dies with it
                self._ewma.pop(node.node_id, None)
                self._streak.pop(node.node_id, None)
                continue
            utilization = self._utilization(node)
            previous = self._ewma.get(node.node_id)
            ewma = (
                utilization
                if previous is None
                else alpha * utilization + (1.0 - alpha) * previous
            )
            self._ewma[node.node_id] = ewma
            if ewma > self.policy.high_watermark and pressured:
                self._streak[node.node_id] = (
                    self._streak.get(node.node_id, 0) + 1
                )
            elif ewma <= self.policy.high_watermark:
                self._streak[node.node_id] = 0
        self.rounds += 1
        if self.recorder.enabled:
            self.recorder.set_gauge(
                "migration.hot_nodes", float(len(self.hot_nodes()))
            )

    def ewma(self, node_id: int) -> float:
        """Smoothed utilisation of a node (0.0 before the first round)."""
        return self._ewma.get(node_id, 0.0)

    def hot_nodes(self) -> List[int]:
        """Sustained-hot node ids, hottest EWMA first (ties by id)."""
        hot = [
            node_id
            for node_id, streak in self._streak.items()
            if streak >= self.policy.sustain_rounds
        ]
        hot.sort(key=lambda node_id: (-self._ewma[node_id], node_id))
        return hot

    def is_cool(self, node_id: int) -> bool:
        """Whether a node belongs to the migration target pool."""
        return self.ewma(node_id) <= self.policy.low_watermark


class LiveSessionMigrationManager:
    """Plans and executes cost-priced live session migrations."""

    def __init__(
        self,
        context: CompositionContext,
        plan: MigrationPlan,
        rng: random.Random,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.context = context
        self.plan = plan
        self.policy = plan.policy
        self.period_s = plan.period_s
        self.rng = rng
        self.recorder = recorder
        self.evaluator = CompositionEvaluator(context)
        self.detector = HotspotDetector(plan.policy, recorder=recorder)
        self._sessions: Optional[SessionManager] = None
        self._records: List[SessionMigrationRecord] = []
        #: migrations rejected because the pause would blow the QoS slack
        self.migrations_aborted_on_slack = 0
        #: victims skipped for lack of a feasible cool-node re-composition
        self.migrations_skipped_no_target = 0
        #: paused-stream seconds charged across committed transfers
        self.migration_paused_stream_s = 0.0
        #: probe messages spent evaluating migration candidates
        self.migration_probe_messages = 0

    def bind_sessions(self, sessions: SessionManager) -> None:
        """Attach the session table the manager migrates (the simulator
        calls this once at construction)."""
        self._sessions = sessions

    @property
    def records(self) -> Tuple[SessionMigrationRecord, ...]:
        return tuple(self._records)

    @property
    def migrations_started(self) -> int:
        return len(self._records)

    # -- the round ----------------------------------------------------------

    def run_round(
        self, now: float, admission_pressure: float = 0.0
    ) -> List[SessionMigrationRecord]:
        """One rebalance round: observe, detect, plan, execute.

        Returns the migrations whose state transfer started this round;
        the caller schedules each one's commit ``pause_s`` later.  The
        detector observes every round (pure reads — no decisions change
        while no node is sustained-hot), so streaks build continuously.
        """
        if self._sessions is None:
            raise RuntimeError(
                "bind_sessions() must be called before run_round()"
            )
        self.detector.observe(
            self.context.network.nodes, admission_pressure=admission_pressure
        )
        budget = self.policy.max_session_migrations_per_round
        if budget == 0:
            return []
        hot = self.detector.hot_nodes()
        if not hot:
            return []
        if self.recorder.enabled:
            self.recorder.emit(
                "migration.plan",
                time=now,
                hot_nodes=tuple(hot),
                budget=budget,
            )
        performed: List[SessionMigrationRecord] = []
        for hot_node in hot:
            if len(performed) >= budget:
                break
            # cheapest accumulated state first: young sessions transfer
            # fastest, so the round relieves the node with the least
            # paused-stream time (ties broken by session id)
            victims = sorted(
                self._sessions.sessions_using_node(hot_node),
                key=lambda s: (self._accumulated_units(s, now), s.session_id),
            )
            for victim in victims:
                if len(performed) >= budget:
                    break
                record = self._try_migrate(victim, hot_node, now)
                if record is not None:
                    performed.append(record)
        self._records.extend(performed)
        return performed

    # -- the cost model -----------------------------------------------------

    def _accumulated_units(self, session: StreamSession, now: float) -> float:
        """Data units the session has carried: explicit Process() batches
        plus the continuous stream its admitted rate implies."""
        age_s = max(0.0, now - session.created_at)
        return session.units_processed + session.request.stream_rate * age_s

    def _pause_s(
        self, session: StreamSession, composition: ComponentGraph, now: float
    ) -> float:
        """Paused-stream time: state transfer plus one re-setup handshake
        (probe out + confirmation back) along the new critical path."""
        state_kb = (
            self._accumulated_units(session, now) * self.policy.state_kb_per_unit
        )
        transfer_s = state_kb / self.policy.transfer_kbps
        handshake_s = 2.0 * composition.worst_link_delay_ms() / 1000.0
        return transfer_s + handshake_s

    # -- planning -----------------------------------------------------------

    def _candidate_pool(
        self, current: Component, hot_node: int
    ) -> List[Component]:
        """Cool-node candidates for one affected placement, id-ordered."""
        pool = [
            candidate
            for candidate in self.context.registry.candidates(current.function)
            if candidate.node_id != hot_node
            and candidate.component_id != current.component_id
            and self.context.network.node(candidate.node_id).alive
            and self.detector.is_cool(candidate.node_id)
        ]
        pool.sort(key=lambda candidate: candidate.component_id)
        return pool

    def _try_migrate(
        self, session: StreamSession, hot_node: int, now: float
    ) -> Optional[SessionMigrationRecord]:
        request = session.request
        graph = request.function_graph
        assignment = {
            index: session.composition.component(index)
            for index in range(len(graph))
        }
        affected = [
            index
            for index in range(len(graph))
            if assignment[index].node_id == hot_node
        ]
        moved: List[Tuple[int, int, int]] = []
        sample = self.policy.candidate_sample
        for index in affected:
            pool = self._candidate_pool(assignment[index], hot_node)
            if len(pool) > sample:
                pool = sorted(
                    self.rng.sample(pool, sample),
                    key=lambda candidate: candidate.component_id,
                )
            best: Optional[Tuple[float, int, Component]] = None
            for candidate in pool:
                self.migration_probe_messages += 1
                trial = dict(assignment)
                trial[index] = candidate
                if not self.evaluator.interface_compatible(request, trial):
                    continue
                composition = self.evaluator.build_component_graph(
                    request, trial
                )
                ok, _reason = self.evaluator.feasible(composition)
                if not ok:
                    continue
                key = (
                    self.evaluator.phi(composition),
                    candidate.component_id,
                    candidate,
                )
                if best is None or key[:2] < best[:2]:
                    best = key
            if best is None:
                self.migrations_skipped_no_target += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "migration.abort",
                        session_id=session.session_id,
                        reason="no_cool_target",
                        function_index=index,
                    )
                return None
            moved.append((index, hot_node, best[2].node_id))
            assignment[index] = best[2]
        if not moved:
            return None

        composition = self.evaluator.build_component_graph(request, assignment)
        pause_s = self._pause_s(session, composition, now)
        slack_ms = delay_slack_ms(
            self.evaluator.worst_effective_qos(composition),
            request.qos_requirement,
        )
        budget_ms = self.policy.pause_slack_fraction * slack_ms
        if pause_s * 1000.0 > budget_ms:
            # graceful degradation: the paused stream would blow the
            # session's QoS slack, so the hotspot is left alone
            self.migrations_aborted_on_slack += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "migration.abort",
                    session_id=session.session_id,
                    reason="qos_slack",
                    pause_ms=pause_s * 1000.0,
                    slack_ms=slack_ms,
                )
                self.recorder.inc("migration.aborted_on_slack")
            return None

        assert self._sessions is not None
        if not self._sessions.begin_migration(
            session.session_id, composition, pause_s
        ):
            return None
        self.migration_paused_stream_s += pause_s
        record = SessionMigrationRecord(
            time=now,
            session_id=session.session_id,
            hot_node=hot_node,
            moved=tuple(moved),
            pause_s=pause_s,
        )
        if self.recorder.enabled:
            self.recorder.inc("migration.transfers")
        return record
