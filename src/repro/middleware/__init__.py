"""Session-oriented middleware: the paper's Find/Process/Close interface."""

from repro.middleware.migration import (
    HotspotDetector,
    LiveMigrationPolicy,
    LiveSessionMigrationManager,
    MigrationPlan,
    SessionMigrationRecord,
)
from repro.middleware.session import (
    ProcessingResult,
    RecoveryPolicy,
    SessionError,
    SessionManager,
    SessionState,
    StreamSession,
)

__all__ = [
    "SessionManager",
    "StreamSession",
    "SessionState",
    "SessionError",
    "ProcessingResult",
    "RecoveryPolicy",
    "HotspotDetector",
    "LiveMigrationPolicy",
    "LiveSessionMigrationManager",
    "MigrationPlan",
    "SessionMigrationRecord",
]
