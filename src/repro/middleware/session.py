"""Session-oriented stream processing middleware (Section 2.2).

The paper's middleware interface:

* ``sessionId = Find(ξ, Q_req, R_req)`` — "invokes the optimal component
  composition algorithm to find the best component graph.  If the
  composition is successful, the middleware creates a session record with
  a session identifier ... Otherwise, a null sessionId is returned."
* ``Process(sessionId, data streams)`` — "starts the continuous data
  stream processing using the application's component graph."
* ``Close(sessionId)`` — "tears down the stream processing session ...
  The corresponding session information is deleted from the session
  table."

:class:`SessionManager` implements exactly that on top of a composer and
the allocator.  ``process`` additionally reports what the composed
application would do to a batch of data units (output rate from the
per-stage selectivities, expected end-to-end delay and loss from the
composition's QoS aggregation) — the observable behaviour examples and
integration tests assert on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.allocation.allocator import AdmissionError, ResourceAllocator, SessionAllocation
from repro.core.composer import Composer, CompositionOutcome
from repro.model.component_graph import ComponentGraph
from repro.model.request import StreamRequest
from repro.observability import NULL_RECORDER, Recorder


class SessionState(enum.Enum):
    COMPOSED = "composed"
    PROCESSING = "processing"
    CLOSED = "closed"
    FAILED = "failed"


class SessionError(RuntimeError):
    """Raised on operations against unknown or closed sessions."""


@dataclass
class ProcessingResult:
    """What one Process() call did to a batch of data units."""

    session_id: int
    units_in: float
    units_out: float
    expected_delay_ms: float
    expected_loss_rate: float


@dataclass
class StreamSession:
    """One live stream processing session (a session-table record)."""

    session_id: int
    request: StreamRequest
    composition: ComponentGraph
    allocation: SessionAllocation
    state: SessionState
    created_at: float
    units_processed: float = 0.0


class SessionManager:
    """The Find / Process / Close middleware over one composer."""

    def __init__(
        self,
        composer: Composer,
        allocator: ResourceAllocator,
        clock: Callable[[], float] = lambda: 0.0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.composer = composer
        self.allocator = allocator
        self.clock = clock
        self.recorder = recorder
        self._sessions: Dict[int, StreamSession] = {}
        self._session_ids = itertools.count(1)
        #: sessions ever created (the session id counter never reuses ids)
        self.sessions_created = 0

    # -- Find --------------------------------------------------------------

    def find(
        self, request: StreamRequest
    ) -> Tuple[Optional[int], CompositionOutcome]:
        """Compose and admit ``request``; returns (sessionId | None, outcome).

        A None session id indicates composition failure — either no
        qualified composition was found, or (in a concurrent deployment)
        the admission lost a race after probing.
        """
        outcome = self.composer.compose(request)
        if not outcome.success or outcome.composition is None:
            self.allocator.cancel_transient(request.request_id)
            return None, outcome
        try:
            allocation = self.allocator.commit(outcome.composition)
        except AdmissionError:
            self.allocator.cancel_transient(request.request_id)
            if self.recorder.enabled:
                self.recorder.emit(
                    "session.admission_race", request_id=request.request_id
                )
            # the composer's outcome object must stay untouched — other
            # holders (metrics, diagnostics) would silently see a
            # composition flip to failed under them
            failed = replace(
                outcome,
                success=False,
                composition=None,
                phi=None,
                failure_reason="admission_race",
            )
            return None, failed
        session_id = next(self._session_ids)
        self._sessions[session_id] = StreamSession(
            session_id=session_id,
            request=request,
            composition=outcome.composition,
            allocation=allocation,
            state=SessionState.COMPOSED,
            created_at=self.clock(),
        )
        self.sessions_created += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "session.open",
                session_id=session_id,
                request_id=request.request_id,
                phi=outcome.phi,
            )
        return session_id, outcome

    # -- Process -------------------------------------------------------------

    def process(self, session_id: int, units_in: float) -> ProcessingResult:
        """Push ``units_in`` data units through the session's composition."""
        session = self._get_open(session_id)
        if units_in < 0.0:
            raise ValueError(f"units_in must be non-negative, got {units_in}")
        session.state = SessionState.PROCESSING
        graph = session.request.function_graph
        # output volume: per-unit, the product of selectivities along the
        # rate propagation; reuse the graph's rate algebra with the batch
        # size standing in for the rate.
        if units_in > 0.0:
            rates = graph.input_rates(units_in)
            units_out = sum(
                graph.node(sink).function.output_rate(rates[sink])
                for sink in graph.sinks()
            )
        else:
            units_out = 0.0
        worst_qos = self.composer.evaluator.worst_effective_qos(
            session.composition
        )
        loss = worst_qos["loss_rate"]
        result = ProcessingResult(
            session_id=session_id,
            units_in=units_in,
            units_out=units_out * (1.0 - loss),
            expected_delay_ms=worst_qos["delay"],
            expected_loss_rate=loss,
        )
        session.units_processed += units_in
        return result

    # -- Close ----------------------------------------------------------------

    def close(self, session_id: int) -> None:
        """Tear down the session and delete its record."""
        session = self._get_open(session_id)
        self.allocator.release(session.allocation)
        session.state = SessionState.CLOSED
        del self._sessions[session_id]
        if self.recorder.enabled:
            self.recorder.emit(
                "session.close",
                session_id=session_id,
                lifetime_s=self.clock() - session.created_at,
            )

    def close_if_open(self, session_id: int) -> bool:
        """Close the session if it is still in the table; False otherwise.

        The simulator's scheduled end-of-session events use this: a session
        may already be gone because a node crash terminated it.
        """
        if session_id not in self._sessions:
            return False
        self.close(session_id)
        return True

    # -- failure handling ---------------------------------------------------

    def terminate_sessions_using_node(self, node_id: int) -> int:
        """Kill every session with a component on ``node_id``.

        Used by failure injection: the application crashed with the node.
        All of the session's resources are released (including the
        bookkeeping on the crashed node).  Returns the number of sessions
        terminated.
        """
        doomed = [
            session
            for session in self._sessions.values()
            if node_id in session.allocation.node_demands
        ]
        for session in doomed:
            self.allocator.release(session.allocation)
            session.state = SessionState.FAILED
            del self._sessions[session.session_id]
        if doomed and self.recorder.enabled:
            self.recorder.emit(
                "session.killed", node_id=node_id, count=len(doomed)
            )
        return len(doomed)

    # -- introspection -----------------------------------------------------------

    def session(self, session_id: int) -> StreamSession:
        return self._get_open(session_id)

    @property
    def active_session_count(self) -> int:
        return len(self._sessions)

    def _get_open(self, session_id: int) -> StreamSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown or closed session {session_id}")
        return session
