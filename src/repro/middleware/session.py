"""Session-oriented stream processing middleware (Section 2.2).

The paper's middleware interface:

* ``sessionId = Find(ξ, Q_req, R_req)`` — "invokes the optimal component
  composition algorithm to find the best component graph.  If the
  composition is successful, the middleware creates a session record with
  a session identifier ... Otherwise, a null sessionId is returned."
* ``Process(sessionId, data streams)`` — "starts the continuous data
  stream processing using the application's component graph."
* ``Close(sessionId)`` — "tears down the stream processing session ...
  The corresponding session information is deleted from the session
  table."

:class:`SessionManager` implements exactly that on top of a composer and
the allocator.  ``process`` additionally reports what the composed
application would do to a batch of data units (output rate from the
per-stage selectivities, expected end-to-end delay and loss from the
composition's QoS aggregation) — the observable behaviour examples and
integration tests assert on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.allocation.allocator import AdmissionError, ResourceAllocator, SessionAllocation
from repro.core.composer import Composer, CompositionOutcome
from repro.model.component_graph import ComponentGraph
from repro.model.request import StreamRequest
from repro.observability import NULL_RECORDER, Recorder


class SessionState(enum.Enum):
    COMPOSED = "composed"
    PROCESSING = "processing"
    #: disrupted by a fault; awaiting re-composition against live topology
    RECOVERING = "recovering"
    #: stream paused while accumulated state transfers to a new placement
    MIGRATING = "migrating"
    CLOSED = "closed"
    FAILED = "failed"


class SessionError(RuntimeError):
    """Raised on operations against unknown, closed, or recovering sessions."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Crash-triggered re-composition policy.

    When attached to a :class:`SessionManager`, sessions disrupted by a
    fault enter ``RECOVERING`` instead of being killed outright: their old
    resources are released immediately and :meth:`SessionManager.recover_pending`
    re-composes them against the live topology.  A session that cannot be
    re-admitted within ``recovery_deadline_s`` of its disruption falls back
    to the clean kill of the legacy behaviour.

    ``detection_delay_s`` models the failure-detection lag: the simulator
    waits that long after a fault round before running the first recovery
    sweep, so recovery latency is never optimistically zero.
    """

    recovery_deadline_s: float = 30.0
    detection_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.recovery_deadline_s <= 0.0:
            raise ValueError(
                f"recovery_deadline_s must be positive, got {self.recovery_deadline_s}"
            )
        if self.detection_delay_s < 0.0:
            raise ValueError(
                f"detection_delay_s must be non-negative, got {self.detection_delay_s}"
            )


@dataclass
class ProcessingResult:
    """What one Process() call did to a batch of data units."""

    session_id: int
    units_in: float
    units_out: float
    expected_delay_ms: float
    expected_loss_rate: float


@dataclass
class StreamSession:
    """One live stream processing session (a session-table record)."""

    session_id: int
    request: StreamRequest
    composition: ComponentGraph
    allocation: SessionAllocation
    state: SessionState
    created_at: float
    units_processed: float = 0.0
    #: simulated time the session entered RECOVERING (None while healthy)
    recovering_since: Optional[float] = None
    #: completed fault recoveries over the session's lifetime
    recoveries: int = 0
    #: simulated time the paused stream resumes (None unless MIGRATING)
    migrating_until: Optional[float] = None
    #: completed live migrations over the session's lifetime
    migrations: int = 0


class SessionManager:
    """The Find / Process / Close middleware over one composer."""

    def __init__(
        self,
        composer: Composer,
        allocator: ResourceAllocator,
        clock: Callable[[], float] = lambda: 0.0,
        recorder: Recorder = NULL_RECORDER,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.composer = composer
        self.allocator = allocator
        self.clock = clock
        self.recorder = recorder
        #: None keeps the legacy fail-fast behaviour: faults kill sessions
        self.recovery = recovery
        self._sessions: Dict[int, StreamSession] = {}
        self._session_ids = itertools.count(1)
        #: sessions ever created (the session id counter never reuses ids)
        self.sessions_created = 0
        #: sessions hit by a fault (killed outright or sent to RECOVERING)
        self.sessions_disrupted = 0
        #: disrupted sessions re-admitted by recover_pending()
        self.sessions_recovered = 0
        #: disrupted sessions permanently lost (legacy kills, deadline
        #: expiries, and sessions whose lifetime ended while recovering)
        self.sessions_killed = 0
        #: probe messages spent on recovery re-compositions
        self.recovery_probe_messages = 0
        #: summed disruption->re-admission latency of recovered sessions
        self.recovery_latency_total_s = 0.0
        #: live migrations committed (stream resumed on the new placement)
        self.sessions_migrated = 0
        #: live migrations rolled back at admission (the target filled up
        #: between planning and execution)
        self.migrations_rolled_back = 0

    # -- Find --------------------------------------------------------------

    def find(
        self, request: StreamRequest
    ) -> Tuple[Optional[int], CompositionOutcome]:
        """Compose and admit ``request``; returns (sessionId | None, outcome).

        A None session id indicates composition failure — either no
        qualified composition was found, or (in a concurrent deployment)
        the admission lost a race after probing.
        """
        outcome = self.composer.compose(request)
        if not outcome.success or outcome.composition is None:
            self.allocator.cancel_transient(request.request_id)
            return None, outcome
        try:
            allocation = self.allocator.commit(outcome.composition)
        except AdmissionError:
            self.allocator.cancel_transient(request.request_id)
            if self.recorder.enabled:
                self.recorder.emit(
                    "session.admission_race", request_id=request.request_id
                )
            # the composer's outcome object must stay untouched — other
            # holders (metrics, diagnostics) would silently see a
            # composition flip to failed under them
            failed = replace(
                outcome,
                success=False,
                composition=None,
                phi=None,
                failure_reason="admission_race",
            )
            return None, failed
        session_id = next(self._session_ids)
        self._sessions[session_id] = StreamSession(
            session_id=session_id,
            request=request,
            composition=outcome.composition,
            allocation=allocation,
            state=SessionState.COMPOSED,
            created_at=self.clock(),
        )
        self.sessions_created += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "session.open",
                session_id=session_id,
                request_id=request.request_id,
                phi=outcome.phi,
            )
        return session_id, outcome

    # -- Process -------------------------------------------------------------

    def process(self, session_id: int, units_in: float) -> ProcessingResult:
        """Push ``units_in`` data units through the session's composition."""
        session = self._get_open(session_id)
        if units_in < 0.0:
            raise ValueError(f"units_in must be non-negative, got {units_in}")
        session.state = SessionState.PROCESSING
        graph = session.request.function_graph
        # output volume: per-unit, the product of selectivities along the
        # rate propagation; reuse the graph's rate algebra with the batch
        # size standing in for the rate.
        if units_in > 0.0:
            rates = graph.input_rates(units_in)
            units_out = sum(
                graph.node(sink).function.output_rate(rates[sink])
                for sink in graph.sinks()
            )
        else:
            units_out = 0.0
        worst_qos = self.composer.evaluator.worst_effective_qos(
            session.composition
        )
        loss = worst_qos["loss_rate"]
        result = ProcessingResult(
            session_id=session_id,
            units_in=units_in,
            units_out=units_out * (1.0 - loss),
            expected_delay_ms=worst_qos["delay"],
            expected_loss_rate=loss,
        )
        session.units_processed += units_in
        return result

    # -- Close ----------------------------------------------------------------

    def close(self, session_id: int) -> None:
        """Tear down the session and delete its record."""
        self._close(self._get_open(session_id))

    def _close(self, session: StreamSession) -> None:
        self.allocator.release(session.allocation)
        session.state = SessionState.CLOSED
        session.migrating_until = None
        del self._sessions[session.session_id]
        if self.recorder.enabled:
            self.recorder.emit(
                "session.close",
                session_id=session.session_id,
                lifetime_s=self.clock() - session.created_at,
            )

    def close_if_open(self, session_id: int) -> bool:
        """Close the session if it is still in the table; False otherwise.

        A session may already be gone because a node crash terminated it.
        Raises :class:`SessionError` on a ``RECOVERING`` session — it is
        neither open nor gone; callers that must tolerate the race use
        :meth:`close_or_abandon`.
        """
        if session_id not in self._sessions:
            return False
        self.close(session_id)
        return True

    def close_or_abandon(self, session_id: int) -> bool:
        """End-of-lifetime close that tolerates every session state.

        The simulator's scheduled end-of-session events use this: the
        session may be gone (crash-killed), open (normal close), or
        ``RECOVERING`` — in which case its lifetime ended before recovery
        completed, so it is abandoned and counted as a kill.  A
        ``MIGRATING`` session whose lifetime expires mid-transfer still
        holds (exactly one set of) resources, so it is closed normally;
        the pending commit then finds no record and no-ops.  Returns True
        if a session record was removed.
        """
        session = self._sessions.get(session_id)
        if session is None:
            return False
        if session.state is SessionState.RECOVERING:
            self._kill_recovering(session, "expired_while_recovering")
            return True
        self._close(session)
        return True

    # -- failure handling ---------------------------------------------------

    def terminate_sessions_using_node(self, node_id: int) -> int:
        """Disrupt every session with a component on ``node_id``.

        Used by failure injection: the application crashed with the node.
        All of the session's resources are released (including the
        bookkeeping on the crashed node).  Without a :class:`RecoveryPolicy`
        the sessions are killed outright — the legacy behaviour; with one,
        they enter ``RECOVERING`` and await :meth:`recover_pending`.
        Sessions already recovering hold no resources and are skipped (the
        double-disruption race: a second fault cannot kill a session twice).
        ``MIGRATING`` sessions *do* hold resources (the new placement was
        committed when the transfer began) and are disrupted like any
        other; their pending migration commit then no-ops.
        Returns the number of sessions disrupted.
        """
        doomed = [
            session
            for session in self._sessions.values()
            if session.state is not SessionState.RECOVERING
            and node_id in session.allocation.node_demands
        ]
        return self._disrupt(doomed, "node", node_id)

    def terminate_sessions_using_link(self, link_id: int) -> int:
        """Disrupt every session whose virtual links cross overlay link
        ``link_id`` — the per-link analogue of
        :meth:`terminate_sessions_using_node`."""
        doomed = [
            session
            for session in self._sessions.values()
            if session.state is not SessionState.RECOVERING
            and link_id in session.allocation.link_demands
        ]
        return self._disrupt(doomed, "link", link_id)

    def _disrupt(
        self, doomed: list, entity_kind: str, entity_id: int
    ) -> int:
        recovering = self.recovery is not None
        now = self.clock()
        for session in doomed:
            self.allocator.release(session.allocation)
            self.sessions_disrupted += 1
            # a fault mid-migration supersedes the transfer: the one live
            # allocation was just released, so the session must land in
            # exactly one of RECOVERING / killed
            session.migrating_until = None
            if recovering:
                session.state = SessionState.RECOVERING
                session.recovering_since = now
            else:
                session.state = SessionState.FAILED
                del self._sessions[session.session_id]
                self.sessions_killed += 1
        if doomed and self.recorder.enabled:
            self.recorder.emit(
                "session.recovering" if recovering else "session.killed",
                **{entity_kind + "_id": entity_id, "count": len(doomed)},
            )
        return len(doomed)

    def recover_pending(self, now: Optional[float] = None) -> int:
        """Re-compose every ``RECOVERING`` session against live topology.

        Each pending session is re-composed with the manager's composer; on
        success the new allocation is committed and the session returns to
        ``COMPOSED`` with its recovery latency recorded.  A session past
        its recovery deadline — or one whose re-admission loses a race —
        falls back to a clean kill.  Sessions that merely fail to compose
        this sweep stay ``RECOVERING`` until their deadline.  Returns the
        number of sessions recovered this sweep.
        """
        if self.recovery is None:
            return 0
        if now is None:
            now = self.clock()
        deadline_s = self.recovery.recovery_deadline_s
        pending = sorted(
            session_id
            for session_id, session in self._sessions.items()
            if session.state is SessionState.RECOVERING
        )
        recovered = 0
        for session_id in pending:
            session = self._sessions[session_id]
            assert session.recovering_since is not None
            if now - session.recovering_since > deadline_s + 1e-9:
                self._kill_recovering(session, "recovery_deadline")
                continue
            outcome = self.composer.compose(session.request)
            self.recovery_probe_messages += outcome.probe_messages
            if not outcome.success or outcome.composition is None:
                self.allocator.cancel_transient(session.request.request_id)
                continue  # retry at the next sweep until the deadline
            try:
                allocation = self.allocator.commit(outcome.composition)
            except AdmissionError:
                self.allocator.cancel_transient(session.request.request_id)
                continue
            latency_s = now - session.recovering_since
            session.composition = outcome.composition
            session.allocation = allocation
            session.state = SessionState.COMPOSED
            session.recovering_since = None
            session.recoveries += 1
            self.sessions_recovered += 1
            self.recovery_latency_total_s += latency_s
            recovered += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "session.recovered",
                    session_id=session_id,
                    latency_s=latency_s,
                    probe_messages=outcome.probe_messages,
                )
        return recovered

    def _kill_recovering(self, session: StreamSession, reason: str) -> None:
        """Give up on a recovering session (resources already released)."""
        session.state = SessionState.FAILED
        session.recovering_since = None
        del self._sessions[session.session_id]
        self.sessions_killed += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "session.recovery_failed",
                session_id=session.session_id,
                reason=reason,
            )

    # -- live migration ------------------------------------------------------

    def sessions_using_node(self, node_id: int) -> Tuple[StreamSession, ...]:
        """Active (COMPOSED/PROCESSING) sessions holding resources on
        ``node_id``, in session-id order — the victim pool live migration
        plans over.  Sessions already migrating or recovering are excluded:
        one in-flight transition per session at a time."""
        return tuple(
            session
            for session in sorted(
                self._sessions.values(), key=lambda s: s.session_id
            )
            if session.state
            in (SessionState.COMPOSED, SessionState.PROCESSING)
            and node_id in session.allocation.node_demands
        )

    def begin_migration(
        self, session_id: int, composition: ComponentGraph, pause_s: float
    ) -> bool:
        """Atomically swap the session onto ``composition`` and pause it.

        The old allocation is released and the new one committed in one
        step (safe in the single-threaded simulator); on an admission race
        — the target filled up between planning and execution — the old
        footprint is re-admitted (it just freed exactly those resources,
        so the rollback cannot fail) and False is returned.  On success
        the session enters ``MIGRATING`` until the caller commits it via
        :meth:`complete_migration` after ``pause_s`` of state transfer.
        """
        if pause_s < 0.0:
            raise ValueError(f"pause_s must be non-negative, got {pause_s}")
        session = self._get_open(session_id)
        old_composition = session.composition
        self.allocator.release(session.allocation)
        try:
            allocation = self.allocator.commit(composition)
        except AdmissionError:
            session.allocation = self.allocator.commit(old_composition)
            self.migrations_rolled_back += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "migration.abort",
                    session_id=session_id,
                    reason="admission_race",
                )
            return False
        session.composition = composition
        session.allocation = allocation
        session.state = SessionState.MIGRATING
        session.migrating_until = self.clock() + pause_s
        if self.recorder.enabled:
            self.recorder.emit(
                "migration.start",
                session_id=session_id,
                pause_s=pause_s,
            )
        return True

    def complete_migration(self, session_id: int) -> bool:
        """Resume a ``MIGRATING`` session on its new placement.

        No-ops (returning False) when the session is gone or no longer
        migrating — its lifetime expired mid-transfer, or a fault
        disrupted it and recovery took over.  Either way the session's
        single live allocation was already handled exactly once.
        """
        session = self._sessions.get(session_id)
        if session is None or session.state is not SessionState.MIGRATING:
            return False
        session.state = SessionState.COMPOSED
        session.migrating_until = None
        session.migrations += 1
        self.sessions_migrated += 1
        if self.recorder.enabled:
            self.recorder.emit("migration.commit", session_id=session_id)
            self.recorder.inc("migration.sessions")
        return True

    # -- introspection -----------------------------------------------------------

    def session(self, session_id: int) -> StreamSession:
        return self._get_open(session_id)

    @property
    def active_session_count(self) -> int:
        return len(self._sessions)

    @property
    def recovering_count(self) -> int:
        """Sessions currently awaiting re-composition."""
        return sum(
            1
            for session in self._sessions.values()
            if session.state is SessionState.RECOVERING
        )

    @property
    def migrating_count(self) -> int:
        """Sessions currently paused for a state transfer."""
        return sum(
            1
            for session in self._sessions.values()
            if session.state is SessionState.MIGRATING
        )

    @property
    def mean_recovery_latency_s(self) -> float:
        """Mean disruption-to-readmission latency of recovered sessions."""
        if self.sessions_recovered == 0:
            return 0.0
        return self.recovery_latency_total_s / self.sessions_recovered

    def _get_open(self, session_id: int) -> StreamSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown or closed session {session_id}")
        if session.state is SessionState.RECOVERING:
            raise SessionError(
                f"session {session_id} is recovering from a failure; "
                "it cannot be used until re-composition completes"
            )
        if session.state is SessionState.MIGRATING:
            raise SessionError(
                f"session {session_id} is migrating; its stream is paused "
                "until the state transfer commits"
            )
        return session
