"""Dynamic component migration (the paper's future-work direction 3).

Section 6: "Future research directions for optimal component composition
include ... (3) integrating dynamic component placement (or migration)
with the component composition system."  Footnote 1 already allows it:
"Components can be dynamically migrated among nodes.  The component
composition operates based on the current component placement."

:class:`ComponentMigrationManager` implements a watermark-based policy: at
each round, nodes whose worst-dimension utilisation exceeds the *high*
watermark shed one deployed component instance to the least-loaded node
below the *low* watermark.  Migration moves the deployable instance — it
changes which placements *future* compositions can pick; sessions already
running keep their resources where they were admitted and drain naturally
(exactly footnote 1's semantics: composition operates on the current
placement).

Each migration costs two control messages (deregistration at the source,
registration at the target), surfaced via :attr:`migration_messages` so
experiments can price the mechanism.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.discovery.registry import ComponentRegistry
from repro.model.component import Component
from repro.model.node import Node
from repro.model.qos_model import LoadDependentQoSModel
from repro.observability import NULL_RECORDER, Recorder
from repro.topology.overlay import OverlayNetwork


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration (diagnostics / experiment series)."""

    time: float
    component_id: int
    function_name: str
    from_node: int
    to_node: int


@dataclass(frozen=True)
class MigrationPolicy:
    """Watermark policy knobs.

    Attributes:
        high_watermark: Source threshold — nodes whose worst-dimension
            utilisation exceeds this shed components.
        low_watermark: Target ceiling — only nodes at or below this
            utilisation receive components.
        max_migrations_per_round: Round-level cap, keeping churn bounded.
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.45
    max_migrations_per_round: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1, got "
                f"{self.low_watermark}, {self.high_watermark}"
            )
        if self.max_migrations_per_round < 1:
            raise ValueError("max_migrations_per_round must be >= 1")


def _utilization(node: Node) -> float:
    return LoadDependentQoSModel.utilization(node.available, node.capacity)


class ComponentMigrationManager:
    """Watermark-driven migration of deployed component instances."""

    def __init__(
        self,
        network: OverlayNetwork,
        registry: ComponentRegistry,
        policy: MigrationPolicy = MigrationPolicy(),
        period_s: float = 120.0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.network = network
        self.registry = registry
        self.policy = policy
        self.period_s = period_s
        self.recorder = recorder
        self._records: List[MigrationRecord] = []
        #: control messages spent (2 per migration)
        self.migration_messages = 0

    @property
    def records(self) -> Tuple[MigrationRecord, ...]:
        return tuple(self._records)

    @property
    def migration_count(self) -> int:
        return len(self._records)

    # -- the policy ---------------------------------------------------------

    def _pick_component_to_shed(self, node: Node) -> Optional[Component]:
        """Shed the component whose function is best covered elsewhere.

        Moving an instance of a well-replicated function preserves local
        diversity; a node's *only* instance of a function in the whole
        system is never moved away from a hot node pre-emptively (it would
        just heat another node without helping the hot one's pool).

        Tie-breaking is explicit — ordered by ``(coverage, component_id)``,
        highest coverage then lowest id — so the choice is a pure function
        of system state, stable under any hosting-list ordering.
        """
        best: Optional[Component] = None
        best_key = (1, 0)  # require at least one other instance elsewhere
        for component in node.components:
            coverage = self.registry.candidate_count(component.function)
            key = (coverage, -component.component_id)
            if coverage > 1 and (best is None or key > best_key):
                best = component
                best_key = key
        return best

    def _pick_target(self, component: Component) -> Optional[int]:
        """Least-loaded node below the low watermark not already providing
        the component's function.

        Tie-breaking is explicit — ordered by ``(load, node_id)``, lowest
        load then lowest id — so equal-load candidates resolve the same way
        regardless of node-list ordering.
        """
        best_node: Optional[int] = None
        best_key = (self.policy.low_watermark, -1)
        for node in self.network.nodes:
            if node.node_id == component.node_id:
                continue
            if any(
                hosted.function.function_id == component.function.function_id
                for hosted in node.components
            ):
                continue
            key = (_utilization(node), node.node_id)
            if key[0] < self.policy.low_watermark and (
                best_node is None or key < best_key
            ):
                best_key = key
                best_node = node.node_id
        return best_node

    def run_round(self, now: float = 0.0) -> List[MigrationRecord]:
        """One migration round; returns the migrations performed."""
        hot_nodes = sorted(
            (node for node in self.network.nodes
             if _utilization(node) > self.policy.high_watermark),
            key=lambda node: (-_utilization(node), node.node_id),
        )
        performed: List[MigrationRecord] = []
        for node in hot_nodes:
            if len(performed) >= self.policy.max_migrations_per_round:
                break
            component = self._pick_component_to_shed(node)
            if component is None:
                continue
            target = self._pick_target(component)
            if target is None:
                continue
            performed.append(self._migrate(now, component, target))
        self._records.extend(performed)
        return performed

    def _migrate(
        self, now: float, component: Component, target_node_id: int
    ) -> MigrationRecord:
        source = self.network.node(component.node_id)
        target = self.network.node(target_node_id)
        moved = dataclasses.replace(component, node_id=target_node_id)
        source.unhost(component.component_id)
        self.registry.replace(moved)
        target.host(moved)
        self.migration_messages += 2  # deregister + register
        if self.recorder.enabled:
            self.recorder.emit(
                "migration.instance",
                time=now,
                component_id=component.component_id,
                function=component.function.name,
                from_node=source.node_id,
                to_node=target_node_id,
            )
            self.recorder.inc("migration.instances")
        return MigrationRecord(
            time=now,
            component_id=component.component_id,
            function_name=component.function.name,
            from_node=source.node_id,
            to_node=target_node_id,
        )
