"""Dynamic component placement (the paper's future-work extension 3)."""

from repro.placement.migration import (
    ComponentMigrationManager,
    MigrationPolicy,
    MigrationRecord,
)

__all__ = ["ComponentMigrationManager", "MigrationPolicy", "MigrationRecord"]
