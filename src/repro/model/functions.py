"""Stream processing functions and the function catalog.

Section 2.1: "Each component provides an atomic stream processing function
(f_i) such as filtering, aggregation, correlation, and audio/video analysis";
Section 4.1: "Each node provides a number of components whose functions are
selected from 80 pre-defined functions."

A :class:`StreamFunction` is the *type* of a processing stage.  It carries
the interface information needed for the paper's compatibility check
("the input/output rates of two adjacent components must be compatible ...
based on the component's interface specifications"):

* a set of named stream *formats* the function's components may consume and
  produce, and
* a *selectivity* — the output/input stream-rate ratio (a filter emits fewer
  data units than it receives; a decoder may emit more).

Formats are drawn from a catalog-wide *format universe* shared by all
functions (a stream handed from a filtering stage to an aggregation stage
must speak a common format).  By default every function's interface spans
the whole universe and individual *components* narrow it (Section 2.1 puts
the interface spec on components); the compatibility check then happens
between adjacent components.

The :class:`FunctionCatalog` deterministically generates the paper's 80
pre-defined functions across the categories named in the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

#: (category, base selectivity) pairs used to generate the default catalog.
#: Selectivity is the output-rate / input-rate ratio of the function.
DEFAULT_CATEGORIES: Tuple[Tuple[str, float], ...] = (
    ("filtering", 0.6),
    ("aggregation", 0.3),
    ("correlation", 0.8),
    ("transformation", 1.0),
    ("classification", 0.9),
    ("compression", 0.5),
    ("encryption", 1.0),
    ("analysis", 1.0),
)


@dataclass(frozen=True)
class StreamFunction:
    """An atomic stream processing function type.

    Attributes:
        function_id: Dense integer id, unique within a catalog.
        name: Human-readable name, e.g. ``"filtering-03"``.
        category: Category the function was generated from.
        input_formats: Formats components of this function may accept.
        output_formats: Formats components of this function may produce.
        selectivity: Output-rate / input-rate ratio of the function.
    """

    function_id: int
    name: str
    category: str
    input_formats: FrozenSet[str]
    output_formats: FrozenSet[str]
    selectivity: float = 1.0

    def __post_init__(self) -> None:
        if self.selectivity <= 0.0:
            raise ValueError(f"selectivity must be positive, got {self.selectivity}")
        if not self.input_formats or not self.output_formats:
            raise ValueError(f"function {self.name!r} needs input and output formats")

    def output_rate(self, input_rate: float) -> float:
        """Stream rate emitted when fed ``input_rate`` data units per second."""
        return input_rate * self.selectivity

    def __repr__(self) -> str:
        return f"StreamFunction({self.function_id}:{self.name})"


@dataclass
class FunctionCatalog:
    """The system-wide set of pre-defined stream processing functions.

    The catalog is deterministic: the same parameters always generate the
    same functions, so seeded experiments are reproducible.

    Args:
        size: Number of functions to generate (paper default: 80).
        categories: ``(name, selectivity)`` pairs cycled over while
            generating; defaults to :data:`DEFAULT_CATEGORIES`.
        num_formats: Size of the shared stream-format universe.  Every
            function's interface spans the whole universe; individual
            components may narrow their accepted input formats (see
            ``repro.discovery.deployment``).
    """

    size: int = 80
    categories: Sequence[Tuple[str, float]] = DEFAULT_CATEGORIES
    num_formats: int = 3
    _functions: List[StreamFunction] = field(default_factory=list, repr=False)
    _by_name: Dict[str, StreamFunction] = field(default_factory=dict, repr=False)
    _formats: FrozenSet[str] = field(default_factory=frozenset, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"catalog size must be positive, got {self.size}")
        if self.num_formats <= 0:
            raise ValueError("num_formats must be positive")
        self._formats = frozenset(f"fmt{i}" for i in range(self.num_formats))
        for function_id in range(self.size):
            category, selectivity = self.categories[function_id % len(self.categories)]
            index = function_id // len(self.categories)
            name = f"{category}-{index:02d}"
            function = StreamFunction(
                function_id=function_id,
                name=name,
                category=category,
                input_formats=self._formats,
                output_formats=self._formats,
                selectivity=selectivity,
            )
            self._functions.append(function)
            self._by_name[name] = function

    @property
    def formats(self) -> FrozenSet[str]:
        """The shared stream-format universe."""
        return self._formats

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterator[StreamFunction]:
        return iter(self._functions)

    def __getitem__(self, function_id: int) -> StreamFunction:
        return self._functions[function_id]

    def by_name(self, name: str) -> StreamFunction:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    @property
    def functions(self) -> Tuple[StreamFunction, ...]:
        return tuple(self._functions)
