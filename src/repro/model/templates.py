"""Application template library.

Section 4.1: "The function graph of a stream processing request is randomly
selected from 20 pre-defined stream processing application templates.  Each
function graph is either a path or a DAG with two branch paths.  Each path
or branch path includes [2, 5] nodes."

An :class:`ApplicationTemplate` is a named, reusable function graph ("which
can be provided by the application developer", Section 2.2);
:class:`TemplateLibrary` generates the paper's 20 pre-defined templates from
a function catalog using a seeded RNG, and hands them out uniformly at
random to the workload generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.model.function_graph import FunctionGraph
from repro.model.functions import FunctionCatalog, StreamFunction


@dataclass(frozen=True)
class ApplicationTemplate:
    """A named stream processing application template."""

    template_id: int
    name: str
    graph: FunctionGraph

    def __repr__(self) -> str:
        return f"ApplicationTemplate(#{self.template_id} {self.name}: {self.graph!r})"


class TemplateLibrary:
    """The pre-defined application templates available to users.

    Args:
        catalog: Function catalog to draw stages from.
        size: Number of templates (paper default: 20).
        path_length_range: Inclusive bounds on the number of functions in a
            path, or in each branch of a two-branch DAG (paper: [2, 5]).
        dag_fraction: Fraction of templates shaped as two-branch DAGs; the
            rest are simple paths.
        seed: Seed for the deterministic template generation.
    """

    def __init__(
        self,
        catalog: FunctionCatalog,
        size: int = 20,
        path_length_range: Tuple[int, int] = (2, 5),
        dag_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"library size must be positive, got {size}")
        low, high = path_length_range
        if not (1 <= low <= high):
            raise ValueError(f"invalid path_length_range {path_length_range}")
        if not 0.0 <= dag_fraction <= 1.0:
            raise ValueError(f"dag_fraction must be in [0, 1], got {dag_fraction}")
        self.catalog = catalog
        self._templates: List[ApplicationTemplate] = []
        rng = random.Random(seed)
        for template_id in range(size):
            make_dag = rng.random() < dag_fraction
            if make_dag:
                graph = self._generate_dag(rng, path_length_range)
                name = f"dag-template-{template_id:02d}"
            else:
                graph = self._generate_path(rng, path_length_range)
                name = f"path-template-{template_id:02d}"
            self._templates.append(ApplicationTemplate(template_id, name, graph))

    def _draw_functions(self, rng: random.Random, count: int) -> List[StreamFunction]:
        """Draw ``count`` distinct functions from the catalog."""
        indices = rng.sample(range(len(self.catalog)), count)
        return [self.catalog[i] for i in indices]

    def _generate_path(
        self, rng: random.Random, length_range: Tuple[int, int]
    ) -> FunctionGraph:
        length = rng.randint(*length_range)
        return FunctionGraph.path(self._draw_functions(rng, length))

    def _generate_dag(
        self, rng: random.Random, length_range: Tuple[int, int]
    ) -> FunctionGraph:
        branch_a_length = rng.randint(*length_range)
        branch_b_length = rng.randint(*length_range)
        functions = self._draw_functions(rng, branch_a_length + branch_b_length + 2)
        source = functions[0]
        join = functions[-1]
        branch_a = functions[1 : 1 + branch_a_length]
        branch_b = functions[1 + branch_a_length : -1]
        return FunctionGraph.two_branch(source, branch_a, branch_b, join)

    # -- access ----------------------------------------------------------------

    @property
    def templates(self) -> Tuple[ApplicationTemplate, ...]:
        return tuple(self._templates)

    def __len__(self) -> int:
        return len(self._templates)

    def __getitem__(self, template_id: int) -> ApplicationTemplate:
        return self._templates[template_id]

    def sample(self, rng: random.Random) -> ApplicationTemplate:
        """Uniformly random template (Section 4.1's request model).

        The caller must supply a seeded stream — the library never falls
        back to process-global entropy, so same-seed runs replay exactly.
        """
        return self._templates[rng.randrange(len(self._templates))]

    def functions_used(self) -> Tuple[StreamFunction, ...]:
        """Distinct functions referenced by any template."""
        seen = {}
        for template in self._templates:
            for node in template.graph.nodes:
                seen[node.function.function_id] = node.function
        return tuple(seen[k] for k in sorted(seen))
