"""A bounded recency-ordered mapping for substrate-level caches.

The scale wall the router hits above a few hundred overlay nodes is a
*memory* wall before it is a time wall: per-source shortest-path trees,
path caches, and QoS caches each hold O(N) state per cached source, so an
unbounded cache grows O(N²) once every node has been an upstream at least
once.  :class:`LRUDict` is the one shared primitive that keeps those
caches O(capacity × N): a plain mapping with least-recently-used eviction,
an eviction callback (so owners can drop sibling state and count the
eviction on their recorder), and ``peek`` for invalidation scans that must
not disturb recency order.

Deliberately minimal — no weakrefs, no TTLs, no statistics of its own
beyond :attr:`evictions`.  Determinism note: iteration order is
insertion/recency order (never hash order), so scans over an
:class:`LRUDict` are replay-stable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUDict(Generic[K, V]):
    """A mapping bounded to ``capacity`` entries with LRU eviction.

    ``capacity=None`` disables the bound entirely (the unbounded baseline
    the differential tests compare against).  ``on_evict(key, value)`` is
    invoked after an entry is evicted by an insert that exceeded the
    bound — never for explicit :meth:`pop` / :meth:`clear` removals.
    """

    __slots__ = ("_capacity", "_data", "_on_evict", "evictions")

    def __init__(
        self,
        capacity: Optional[int] = None,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._on_evict = on_evict
        #: entries evicted by the capacity bound since construction
        self.evictions = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        """Keys in recency order, least-recently-used first."""
        return iter(self._data)

    def keys(self) -> List[K]:
        """Snapshot of the keys (LRU first) — safe to delete while walking."""
        return list(self._data)

    def get(self, key: K) -> Optional[V]:
        """Fetch and mark ``key`` most-recently-used (None when absent)."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def __getitem__(self, key: K) -> V:
        """Fetch and mark ``key`` most-recently-used (KeyError when absent)."""
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Fetch without touching recency (for invalidation scans)."""
        return self._data.get(key)

    def __setitem__(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        if self._capacity is not None and len(data) > self._capacity:
            evicted_key, evicted_value = data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted_value)

    def pop(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove ``key`` (no eviction callback; this is owner-driven)."""
        return self._data.pop(key, default)

    def __delitem__(self, key: K) -> None:
        del self._data[key]

    def clear(self) -> None:
        self._data.clear()

    def items(self) -> List[Tuple[K, V]]:
        """Snapshot of ``(key, value)`` pairs in recency order (LRU first)."""
        return list(self._data.items())

    def __repr__(self) -> str:
        bound = "∞" if self._capacity is None else str(self._capacity)
        return f"LRUDict({len(self._data)}/{bound}, evictions={self.evictions})"
