"""Domain model: QoS/resource vectors, functions, components, nodes, graphs.

This subpackage defines the vocabulary of the paper's Section 2 system
model.  Everything here is either immutable data or a small mutable entity
(:class:`Node`) with observable state changes; all algorithms live in
``repro.core`` and all dynamics in ``repro.simulation``.
"""

from repro.model.component import Component
from repro.model.component_graph import ComponentGraph, VirtualLinkPath
from repro.model.function_graph import FunctionGraph, FunctionNode
from repro.model.functions import DEFAULT_CATEGORIES, FunctionCatalog, StreamFunction
from repro.model.node import InsufficientResourcesError, Node
from repro.model.qos import (
    DEFAULT_QOS_SCHEMA,
    MetricKind,
    MetricSpec,
    QoSSchema,
    QoSVector,
    combine_all,
)
from repro.model.request import (
    DEFAULT_KBPS_PER_UNIT,
    StreamRequest,
    derive_bandwidth_requirements,
)
from repro.model.resources import (
    DEFAULT_RESOURCE_SCHEMA,
    ResourceSchema,
    ResourceSpec,
    ResourceVector,
    congestion_terms,
)
from repro.model.templates import ApplicationTemplate, TemplateLibrary

__all__ = [
    "Component",
    "ComponentGraph",
    "VirtualLinkPath",
    "FunctionGraph",
    "FunctionNode",
    "FunctionCatalog",
    "StreamFunction",
    "DEFAULT_CATEGORIES",
    "Node",
    "InsufficientResourcesError",
    "QoSSchema",
    "QoSVector",
    "MetricKind",
    "MetricSpec",
    "DEFAULT_QOS_SCHEMA",
    "combine_all",
    "StreamRequest",
    "derive_bandwidth_requirements",
    "DEFAULT_KBPS_PER_UNIT",
    "ResourceSchema",
    "ResourceSpec",
    "ResourceVector",
    "DEFAULT_RESOURCE_SCHEMA",
    "congestion_terms",
    "ApplicationTemplate",
    "TemplateLibrary",
]
