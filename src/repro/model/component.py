"""Stream processing components.

Section 2.1: "Each node provides a set of stream processing components
{c_1, ..., c_k}.  Each component provides an atomic stream processing
function ...  Each component has well-defined interfaces describing its
input requirements (e.g., data format, stream rate) and output properties.
Each component is associated with (1) a QoS vector ... and (2) a resource
availability vector ... on the node providing c_i."

A :class:`Component` here is the immutable deployed instance: its identity,
the function it implements, the node hosting it, its QoS values, and its
interface specification (accepted input formats, produced output format,
maximum sustainable input stream rate).  The *resource availability* part of
the paper's component state lives on the hosting :class:`~repro.model.node.Node`,
since co-located components share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.model.functions import StreamFunction
from repro.model.qos import QoSVector


@dataclass(frozen=True)
class Component:
    """A deployed stream processing component instance.

    Attributes:
        component_id: Globally unique integer id.
        function: The :class:`StreamFunction` this component implements.
        node_id: Id of the hosting stream processing node.
        qos: Component QoS vector (e.g. processing delay, loss rate).
        input_formats: Stream formats this component accepts.
        output_format: The stream format this component produces.
        max_input_rate: Highest input stream rate (data units/s) the
            component's interface admits; used by the paper's per-hop
            "input/output stream rate compatibility" check.
        attributes: Capability tags the component advertises, e.g.
            ``{"security:high", "licence:commercial"}``.  Requests may
            demand tags (Section 6 names security level and software
            licence as composition constraints); a component qualifies only
            if it advertises every demanded tag.
    """

    component_id: int
    function: StreamFunction
    node_id: int
    qos: QoSVector
    input_formats: FrozenSet[str]
    output_format: str
    max_input_rate: float
    attributes: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.max_input_rate <= 0.0:
            raise ValueError(
                f"max_input_rate must be positive, got {self.max_input_rate}"
            )
        if self.output_format not in self.function.output_formats:
            raise ValueError(
                f"output format {self.output_format!r} is not one of "
                f"{sorted(self.function.output_formats)} for {self.function.name}"
            )
        if not self.input_formats:
            raise ValueError("component must accept at least one input format")
        if not self.input_formats <= self.function.input_formats:
            raise ValueError(
                f"input formats {sorted(self.input_formats)} exceed the function's "
                f"interface {sorted(self.function.input_formats)}"
            )

    def accepts(self, stream_format: str, stream_rate: float) -> bool:
        """The paper's interface compatibility check for an incoming stream.

        True iff this component can consume a stream of ``stream_format`` at
        ``stream_rate`` data units per second.
        """
        return stream_format in self.input_formats and stream_rate <= self.max_input_rate

    def output_rate(self, input_rate: float) -> float:
        """Stream rate this component emits when fed ``input_rate``."""
        return self.function.output_rate(input_rate)

    def compatible_with(self, downstream: "Component") -> bool:
        """Format-level compatibility between ``self`` and a successor."""
        return self.output_format in downstream.input_formats

    def satisfies_attributes(self, required: FrozenSet[str]) -> bool:
        """True iff every demanded capability tag is advertised."""
        return required <= self.attributes

    def __repr__(self) -> str:
        return (
            f"Component(c{self.component_id} {self.function.name}@v{self.node_id})"
        )
