"""Component graphs — composed stream processing applications.

Section 2.1: "We use component graph (λ) to represent a composed stream
processing application. ... The connection between two adjacent components
is called virtual link (l_i), which consists of a set of overlay links."

A :class:`ComponentGraph` is the result of composition: for every function
placement of the request's function graph, a concrete component, and for
every dependency link, the :class:`VirtualLinkPath` its stream will ride.
It is passive data plus pure aggregation logic (end-to-end QoS, congestion
aggregation φ(λ) of Eq. 1); all notions of "current availability" are
injected by the caller so the same graph can be evaluated against precise
probe-collected state, stale global state, or ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.model.component import Component
from repro.model.qos import QoSVector
from repro.model.request import StreamRequest
from repro.model.resources import ResourceVector, congestion_terms


@dataclass(frozen=True)
class VirtualLinkPath:
    """A virtual link between two adjacent components.

    Attributes:
        src_node_id: Overlay node hosting the upstream component.
        dst_node_id: Overlay node hosting the downstream component.
        overlay_link_ids: The overlay links the virtual link consists of, in
            path order.  Empty iff the components are co-located, in which
            case the link "is said to have 0 network delay" (footnote 4) and
            consumes no bandwidth (footnote 8).
        qos: Aggregated QoS of the constituent overlay links.
    """

    src_node_id: int
    dst_node_id: int
    overlay_link_ids: Tuple[int, ...]
    qos: QoSVector

    @property
    def co_located(self) -> bool:
        return not self.overlay_link_ids

    def __repr__(self) -> str:
        if self.co_located:
            return f"VirtualLinkPath(v{self.src_node_id}=v{self.dst_node_id}, co-located)"
        return (
            f"VirtualLinkPath(v{self.src_node_id}->v{self.dst_node_id}, "
            f"{len(self.overlay_link_ids)} overlay links)"
        )


class ComponentGraph:
    """A fully resolved composition λ = (C, L) for a request."""

    __slots__ = ("request", "_assignment", "_links")

    def __init__(
        self,
        request: StreamRequest,
        assignment: Mapping[int, Component],
        links: Mapping[Tuple[int, int], VirtualLinkPath],
    ) -> None:
        graph = request.function_graph
        if set(assignment) != set(range(len(graph))):
            raise ValueError(
                "assignment must cover every function placement: "
                f"got {sorted(assignment)} for {len(graph)} placements"
            )
        for index, component in assignment.items():
            expected = graph.node(index).function
            if component.function is not expected and component.function != expected:
                raise ValueError(
                    f"component {component} provides {component.function.name}, but "
                    f"placement F{index} requires {expected.name} (Eq. 2 violated)"
                )
        if set(links) != set(graph.edges):
            raise ValueError(
                f"links must cover every dependency link: got {sorted(links)}, "
                f"expected {sorted(graph.edges)}"
            )
        for (a, b), link in links.items():
            if link.src_node_id != assignment[a].node_id:
                raise ValueError(
                    f"link {a}->{b} starts at v{link.src_node_id} but F{a}'s "
                    f"component lives on v{assignment[a].node_id}"
                )
            if link.dst_node_id != assignment[b].node_id:
                raise ValueError(
                    f"link {a}->{b} ends at v{link.dst_node_id} but F{b}'s "
                    f"component lives on v{assignment[b].node_id}"
                )
        self.request = request
        self._assignment: Dict[int, Component] = dict(assignment)
        self._links: Dict[Tuple[int, int], VirtualLinkPath] = dict(links)

    # -- accessors ------------------------------------------------------------

    def component(self, function_index: int) -> Component:
        return self._assignment[function_index]

    @property
    def components(self) -> Tuple[Component, ...]:
        return tuple(self._assignment[i] for i in sorted(self._assignment))

    def virtual_link(self, edge: Tuple[int, int]) -> VirtualLinkPath:
        return self._links[edge]

    @property
    def virtual_links(self) -> Dict[Tuple[int, int], VirtualLinkPath]:
        return dict(self._links)

    def node_ids(self) -> Tuple[int, ...]:
        """Distinct overlay nodes used, in function-placement order."""
        seen = []
        for index in sorted(self._assignment):
            node_id = self._assignment[index].node_id
            if node_id not in seen:
                seen.append(node_id)
        return tuple(seen)

    # -- QoS aggregation (Section 2.1 / Eq. 3) ---------------------------------

    def path_qos(
        self, component_qos: Optional[Mapping[int, QoSVector]] = None
    ) -> Dict[Tuple[int, ...], QoSVector]:
        """End-to-end QoS along every source-to-sink function path.

        ``component_qos`` optionally overrides per-placement component QoS
        values — callers evaluating under the load-dependent QoS model
        (``repro.model.qos_model``) pass the effective values; the default
        is each component's deployed base QoS.
        """
        result: Dict[Tuple[int, ...], QoSVector] = {}
        for path in self.request.function_graph.all_paths():
            total = QoSVector.zero(self.request.qos_requirement.schema)
            for position, index in enumerate(path):
                if component_qos is not None:
                    stage_qos = component_qos[index]
                else:
                    stage_qos = self._assignment[index].qos
                total = total.combine(stage_qos)
                if position + 1 < len(path):
                    total = total.combine(self._links[(index, path[position + 1])].qos)
            result[path] = total
        return result

    def qos_satisfied(
        self, component_qos: Optional[Mapping[int, QoSVector]] = None
    ) -> bool:
        """Eq. 3: every source-to-sink path meets the QoS requirement."""
        requirement = self.request.qos_requirement
        return all(
            qos.satisfies(requirement)
            for qos in self.path_qos(component_qos).values()
        )

    def worst_path_qos(
        self, component_qos: Optional[Mapping[int, QoSVector]] = None
    ) -> QoSVector:
        """Per-metric worst accumulation over all paths (critical path)."""
        schema = self.request.qos_requirement.schema
        worst = [0.0] * len(schema)
        for qos in self.path_qos(component_qos).values():
            worst = [max(w, v) for w, v in zip(worst, qos.values)]
        return QoSVector(schema, worst)

    def worst_link_delay_ms(self) -> float:
        """Max over source-to-sink paths of the summed virtual-link delay.

        The network component of the critical path: what one traversal of
        the composed graph's slowest path costs in link delay alone
        (co-located links contribute 0, footnote 4).  The simulator prices
        session setup as one probe wavefront out plus one confirmation
        back along this path.
        """
        worst = 0.0
        for path in self.request.function_graph.all_paths():
            total = 0.0
            for position in range(len(path) - 1):
                edge = (path[position], path[position + 1])
                total += self._links[edge].qos["delay"]
            worst = max(worst, total)
        return worst

    # -- congestion aggregation φ(λ) (Eq. 1) ------------------------------------

    def congestion_aggregation(
        self,
        node_available: Callable[[int], ResourceVector],
        link_available_bw: Callable[[Tuple[int, int]], float],
    ) -> float:
        """Compute φ(λ) = Σ_ci Σ_k r_k/(rr_k + r_k)  +  Σ_li b/(rb + b).

        ``node_available`` maps a node id to its available resource vector
        *before* this request's allocations; ``link_available_bw`` maps a
        dependency link to the available bandwidth of its virtual link
        (``inf`` or any value for co-located links — they contribute 0).

        Residuals are per footnote 5: on a node hosting several of this
        request's components, the residual subtracts *all* of their
        requirements, so co-location is priced correctly.
        """
        request = self.request
        # total demand this request places on each node
        demand_by_node: Dict[int, ResourceVector] = {}
        for index, component in self._assignment.items():
            requirement = request.requirement_for(index)
            node_id = component.node_id
            if node_id in demand_by_node:
                demand_by_node[node_id] = demand_by_node[node_id] + requirement
            else:
                demand_by_node[node_id] = requirement

        total = 0.0
        for index, component in self._assignment.items():
            requirement = request.requirement_for(index)
            node_id = component.node_id
            # rr + r_k where rr = available - (all demand on the node); adding
            # back this component's own requirement prices co-location.
            effective_available = (
                node_available(node_id)
                - demand_by_node[node_id]
                + requirement
            )
            total += sum(congestion_terms(requirement, effective_available))

        for edge, link in self._links.items():
            if link.co_located:
                continue  # rb = inf for co-located components (footnote 8)
            bandwidth = request.bandwidth_for(edge)
            if bandwidth <= 0.0:
                continue
            available = link_available_bw(edge)
            if available <= 0.0:
                total += float("inf")
            else:
                total += bandwidth / available
        return total

    def __repr__(self) -> str:
        placements = ", ".join(
            f"F{i}->c{self._assignment[i].component_id}@v{self._assignment[i].node_id}"
            for i in sorted(self._assignment)
        )
        return f"ComponentGraph({placements})"
