"""End-system resource vectors.

Section 2.1 associates a *resource availability vector* ``[ra_1, ..., ra_n]``
with every component's host node (e.g. CPU, memory), and Section 2.3 defines

* ``R^ci = [r_1, ..., r_n]`` — the resources a request requires from the node
  hosting component *ci*, and
* ``rr^ci = ra^ci - r^ci`` — the *residual* resources left after subtracting
  the requirement (footnote 5), which feed the congestion aggregation metric
  of Eq. 1.

This module provides the small immutable vector type used for all of those,
plus the schema describing what each dimension means.  Bandwidth is a scalar
attached to links and is handled separately (see ``repro.topology``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True)
class ResourceSpec:
    """Definition of one end-system resource dimension."""

    name: str
    unit: str = ""


class ResourceSchema:
    """An ordered, immutable set of resource dimensions."""

    __slots__ = ("_specs", "_names")

    def __init__(self, specs: Iterable[ResourceSpec]) -> None:
        self._specs: Tuple[ResourceSpec, ...] = tuple(specs)
        names = [spec.name for spec in self._specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names in schema: {names}")
        self._names: Tuple[str, ...] = tuple(names)

    @property
    def specs(self) -> Tuple[ResourceSpec, ...]:
        return self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._specs)

    def index_of(self, name: str) -> int:
        try:
            return self._names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown resource {name!r}; schema has {self._names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResourceSchema) and self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        return f"ResourceSchema({', '.join(self._names)})"


#: The paper's running example resources: CPU (abstract capacity units) and
#: memory (megabytes).
DEFAULT_RESOURCE_SCHEMA = ResourceSchema(
    [
        ResourceSpec("cpu", "units"),
        ResourceSpec("memory", "MB"),
    ]
)


def _check_same_schema(a: "ResourceVector", b: "ResourceVector") -> None:
    schema_a = a._schema
    schema_b = b._schema
    if schema_a is schema_b:  # the common case — skip the structural compare
        return
    if schema_a != schema_b:
        raise ValueError(f"resource schema mismatch: {schema_a!r} vs {schema_b!r}")


class ResourceVector:
    """An immutable vector of per-dimension resource quantities.

    Arithmetic is element-wise.  Negative intermediate values are permitted
    (a residual vector with a negative entry is exactly how Eq. 4's
    infeasibility is detected) but :meth:`is_nonnegative` flags them.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: ResourceSchema, values: Sequence[float]) -> None:
        values = tuple(float(v) for v in values)
        if len(values) != len(schema):
            raise ValueError(
                f"expected {len(schema)} values for schema {schema!r}, got {len(values)}"
            )
        self._schema = schema
        self._values = values

    @classmethod
    def zero(cls, schema: ResourceSchema = DEFAULT_RESOURCE_SCHEMA) -> "ResourceVector":
        return cls(schema, [0.0] * len(schema))

    @classmethod
    def _raw(
        cls, schema: ResourceSchema, values: Tuple[float, ...]
    ) -> "ResourceVector":
        """Internal fast constructor for arithmetic results.

        Skips the per-element ``float()`` conversion and length check —
        callers guarantee ``values`` is already a float tuple of the
        schema's width (anything built from existing vectors is).  The
        resource-allocation hot path constructs tens of vectors per probe,
        so this shows up in every simulated request.
        """
        self = object.__new__(cls)
        self._schema = schema
        self._values = values
        return self

    @property
    def schema(self) -> ResourceSchema:
        return self._schema

    @property
    def values(self) -> Tuple[float, ...]:
        return self._values

    def __getitem__(self, name: str) -> float:
        return self._values[self._schema.index_of(name)]

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        _check_same_schema(self, other)
        return ResourceVector._raw(
            self._schema, tuple(a + b for a, b in zip(self._values, other._values))
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        _check_same_schema(self, other)
        return ResourceVector._raw(
            self._schema, tuple(a - b for a, b in zip(self._values, other._values))
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector._raw(
            self._schema, tuple(v * factor for v in self._values)
        )

    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """True iff every dimension is ≥ 0 (up to ``tolerance``)."""
        return all(v >= -tolerance for v in self._values)

    def covers(self, requirement: "ResourceVector", tolerance: float = 1e-9) -> bool:
        """True iff ``self`` has at least ``requirement`` in every dimension.

        This is Eq. 4's feasibility test: residual = self − requirement must
        be non-negative.
        """
        _check_same_schema(self, requirement)
        return all(
            a >= r - tolerance for a, r in zip(self._values, requirement._values)
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResourceVector)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value:g}" for name, value in zip(self._schema.names, self._values)
        )
        return f"ResourceVector({parts})"


def congestion_terms(
    required: ResourceVector, available: ResourceVector
) -> Tuple[float, ...]:
    """Per-dimension congestion contributions ``r_k / (rr_k + r_k)``.

    With residual ``rr = available − required`` this simplifies to
    ``required_k / available_k``, which is exactly the worked example of the
    paper's Fig. 4 (e.g. a 20 MB memory requirement on a node with 50 MB
    available contributes 20/50).  Dimensions with no requirement contribute
    0 even on saturated nodes; a requirement against zero availability
    contributes ``inf``.
    """
    _check_same_schema(required, available)
    terms = []
    for req, avail in zip(required.values, available.values):
        if req <= 0.0:
            terms.append(0.0)
        elif avail <= 0.0:
            terms.append(float("inf"))
        else:
            terms.append(req / avail)
    return tuple(terms)
