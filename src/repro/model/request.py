"""Stream processing requests.

Section 2.2: a request is "(1) function requirements described by a function
graph (ξ), (2) QoS requirements (Q^req), and (3) resource requirements
(R^req)".

:class:`StreamRequest` bundles those three together with the workload
attributes the simulator needs (arrival time, session duration, source
stream rate, and the client's attachment point used to pick the deputy
node).  Resource requirements are per function placement — the resources the
selected component will consume on its host — and per dependency link — the
bandwidth the stream consumes on the virtual link, which defaults to being
derived from the stream rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.model.function_graph import FunctionGraph
from repro.model.qos import QoSVector
from repro.model.resources import ResourceVector

#: Default bandwidth consumed per data unit per second (kbps per unit/s).
DEFAULT_KBPS_PER_UNIT = 1.0


@dataclass(frozen=True)
class StreamRequest:
    """A user request to compose and run a stream processing application.

    Attributes:
        request_id: Unique id assigned by the workload generator.
        function_graph: Required processing structure (ξ).
        qos_requirement: Upper bounds on end-to-end QoS (Q^req); every
            source-to-sink path of the composed application must satisfy it.
        node_requirements: Per function placement, the end-system resources
            (R^ci) the selected component will consume.
        bandwidth_requirements: Per dependency link, the bandwidth (b^li, in
            kbps) the stream consumes on the virtual link.
        stream_rate: Source stream rate in data units per second.
        arrival_time: Simulated arrival time in seconds.
        duration: Session length in seconds (paper: 5 to 15 minutes).
        client_router_id: IP router the requesting client attaches to; the
            composition protocol redirects the request to the closest stream
            processing node, the *deputy* (Section 3.3).
        required_attributes: Capability tags every selected component must
            advertise (e.g. a security level or licence class) — the
            application-specific constraints of the paper's future-work
            list, implemented as a hard per-component filter.
    """

    request_id: int
    function_graph: FunctionGraph
    qos_requirement: QoSVector
    node_requirements: Mapping[int, ResourceVector]
    bandwidth_requirements: Mapping[Tuple[int, int], float]
    stream_rate: float
    arrival_time: float = 0.0
    duration: float = 600.0
    client_router_id: Optional[int] = None
    required_attributes: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        indices = set(range(len(self.function_graph)))
        if set(self.node_requirements) != indices:
            raise ValueError(
                "node_requirements must cover every function placement: "
                f"expected {sorted(indices)}, got {sorted(self.node_requirements)}"
            )
        edges = set(self.function_graph.edges)
        if set(self.bandwidth_requirements) != edges:
            raise ValueError(
                "bandwidth_requirements must cover every dependency link: "
                f"expected {sorted(edges)}, got {sorted(self.bandwidth_requirements)}"
            )
        for edge, bandwidth in self.bandwidth_requirements.items():
            if bandwidth < 0.0:
                raise ValueError(f"negative bandwidth requirement on {edge}")
        if self.stream_rate <= 0.0:
            raise ValueError(f"stream_rate must be positive, got {self.stream_rate}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def end_time(self) -> float:
        return self.arrival_time + self.duration

    def requirement_for(self, function_index: int) -> ResourceVector:
        return self.node_requirements[function_index]

    def bandwidth_for(self, edge: Tuple[int, int]) -> float:
        return self.bandwidth_requirements[edge]

    def __repr__(self) -> str:
        return (
            f"StreamRequest(#{self.request_id}, {self.function_graph!r}, "
            f"rate={self.stream_rate:g}/s)"
        )


def derive_bandwidth_requirements(
    graph: FunctionGraph,
    stream_rate: float,
    kbps_per_unit: float = DEFAULT_KBPS_PER_UNIT,
) -> Dict[Tuple[int, int], float]:
    """Bandwidth requirement of every dependency link from the stream rate.

    The rate carried by a link is the emitting function's output rate (see
    :meth:`FunctionGraph.edge_rates`); bandwidth scales linearly with it.
    """
    return {
        edge: rate * kbps_per_unit
        for edge, rate in graph.edge_rates(stream_rate).items()
    }
