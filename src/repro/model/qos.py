"""QoS metric schemas and vectors.

The paper (Section 2.1) associates a QoS vector ``[q_1, ..., q_m]`` with every
component and every (virtual) link, and accumulates QoS along a composed
application.  Footnote 3 states the modelling convention this module
implements:

    "we assume that QoS metrics are additive and minimum-optimal.  For
    non-additive metrics (e.g., loss rate), we can make them additive and
    minimum-optimal using logarithm and inverse transformations."

Concretely, a *delay*-like metric accumulates by plain summation, while a
*loss-rate*-like metric accumulates multiplicatively (the probability a data
unit survives a pipeline is the product of per-stage survival probabilities)
and becomes additive in ``-log(1 - p)`` space.  Both kinds are
minimum-optimal: smaller is better, and a user requirement is an upper bound.

The schema abstraction keeps the rest of the system generic over the metric
set; the default schema matches the paper's running examples (processing
time and loss rate).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple


class MetricKind(enum.Enum):
    """How a QoS metric accumulates along a composition."""

    #: Accumulates by summation (e.g. processing delay, network delay).
    ADDITIVE = "additive"
    #: Accumulates multiplicatively on the *survival* probability
    #: (e.g. loss rate); additive in ``-log(1 - p)`` space.
    MULTIPLICATIVE_LOSS = "multiplicative_loss"


@dataclass(frozen=True)
class MetricSpec:
    """Definition of one QoS metric.

    Attributes:
        name: Human-readable metric name, unique within a schema.
        kind: Accumulation rule for the metric.
        unit: Unit string used only for reporting.
    """

    name: str
    kind: MetricKind
    unit: str = ""


class QoSSchema:
    """An ordered, immutable set of :class:`MetricSpec` definitions.

    All :class:`QoSVector` instances are interpreted against a schema; mixing
    vectors from different schemas raises ``ValueError``.
    """

    __slots__ = ("_specs", "_names", "_kinds", "_index")

    def __init__(self, specs: Iterable[MetricSpec]) -> None:
        self._specs: Tuple[MetricSpec, ...] = tuple(specs)
        names = [spec.name for spec in self._specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in schema: {names}")
        self._names: Tuple[str, ...] = tuple(names)
        self._kinds: Tuple[MetricKind, ...] = tuple(s.kind for s in self._specs)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}

    @property
    def specs(self) -> Tuple[MetricSpec, ...]:
        return self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def kinds(self) -> Tuple[MetricKind, ...]:
        return self._kinds

    def __len__(self) -> int:
        return len(self._specs)

    def index_of(self, name: str) -> int:
        """Return the position of metric ``name``, raising on unknown names."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown QoS metric {name!r}; schema has {self._names}") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QoSSchema) and self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        return f"QoSSchema({', '.join(self._names)})"


#: The paper's running metric set: per-stage processing/network delay in
#: milliseconds, and data-unit loss rate as a probability in [0, 1).
DEFAULT_QOS_SCHEMA = QoSSchema(
    [
        MetricSpec("delay", MetricKind.ADDITIVE, "ms"),
        MetricSpec("loss_rate", MetricKind.MULTIPLICATIVE_LOSS, "fraction"),
    ]
)

#: Loss rates at or above this value are treated as total loss; the additive
#: transform diverges at p = 1 so we clamp slightly below.
_MAX_LOSS = 1.0 - 1e-12


def _check_same_schema(a: "QoSVector", b: "QoSVector") -> None:
    schema_a = a._schema
    schema_b = b._schema
    if schema_a is schema_b:  # the common case — skip the structural compare
        return
    if schema_a != schema_b:
        raise ValueError(f"QoS schema mismatch: {schema_a!r} vs {schema_b!r}")


class QoSVector:
    """An immutable vector of QoS metric values against a schema.

    Supports accumulation (:meth:`combine`), requirement checks
    (:meth:`satisfies`), and the additive-space transform used by the ACP
    risk function (:meth:`additive_values`).
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: QoSSchema, values: Sequence[float]) -> None:
        values = tuple(map(float, values))
        if len(values) != len(schema):
            raise ValueError(
                f"expected {len(schema)} values for schema {schema!r}, got {len(values)}"
            )
        for kind, value in zip(schema.kinds, values):
            if value < 0.0 or (
                kind is MetricKind.MULTIPLICATIVE_LOSS and value >= 1.0
            ):
                self._raise_invalid(schema, values)
        self._schema = schema
        self._values = values

    @staticmethod
    def _raise_invalid(schema: QoSSchema, values: Tuple[float, ...]) -> None:
        """Re-derive which value failed validation and raise for it."""
        for spec, value in zip(schema.specs, values):
            if value < 0.0:
                raise ValueError(f"negative QoS value {value} for metric {spec.name!r}")
            if spec.kind is MetricKind.MULTIPLICATIVE_LOSS and value >= 1.0:
                raise ValueError(
                    f"loss-kind metric {spec.name!r} must be in [0, 1), got {value}"
                )
        raise AssertionError("unreachable: _raise_invalid called on valid values")

    @classmethod
    def zero(cls, schema: QoSSchema = DEFAULT_QOS_SCHEMA) -> "QoSVector":
        """The identity element of :meth:`combine`: zero delay, zero loss."""
        return cls(schema, [0.0] * len(schema))

    @classmethod
    def _raw(cls, schema: QoSSchema, values: Tuple[float, ...]) -> "QoSVector":
        """Internal fast constructor skipping conversion and validation.

        Only for callers that can *prove* the values pass ``__init__``'s
        checks (already floats, correct width, in-range) — e.g. the
        load-dependent QoS model, whose outputs are clamped below 1.
        """
        self = object.__new__(cls)
        self._schema = schema
        self._values = values
        return self

    @property
    def schema(self) -> QoSSchema:
        return self._schema

    @property
    def values(self) -> Tuple[float, ...]:
        return self._values

    def __getitem__(self, name: str) -> float:
        return self._values[self._schema.index_of(name)]

    def combine(self, other: "QoSVector") -> "QoSVector":
        """Accumulate ``other`` after ``self`` along a composition.

        Additive metrics sum; loss metrics compose as
        ``1 - (1 - a)(1 - b)``.
        """
        _check_same_schema(self, other)
        out = []
        for kind, a, b in zip(self._schema.kinds, self._values, other._values):
            if kind is MetricKind.ADDITIVE:
                out.append(a + b)
            else:
                out.append(1.0 - (1.0 - a) * (1.0 - b))
        return QoSVector(self._schema, out)

    def satisfies(self, requirement: "QoSVector") -> bool:
        """True iff every metric is within the (upper-bound) requirement."""
        _check_same_schema(self, requirement)
        return all(a <= r + 1e-12 for a, r in zip(self._values, requirement._values))

    def additive_values(self) -> Tuple[float, ...]:
        """Metric values mapped into the additive space (footnote 3).

        Additive metrics pass through; loss metrics map to ``-log(1 - p)``.
        The ACP risk function (Eq. 9) compares accumulated QoS against the
        requirement in this space so that ratios are meaningful for all
        metric kinds.
        """
        out = []
        for kind, value in zip(self._schema.kinds, self._values):
            if kind is MetricKind.ADDITIVE:
                out.append(value)
            else:
                out.append(-math.log1p(-min(value, _MAX_LOSS)))
        return tuple(out)

    def utilization(self, requirement: "QoSVector") -> Tuple[float, ...]:
        """Per-metric fraction of the requirement consumed, in additive space.

        A value of 1.0 means the metric exactly meets its bound; > 1.0 means
        the bound is violated.  Metrics with a zero (or effectively
        unconstrained) requirement report 0.0 when the accumulated value is
        also zero and ``inf`` otherwise.
        """
        _check_same_schema(self, requirement)
        accumulated = self.additive_values()
        bounds = requirement.additive_values()
        out = []
        for acc, bound in zip(accumulated, bounds):
            if bound <= 0.0:
                out.append(0.0 if acc <= 0.0 else math.inf)
            else:
                out.append(acc / bound)
        return tuple(out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QoSVector)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value:g}" for name, value in zip(self._schema.names, self._values)
        )
        return f"QoSVector({parts})"


def elementwise_max(a: QoSVector, b: QoSVector) -> QoSVector:
    """Per-metric maximum of two vectors.

    Used for worst-path accumulation over DAG compositions: at a join, the
    QoS "seen" by the downstream stage is bounded by the worse branch per
    metric.  Valid for both metric kinds because both additive transforms
    are monotone.
    """
    _check_same_schema(a, b)
    return QoSVector(a.schema, [max(x, y) for x, y in zip(a.values, b.values)])


def combine_all(vectors: Iterable[QoSVector], schema: QoSSchema = DEFAULT_QOS_SCHEMA) -> QoSVector:
    """Fold :meth:`QoSVector.combine` over ``vectors`` (empty → zero)."""
    total = QoSVector.zero(schema)
    for vector in vectors:
        total = total.combine(vector)
    return total
