"""Stream processing nodes.

Section 2.1: "The distributed stream processing system ... consists of a
collection of stream processing nodes (v_i), each of which can be a single
computer or a computer cluster."

A :class:`Node` owns its end-system resource state: a fixed capacity vector
and a running total of allocated resources.  All mutation goes through
:meth:`Node.allocate` / :meth:`Node.release` so that observers (the
hierarchical state manager, metrics) can hook every change via
:meth:`Node.add_change_listener` — this is what drives the paper's
threshold-triggered coarse-grain global state updates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.model.component import Component
from repro.model.resources import ResourceVector

#: Signature of node change listeners: listener(node) after every change.
NodeListener = Callable[["Node"], None]


class InsufficientResourcesError(RuntimeError):
    """Raised when an allocation would drive a node's residual negative."""


class Node:
    """A stream processing node hosting components and owning resources.

    Attributes:
        node_id: Dense integer id within the overlay.
        router_id: Id of the IP-layer router this node attaches to.
        capacity: Total end-system resource capacity.
    """

    __slots__ = (
        "node_id",
        "router_id",
        "capacity",
        "_allocated",
        "_available",
        "_components",
        "_listeners",
        "_liveness_listeners",
        "_alive",
    )

    def __init__(self, node_id: int, router_id: int, capacity: ResourceVector) -> None:
        self.node_id = node_id
        self.router_id = router_id
        self.capacity = capacity
        self._allocated = ResourceVector.zero(capacity.schema)
        self._available = capacity - self._allocated
        self._components: Dict[int, Component] = {}
        self._listeners: List[NodeListener] = []
        self._liveness_listeners: List[NodeListener] = []
        self._alive = True

    # -- liveness (failure injection) ---------------------------------------

    @property
    def alive(self) -> bool:
        """False while the node is crashed: its components are unusable and
        it cannot admit resources.  Resource *bookkeeping* stays intact so
        releases by terminating sessions balance exactly."""
        return self._alive

    def fail(self) -> None:
        self._alive = False
        for listener in self._liveness_listeners:
            listener(self)

    def recover(self) -> None:
        self._alive = True
        for listener in self._liveness_listeners:
            listener(self)

    # -- component hosting ------------------------------------------------

    def host(self, component: Component) -> None:
        """Register ``component`` as deployed on this node."""
        if component.node_id != self.node_id:
            raise ValueError(
                f"component {component} is bound to node {component.node_id}, "
                f"not {self.node_id}"
            )
        if component.component_id in self._components:
            raise ValueError(f"component {component} already hosted")
        self._components[component.component_id] = component

    def unhost(self, component_id: int) -> Component:
        """Remove a hosted component (the migration path); returns it."""
        try:
            return self._components.pop(component_id)
        except KeyError:
            raise ValueError(
                f"component c{component_id} is not hosted on v{self.node_id}"
            ) from None

    @property
    def components(self) -> Tuple[Component, ...]:
        return tuple(self._components.values())

    def hosts(self, component_id: int) -> bool:
        return component_id in self._components

    # -- resource state ----------------------------------------------------

    @property
    def allocated(self) -> ResourceVector:
        return self._allocated

    @property
    def available(self) -> ResourceVector:
        """Current available resources ``ra`` = capacity − allocated.

        Cached: ``_allocated`` only changes in :meth:`allocate` /
        :meth:`release`, and the probing hot path reads this property many
        times per request between changes.
        """
        return self._available

    def can_allocate(self, amount: ResourceVector) -> bool:
        return self._alive and self.available.covers(amount)

    def allocate(self, amount: ResourceVector) -> None:
        """Consume ``amount`` of this node's resources.

        Raises:
            InsufficientResourcesError: if the residual would be negative in
                any dimension (Eq. 4's constraint), or the node is down.
        """
        if not self._alive:
            raise InsufficientResourcesError(
                f"node v{self.node_id} is down; cannot allocate {amount}"
            )
        if not self.available.covers(amount):
            raise InsufficientResourcesError(
                f"node v{self.node_id}: cannot allocate {amount}; "
                f"available {self.available}"
            )
        self._allocated = self._allocated + amount
        self._available = self.capacity - self._allocated
        self._notify()

    def release(self, amount: ResourceVector) -> None:
        """Return ``amount`` previously taken via :meth:`allocate`."""
        released = self._allocated - amount
        if not released.is_nonnegative():
            raise ValueError(
                f"node v{self.node_id}: releasing {amount} exceeds "
                f"allocated {self._allocated}"
            )
        self._allocated = released
        self._available = self.capacity - self._allocated
        self._notify()

    # -- observation --------------------------------------------------------

    def add_change_listener(self, listener: NodeListener) -> None:
        """Invoke ``listener(self)`` after every resource change."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener: NodeListener) -> None:
        """Unregister a resource-change listener (no-op when absent).

        Observers that can be torn down before the node — routers, state
        managers — must deregister in their ``close()`` so a dead observer
        is not kept alive (and invoked) by every subsequent change.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def add_liveness_listener(self, listener: NodeListener) -> None:
        """Invoke ``listener(self)`` after every :meth:`fail` / :meth:`recover`.

        Separate from resource-change listeners: a crash does not move
        resources (bookkeeping stays intact, see :attr:`alive`), so it must
        not trigger the threshold-based global state update machinery."""
        self._liveness_listeners.append(listener)

    def remove_liveness_listener(self, listener: NodeListener) -> None:
        """Unregister a liveness listener (no-op when absent)."""
        try:
            self._liveness_listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self)

    def __repr__(self) -> str:
        return (
            f"Node(v{self.node_id}, router={self.router_id}, "
            f"available={self.available})"
        )
