"""Load-dependent component QoS.

Section 2.1 attaches time-varying QoS states (processing time, loss rate)
to components, and Section 3.2's hierarchical state manager exists
precisely because those states drift: nodes "update the global state only
when state variations ... exceed a specified threshold".  Footnote 2 makes
the load coupling explicit: "The component can drop data units when it is
overloaded."

:class:`LoadDependentQoSModel` realises that coupling: a component's
*effective* QoS inflates its deployed base values with the hosting node's
current utilisation,

    delay(u)  = base_delay · (1 + delay_load_factor · u)
    loss(u)   = base_loss  · (1 + loss_load_factor · u)

where u ∈ [0, 1] is the node's worst-dimension allocated fraction.  Both
the precise view (live node state — what probes observe on arrival) and
the coarse-grain view (the global state's stale availability snapshot —
what per-hop candidate selection ranks on) evaluate the same formula on
their respective inputs, so staleness distorts QoS guidance exactly the
way it distorts resource guidance.

Factors of zero recover the static-QoS model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.component import Component
from repro.model.qos import QoSVector
from repro.model.resources import ResourceVector

#: Effective loss rates are clamped just below certain loss so the additive
#: transform stays finite.
_MAX_LOSS = 0.999999


@dataclass(frozen=True)
class LoadDependentQoSModel:
    """Maps (component, host availability) to effective QoS values."""

    delay_load_factor: float = 1.0
    loss_load_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.delay_load_factor < 0.0 or self.loss_load_factor < 0.0:
            raise ValueError("load factors must be non-negative")

    @staticmethod
    def utilization(available: ResourceVector, capacity: ResourceVector) -> float:
        """Worst-dimension allocated fraction, clamped to [0, 1]."""
        worst = 0.0
        for avail, cap in zip(available.values, capacity.values):
            if cap > 0.0:
                worst = max(worst, 1.0 - avail / cap)
        return min(1.0, max(0.0, worst))

    def effective_qos(
        self,
        component: Component,
        available: ResourceVector,
        capacity: ResourceVector,
    ) -> QoSVector:
        """The component's QoS at the given host availability."""
        utilization = self.utilization(available, capacity)
        base = component.qos
        delay = base["delay"] * (1.0 + self.delay_load_factor * utilization)
        loss = min(
            _MAX_LOSS,
            base["loss_rate"] * (1.0 + self.loss_load_factor * utilization),
        )
        schema = base.schema
        if len(schema) == 2:
            # validation provably passes: delay >= 0 (non-negative base times
            # a factor >= 1) and loss in [0, _MAX_LOSS] — skip it
            return QoSVector._raw(schema, (delay, loss))
        return QoSVector(schema, [delay, loss])

    def effective_qos_arrays(
        self,
        base_delay: np.ndarray,
        base_loss: np.ndarray,
        utilization: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`effective_qos` over candidate arrays.

        ``base_delay``/``base_loss``/``utilization`` are parallel NumPy
        arrays (one entry per candidate); returns ``(delay, loss)`` arrays
        computed with exactly the scalar formula's operation order, so the
        vectorised probing path (``repro.core.fastscore``) scores candidates
        on bit-identical values.
        """
        delay = base_delay * (1.0 + self.delay_load_factor * utilization)
        loss = np.minimum(
            _MAX_LOSS, base_loss * (1.0 + self.loss_load_factor * utilization)
        )
        return delay, loss
