"""Function graphs — the user's stream processing application template.

Section 2.2: "The user can specify the stream processing request in terms
of: (1) function requirements described by a function graph ... The function
graph includes a set of function nodes (F_i) connected by dependency links."

A :class:`FunctionGraph` is a DAG whose vertices are :class:`FunctionNode`
placements of catalog functions and whose edges are stream dependency links.
The paper's workloads use two shapes (Section 4.1): simple paths, and DAGs
with two branch paths (a split stage fans out to two branches that join
again, as in Fig. 1(c)); this class supports arbitrary DAGs.

Besides structure, the graph knows how the stream *rate* propagates through
it (each function scales its input rate by its selectivity; a fan-out stage
sends a full copy of its output down every branch; a join consumes the sum
of its incoming rates), which drives the per-hop rate compatibility check
and per-link bandwidth requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.model.functions import StreamFunction


@dataclass(frozen=True)
class FunctionNode:
    """One placement of a function inside a function graph.

    The same catalog function may appear at several places in one graph, so
    placements are identified by a graph-local ``index``.
    """

    index: int
    function: StreamFunction

    def __repr__(self) -> str:
        return f"F{self.index}({self.function.name})"


class FunctionGraph:
    """An immutable DAG of function placements with dependency links."""

    __slots__ = (
        "_nodes",
        "_edges",
        "_succ",
        "_pred",
        "_topo_order",
        "_levels",
    )

    def __init__(
        self,
        functions: Sequence[StreamFunction],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        self._nodes: Tuple[FunctionNode, ...] = tuple(
            FunctionNode(index, function) for index, function in enumerate(functions)
        )
        if not self._nodes:
            raise ValueError("function graph must have at least one node")
        edge_list = sorted(set((int(a), int(b)) for a, b in edges))
        n = len(self._nodes)
        for a, b in edge_list:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a}, {b}) references unknown node; n={n}")
            if a == b:
                raise ValueError(f"self-loop on node {a}")
        self._edges: Tuple[Tuple[int, int], ...] = tuple(edge_list)
        succ: Dict[int, List[int]] = {i: [] for i in range(n)}
        pred: Dict[int, List[int]] = {i: [] for i in range(n)}
        for a, b in self._edges:
            succ[a].append(b)
            pred[b].append(a)
        self._succ = {k: tuple(v) for k, v in succ.items()}
        self._pred = {k: tuple(v) for k, v in pred.items()}
        self._topo_order = self._compute_topological_order()
        self._levels = self._compute_levels()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def path(cls, functions: Sequence[StreamFunction]) -> "FunctionGraph":
        """A linear pipeline F0 → F1 → ... → Fk."""
        return cls(functions, [(i, i + 1) for i in range(len(functions) - 1)])

    @classmethod
    def two_branch(
        cls,
        source: StreamFunction,
        branch_a: Sequence[StreamFunction],
        branch_b: Sequence[StreamFunction],
        join: StreamFunction,
    ) -> "FunctionGraph":
        """The paper's two-branch DAG: source → (branch A ∥ branch B) → join.

        This is the Fig. 1(c) shape — e.g. a split stage feeding a
        voice-recognition branch and a face-recognition branch that merge in
        a correlation stage.
        """
        if not branch_a or not branch_b:
            raise ValueError("both branches must be non-empty")
        functions: List[StreamFunction] = [source]
        edges: List[Tuple[int, int]] = []
        for branch in (branch_a, branch_b):
            previous = 0
            for function in branch:
                functions.append(function)
                index = len(functions) - 1
                edges.append((previous, index))
                previous = index
            join_index_placeholder = previous
            # connect the branch tail to the join once the join exists
            edges.append((join_index_placeholder, -1))
        functions.append(join)
        join_index = len(functions) - 1
        edges = [(a, join_index if b == -1 else b) for a, b in edges]
        return cls(functions, edges)

    # -- structure -------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[FunctionNode, ...]:
        return self._nodes

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        return self._edges

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> FunctionNode:
        return self._nodes[index]

    def successors(self, index: int) -> Tuple[int, ...]:
        return self._succ[index]

    def predecessors(self, index: int) -> Tuple[int, ...]:
        return self._pred[index]

    def sources(self) -> Tuple[int, ...]:
        """Nodes with no predecessors (stream entry points)."""
        return tuple(i for i in range(len(self._nodes)) if not self._pred[i])

    def sinks(self) -> Tuple[int, ...]:
        """Nodes with no successors (stream exit points)."""
        return tuple(i for i in range(len(self._nodes)) if not self._succ[i])

    def is_path(self) -> bool:
        """True iff the graph is a simple pipeline."""
        return all(
            len(self._succ[i]) <= 1 and len(self._pred[i]) <= 1
            for i in range(len(self._nodes))
        ) and len(self.sources()) == 1

    def topological_order(self) -> Tuple[int, ...]:
        return self._topo_order

    def levels(self) -> Tuple[Tuple[int, ...], ...]:
        """Topological levels: level k holds nodes whose longest path from a
        source has k edges.  The ACP probe wavefront advances level by level.
        """
        return self._levels

    def _compute_topological_order(self) -> Tuple[int, ...]:
        in_degree = {i: len(self._pred[i]) for i in range(len(self._nodes))}
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for successor in self._succ[current]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    # keep deterministic order without a heap: insert sorted
                    position = 0
                    while position < len(ready) and ready[position] < successor:
                        position += 1
                    ready.insert(position, successor)
        if len(order) != len(self._nodes):
            raise ValueError("function graph contains a cycle")
        return tuple(order)

    def _compute_levels(self) -> Tuple[Tuple[int, ...], ...]:
        depth = {i: 0 for i in range(len(self._nodes))}
        for index in self._topo_order:
            for predecessor in self._pred[index]:
                depth[index] = max(depth[index], depth[predecessor] + 1)
        max_depth = max(depth.values())
        buckets: List[List[int]] = [[] for _ in range(max_depth + 1)]
        for index in self._topo_order:
            buckets[depth[index]].append(index)
        return tuple(tuple(bucket) for bucket in buckets)

    # -- stream rates -----------------------------------------------------------

    def input_rates(self, source_rate: float) -> Dict[int, float]:
        """Input stream rate into every function node.

        Source nodes receive ``source_rate``.  A node with several
        predecessors (a join) receives the sum of their output rates; a node
        with several successors sends its full output rate down each branch.
        """
        if source_rate <= 0.0:
            raise ValueError(f"source_rate must be positive, got {source_rate}")
        rates: Dict[int, float] = {}
        for index in self._topo_order:
            predecessors = self._pred[index]
            if not predecessors:
                rates[index] = source_rate
            else:
                rates[index] = sum(
                    self._nodes[p].function.output_rate(rates[p]) for p in predecessors
                )
        return rates

    def edge_rates(self, source_rate: float) -> Dict[Tuple[int, int], float]:
        """Stream rate carried by every dependency link."""
        rates = self.input_rates(source_rate)
        return {
            (a, b): self._nodes[a].function.output_rate(rates[a])
            for a, b in self._edges
        }

    def all_paths(self) -> Tuple[Tuple[int, ...], ...]:
        """Every source-to-sink path, as node index tuples.

        Used for end-to-end QoS checks: additive metrics must satisfy the
        requirement along *every* path.
        """
        paths: List[Tuple[int, ...]] = []

        def extend(prefix: Tuple[int, ...]) -> None:
            tail = prefix[-1]
            successors = self._succ[tail]
            if not successors:
                paths.append(prefix)
                return
            for successor in successors:
                extend(prefix + (successor,))

        for source in self.sources():
            extend((source,))
        return tuple(paths)

    def __repr__(self) -> str:
        shape = "path" if self.is_path() else "dag"
        return f"FunctionGraph({shape}, {len(self._nodes)} nodes, {len(self._edges)} edges)"
