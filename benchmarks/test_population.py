"""Population-scale workload benchmark: SLO behaviour from idle to overload.

Sweeps the standard scenario set (``steady``, ``diurnal``, ``flash_crowd``)
across load multipliers 1× / 10× / 100× on the mean active population and
records, per (scenario, multiplier) point, the whole-run and per-window SLO
series — success rate, p50/p99 session-setup latency, admission pressure,
and the open-session / transient-reservation gauges — into
``benchmarks/results/BENCH_population.json`` (``make bench-population``).

The run asserts the sweep's defining contract: at 1× the system is healthy
(success > 0.8), while at the top multiplier admission is *non-degenerate*
— success strictly below 1.0, admission pressure visible, sessions piling
up — and nothing crashes.  Note the transient-reservation gauge reads ~0
in fault-free serial runs (probe reservations are committed or cancelled
within each ``find``); overload shows up in ``peak_open_sessions`` and
``admission_pressure`` instead.

``BENCH_POPULATION_MULTIPLIERS`` (comma-separated) overrides the sweep for
smoke runs — CI uses a light pair and the output lands in
``BENCH_population_smoke.json`` so a smoke run can never clobber the real
sweep.  ``BENCH_POPULATION_SCENARIOS`` narrows the scenario set likewise.
"""

from __future__ import annotations

import json
import os

from repro.experiments import (
    POPULATION_SCENARIOS,
    format_population_table,
    population_to_dict,
    run_population,
)
from repro.experiments.config import ExperimentScale

#: FAST_SCALE's substrate with a shorter horizon: 100× means ~25k arrivals
#: over the run, which keeps the full 3×3 sweep under a couple of minutes
#: while still giving five sampling windows per point.
BENCH_SCALE = ExperimentScale(
    name="population-bench",
    num_routers=800,
    duration_s=300.0,
    adaptability_duration_s=300.0,
    sampling_period_s=60.0,
    optimal_max_explored=30_000,
)
DEFAULT_MULTIPLIERS = (1.0, 10.0, 100.0)
MEAN_ACTIVE_USERS = 25.0
REQUESTS_PER_USER_PER_MIN = 2.0
NUM_NODES = 400
SEED = 0


def sweep_multipliers():
    """The load sweep, overridable via BENCH_POPULATION_MULTIPLIERS."""
    env = os.environ.get("BENCH_POPULATION_MULTIPLIERS")
    if env:
        return tuple(float(field) for field in env.split(",")), True
    return DEFAULT_MULTIPLIERS, False


def sweep_scenarios():
    env = os.environ.get("BENCH_POPULATION_SCENARIOS")
    if env:
        return tuple(field.strip() for field in env.split(","))
    return POPULATION_SCENARIOS


def test_population_sweep(results_dir):
    multipliers, smoke = sweep_multipliers()
    scenarios = sweep_scenarios()
    result = run_population(
        scale=BENCH_SCALE,
        scenarios=scenarios,
        multipliers=multipliers,
        mean_active_users=MEAN_ACTIVE_USERS,
        requests_per_user_per_min=REQUESTS_PER_USER_PER_MIN,
        num_nodes=NUM_NODES,
        seed=SEED,
    )
    print("\n" + format_population_table(result))

    top = max(multipliers)
    for scenario in result.scenarios:
        for multiplier, report in scenario.points:
            assert report.total_requests > 0, (
                f"{scenario.name}@{multiplier}x produced no arrivals"
            )
            # every window's SLO series is well-formed
            for sample in report.window_samples:
                assert 0.0 <= sample.admission_pressure <= 1.0
                if sample.p50_setup_latency_ms is not None:
                    assert sample.p99_setup_latency_ms is not None
                    assert (
                        sample.p99_setup_latency_ms
                        >= sample.p50_setup_latency_ms
                    )
            if not smoke and multiplier == 1.0 and scenario.name == "steady":
                # the unmodulated baseline must be healthy at 1x — the
                # event scenarios are allowed to hurt (a 6x flash crowd
                # saturating admission at 1x is the point, not a bug)
                assert report.success_rate > 0.8, (
                    f"steady@1x unhealthy: {report.success_rate:.3f}"
                )
            if multiplier == top and top >= 10.0:
                # overload is non-degenerate: requests fail under
                # contention, sessions pile up, and the run completes
                assert report.success_rate < 1.0, (
                    f"{scenario.name}@{top}x shows no overload"
                )
                assert report.admission_pressure > 0.0, (
                    f"{scenario.name}@{top}x shows no admission pressure"
                )
                assert report.peak_open_sessions > 0

    payload = {
        "config": {
            "scale": BENCH_SCALE.name,
            "num_routers": BENCH_SCALE.num_routers,
            "num_nodes": NUM_NODES,
            "duration_s": BENCH_SCALE.duration_s,
            "sampling_period_s": BENCH_SCALE.sampling_period_s,
            "mean_active_users": MEAN_ACTIVE_USERS,
            "requests_per_user_per_min": REQUESTS_PER_USER_PER_MIN,
            "multipliers": list(multipliers),
            "seed": SEED,
        },
    }
    payload.update(population_to_dict(result))
    name = "BENCH_population_smoke.json" if smoke else "BENCH_population.json"
    (results_dir / name).write_text(json.dumps(payload, indent=2) + "\n")
