"""Figure 8: adaptability — fixed vs self-tuning probing ratio.

The dynamic workload steps 40 → 80 → 60 req/min at thirds of the horizon.
Shapes to verify:

* 8(a) fixed α = 0.3: the success rate sags during the overload phase and
  only partially recovers — the ratio never moves;
* 8(b) adaptive: the tuner raises α when the load step depresses the
  success rate below target and lowers it again after the load recedes,
  and the mean deviation from the target is smaller than with the fixed
  ratio.
"""

import pytest

from repro.experiments import FAST_SCALE, format_fig8_table, run_fig8


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(scale=FAST_SCALE, seed=3)


def _phase_means(result):
    """Mean success rate per workload phase (low, peak, recovery)."""
    duration = result.samples[-1].time
    phases = ([], [], [])
    for sample in result.samples:
        index = min(2, int(3 * (sample.time - 1e-9) / duration))
        phases[index].append(sample.success_rate)
    return tuple(sum(p) / len(p) for p in phases)


def test_fig8_single_run_benchmark(benchmark, fig8):
    # the module fixture (both Fig. 8 runs) is computed during setup; the
    # timed body only validates it, keeping the suite's total run count low
    result = benchmark.pedantic(lambda: fig8[0], rounds=1, iterations=1)
    assert len(result.samples) >= 6


class TestFig8aFixedRatio:
    def test_ratio_never_moves(self, fig8, publish, benchmark):
        fixed, _adaptive = fig8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        publish("fig8a", format_fig8_table(fixed))
        ratios = {s.probing_ratio for s in fixed.samples}
        assert ratios == {0.3}

    def test_load_step_depresses_success(self, fig8, benchmark):
        fixed, _adaptive = fig8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        low, peak, _recovery = _phase_means(fixed)
        assert peak < low - 0.03


class TestFig8bAdaptive:
    def test_ratio_rises_on_overload_and_falls_after(self, fig8, publish, benchmark):
        _fixed, adaptive = fig8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        publish("fig8b", format_fig8_table(adaptive))
        duration = adaptive.samples[-1].time
        ratios_by_phase = ([], [], [])
        for sample in adaptive.samples:
            index = min(2, int(3 * (sample.time - 1e-9) / duration))
            ratios_by_phase[index].append(sample.probing_ratio)
        low_phase, peak_phase, recovery_phase = ratios_by_phase
        assert max(peak_phase) > max(low_phase)  # climbed under overload
        assert min(recovery_phase) < max(peak_phase) or (
            recovery_phase[-1] < peak_phase[-1] + 1e-9
        )  # started descending once the target was met again

    def test_adaptive_tracks_target_better_than_fixed(self, fig8, benchmark):
        fixed, adaptive = fig8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        target = adaptive.target_success_rate

        def mean_shortfall(result):
            shortfalls = [
                max(0.0, target - s.success_rate) for s in result.samples
            ]
            return sum(shortfalls) / len(shortfalls)

        assert mean_shortfall(adaptive) <= mean_shortfall(fixed) + 0.02

    def test_recovery_phase_meets_target(self, fig8, benchmark):
        _fixed, adaptive = fig8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        *_rest, recovery = _phase_means(adaptive)
        assert recovery >= adaptive.target_success_rate - 0.05
