"""Shared benchmark fixtures and the result sink.

Every benchmark regenerates one of the paper's evaluation figures at the
reduced ``FAST_SCALE`` (same code paths as the full-scale harness, smaller
horizons) and

* prints the figure's rows (run pytest with ``-s`` to see them live), and
* writes them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.

The ``benchmark`` fixture times a single representative unit of work
(usually one full simulation point) with ``pedantic(rounds=1)`` — the
figures themselves are far too heavy to repeat for statistics, and their
interesting output is the series, not the nanoseconds.

The micro-benchmarks (``test_micro_operations.py``) are the exception:
they are statistical timings of the per-request building blocks, and their
medians are the numbers EXPERIMENTS.md's performance section quotes.  At
session end they are written to ``benchmarks/results/BENCH_micro.json``
as a plain ``{operation name: median seconds}`` map, so performance work
can diff before/after runs mechanically (``make bench-micro``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The statistical micro-benchmark module whose medians land in
#: BENCH_micro.json (figure benchmarks time whole simulations and are
#: deliberately excluded — one round tells nothing statistical).
MICRO_MODULE = "test_micro_operations"


def pytest_sessionfinish(session, exitstatus):
    """Persist micro-benchmark medians to benchmarks/results/BENCH_micro.json."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    medians = {
        bench.name: bench.stats.median
        for bench in benchmark_session.benchmarks
        if MICRO_MODULE in bench.fullname and not bench.has_error
    }
    if medians:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "BENCH_micro.json"
        path.write_text(json.dumps(medians, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a rendered figure and persist it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
