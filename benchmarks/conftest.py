"""Shared benchmark fixtures and the result sink.

Every benchmark regenerates one of the paper's evaluation figures at the
reduced ``FAST_SCALE`` (same code paths as the full-scale harness, smaller
horizons) and

* prints the figure's rows (run pytest with ``-s`` to see them live), and
* writes them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.

The ``benchmark`` fixture times a single representative unit of work
(usually one full simulation point) with ``pedantic(rounds=1)`` — the
figures themselves are far too heavy to repeat for statistics, and their
interesting output is the series, not the nanoseconds.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a rendered figure and persist it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
