"""Macro benchmark: session survival under the full fault cocktail.

The fault-model expansion (link flaps, lossy control plane, stale state)
only earns its keep if crash-triggered re-composition measurably saves
sessions that the legacy kill-on-fault policy loses.  This harness runs
the *same* Fig. 8-style simulation (identical system, workload, and
fault schedule — every fault stream is seed-derived) twice:

* **baseline** — faults kill every session they disrupt;
* **resilient** — disrupted sessions enter ``RECOVERING`` and are
  re-composed against the live topology within the recovery deadline.

It checks the resilient run's session survival rate strictly exceeds the
baseline's, that a zero-fault :class:`FaultPlan` is decision-identical
to a fault-free spec (the fault plumbing must be invisible when off),
and writes

    benchmarks/results/BENCH_faults.json

with the survival figures EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.experiments import (
    EVALUATION_DEPLOYMENT,
    FaultsResult,
    RunSpec,
    faults_to_dict,
    format_faults_table,
    run_spec,
)
from repro.middleware import RecoveryPolicy
from repro.simulation import FaultPlan, RateSchedule
from repro.simulation.system import SystemConfig

#: One fault-heavy macro point: mid-size mesh, 3-phase load, a fault
#: round every 15 simulated seconds.  All seeds fixed — the baseline and
#: resilient runs must see byte-identical systems, workloads, and fault
#: schedules; the recovery policy is the only difference.
FAULT_CONFIG = dict(
    num_routers=800,
    num_nodes=400,
    seed=11,
    workload_seed=1011,
    duration_s=900.0,
    sampling_period_s=150.0,
    probing_ratio=0.3,
)

#: The full cocktail: node crashes, link flaps, lossy delayed probes, and
#: state-update loss, all at once.
COCKTAIL = FaultPlan(
    node_fail_probability=0.02,
    node_recover_probability=0.5,
    link_fail_probability=0.01,
    link_recover_probability=0.5,
    probe_loss_probability=0.05,
    probe_delay_ms=2.0,
    max_probe_retries=2,
    state_update_loss_probability=0.10,
    period_s=15.0,
)

RECOVERY = RecoveryPolicy(recovery_deadline_s=30.0, detection_delay_s=2.0)


def _base_spec(num_routers=None, num_nodes=None, duration_s=None) -> RunSpec:
    duration = duration_s or FAULT_CONFIG["duration_s"]
    return RunSpec(
        algorithm="ACP",
        system=SystemConfig(
            num_routers=num_routers or FAULT_CONFIG["num_routers"],
            num_nodes=num_nodes or FAULT_CONFIG["num_nodes"],
            deployment=EVALUATION_DEPLOYMENT,
            seed=FAULT_CONFIG["seed"],
        ),
        schedule=RateSchedule.steps(  # Fig. 8's 3-phase shape, scaled down
            (0.0, 6.0), (duration / 3.0, 12.0), (2.0 * duration / 3.0, 9.0)
        ),
        probing_ratio=FAULT_CONFIG["probing_ratio"],
        duration_s=duration,
        sampling_period_s=FAULT_CONFIG["sampling_period_s"],
        workload_seed=FAULT_CONFIG["workload_seed"],
    )


def test_macro_faults_survival(results_dir):
    base = _base_spec()
    baseline = run_spec(base.with_faults(COCKTAIL))
    resilient = run_spec(base.with_faults(COCKTAIL, RECOVERY))

    # the cocktail actually bit: sessions were disrupted, probes were
    # lost, and state updates went missing in both runs
    for report in (baseline, resilient):
        assert report.sessions_disrupted > 0
        assert report.probe_messages_lost > 0
        assert report.state_updates_lost > 0
    # kill-on-fault kills every disrupted session
    assert baseline.sessions_killed == baseline.sessions_disrupted
    assert baseline.sessions_recovered == 0
    # re-composition saved sessions the baseline lost
    assert resilient.sessions_recovered > 0
    assert resilient.session_survival_rate > baseline.session_survival_rate
    assert resilient.mean_recovery_latency_s > 0.0
    assert resilient.recovery_probe_messages > 0

    result = FaultsResult(COCKTAIL, baseline, resilient)
    payload = faults_to_dict(result)
    payload["config"] = FAULT_CONFIG
    (results_dir / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_faults_table(result)}\n")


def test_zero_fault_plan_is_invisible():
    """A zero plan must not perturb a run: same decisions, same report.

    This is the macro-scale guard behind the fault plumbing — threading
    the ``ControlChannel`` and ``FaultPlan`` seams through the composer,
    router, and state layers must leave fault-free runs byte-identical.
    (``tests/test_determinism.py`` holds the unit-scale version.)
    """
    base = _base_spec(num_routers=400, num_nodes=200, duration_s=600.0)
    plain = run_spec(base)
    zeroed = run_spec(base.with_faults(FaultPlan.none()))
    assert repr(plain) == repr(zeroed)


def test_cocktail_is_deterministic():
    """Same seed + same plan ⇒ byte-identical fault-cocktail reports."""
    spec = _base_spec(
        num_routers=400, num_nodes=200, duration_s=600.0
    ).with_faults(replace(COCKTAIL, period_s=20.0), RECOVERY)
    first = run_spec(spec)
    second = run_spec(spec)
    assert repr(first) == repr(second)
