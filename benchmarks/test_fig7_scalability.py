"""Figure 7: scalability — success rate and overhead vs system size.

Node counts 200–600 at a fixed 80 req/min workload; the deployment places
components per node, so candidate pools grow proportionally with the
system (Section 4.1).  Shapes to verify:

* 7(a): success rises with the node count (more capacity and more
  candidates for the same offered load), ACP tracking the optimal;
* 7(b): the optimal algorithm's overhead grows much faster than ACP's —
  the overhead reduction widens with system size.
"""

import pytest

from repro.experiments import FAST_SCALE, format_figure_table, run_fig7

NODE_COUNTS = (200, 300, 400, 500, 600)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(scale=FAST_SCALE, node_counts=NODE_COUNTS, seed=0)


def test_fig7_single_point_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7(
            scale=FAST_SCALE, node_counts=(200,), algorithms=("ACP",), seed=1
        ),
        rounds=1,
        iterations=1,
    )
    assert result[0].series["ACP"].points[0][1] > 0.0


class TestFig7a:
    def test_success_grows_with_system_size(self, fig7, publish, benchmark):
        success, _overhead = fig7
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        publish("fig7a", format_figure_table(success))
        for algorithm in ("Optimal", "ACP"):
            ys = success.series[algorithm].ys()
            assert ys[-1] > ys[0] + 0.05, f"{algorithm}: no scaling gain {ys}"

    def test_acp_tracks_optimal_scaling(self, fig7, benchmark):
        success, _overhead = fig7
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for (count, optimal), (_c, acp) in zip(
            success.series["Optimal"].points, success.series["ACP"].points
        ):
            assert acp >= optimal - 0.15, f"gap too wide at {count} nodes"

    def test_probing_beats_oneshot_at_every_size(self, fig7, benchmark):
        success, _overhead = fig7
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for acp_point, random_point, static_point in zip(
            success.series["ACP"].points,
            success.series["Random"].points,
            success.series["Static"].points,
        ):
            assert acp_point[1] > random_point[1] > static_point[1]


class TestFig7b:
    def test_reduction_widens_with_size(self, fig7, publish, benchmark):
        _success, overhead = fig7
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        publish("fig7b", format_figure_table(overhead, percent=False))
        optimal = overhead.series["Optimal"].ys()
        acp = overhead.series["ACP"].ys()
        ratios = [o / a for o, a in zip(optimal, acp)]
        assert all(r > 5.0 for r in ratios)
        # the overhead gap grows as candidate pools grow (paper Fig. 7(b):
        # "The overhead reduction increases as the node number increases")
        assert ratios[-1] > ratios[0]

    def test_optimal_overhead_grows_superlinearly_vs_acp(self, fig7, benchmark):
        _success, overhead = fig7
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        optimal = overhead.series["Optimal"].ys()
        acp = overhead.series["ACP"].ys()
        optimal_growth = optimal[-1] / optimal[0]
        acp_growth = max(acp[-1] / acp[0], 1e-9)
        assert optimal_growth > acp_growth
