"""The scale curve: compose latency, build time, and memory to 10k nodes.

The paper evaluates up to ~500 overlay nodes (Fig. 7); the seed repo's
eager all-pairs router and unbounded per-source caches hit an O(N²)
memory wall around 600.  This harness measures the bounded configuration
(LRU tree cache, deduped batched topology build, incremental routing)
across N ∈ {600, 2000, 5000, 10000} and records, per point,

* overlay build time and router/scorer/global-state memory footprints,
* compose latency p50/p99 over a fixed batch of transient compositions,
* process peak RSS (``ru_maxrss``) after the point completes,

into ``benchmarks/results/BENCH_scale.json`` (``make bench-scale``).
EXPERIMENTS.md's Scalability section and DEVELOPMENT.md's complexity
budget quote these numbers.

The run also asserts the guarantees that make the frontier reachable at
all: the router's cached tree count and the neighbourhood index's entry
count never exceed their configured bounds, and the eager all-pairs
baseline *refuses* to run above its size threshold instead of silently
allocating two dense N×N matrices.

Since the locality-pruned scorer landed the default curve runs with
``candidate_prune_k="auto"`` and extends to 50k nodes; a prune-k
ablation at N=5000 (full scan / auto / aggressive k=64) records how
compose p50, success rate, and widen-retry rate trade off, into the
same JSON under ``"ablation"``.

``BENCH_SCALE_NODES`` (comma-separated) overrides the curve for smoke
runs — CI uses a small N and the output lands in
``BENCH_scale_smoke.json`` so a smoke run can never clobber the real
curve.  ``BENCH_SCALE_PRUNE`` (``off``, ``auto``, or an integer)
overrides the prune setting for the whole curve.
"""

from __future__ import annotations

import json
import math
import os
import random
import resource
import time

import pytest

from repro.core import ACPComposer
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSVector
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.simulation import SystemConfig, build_system
from repro.topology.routing import (
    EAGER_ALLPAIRS_MAX_NODES,
    OverlayRouter,
    RoutingError,
)

DEFAULT_NODES = (600, 2_000, 5_000, 10_000, 50_000)
COMPOSES_PER_POINT = 40
#: at-scale cache bounds: router memory stays O(256 × N) while the
#: paper-scale default (1024 > 600) never evicts and replays identically
SCALE_ROUTER_CACHE = 256
SCALE_ROW_CACHE = 256
#: the neighbourhood index obeys the same O(cache × k) contract
SCALE_NEIGHBORHOOD_CACHE = 256
#: the prune-k sweep: full scan, the auto heuristic, and an aggressive
#: fixed k that forces the widen-and-re-probe fallback to earn its keep
ABLATION_NODES = 5_000
ABLATION_SPECS = (("off", None), ("auto", "auto"), ("aggressive", 64))

REQUIRED_POINT_KEYS = {
    "num_nodes",
    "num_routers",
    "build_seconds",
    "compose_p50_ms",
    "compose_p99_ms",
    "composes",
    "successes",
    "prune_k",
    "widen_retries",
    "neighborhood_solves",
    "neighborhood_memory_bytes",
    "router_memory_bytes",
    "scorer_memory_bytes",
    "global_state_memory_bytes",
    "cached_trees",
    "tree_evictions",
    "peak_rss_kb",
}


def scale_points():
    """The N curve, overridable via BENCH_SCALE_NODES for smoke runs."""
    env = os.environ.get("BENCH_SCALE_NODES")
    if env:
        return tuple(int(field) for field in env.split(",")), True
    return DEFAULT_NODES, False


def prune_spec():
    """The curve-wide prune setting, overridable via BENCH_SCALE_PRUNE."""
    env = os.environ.get("BENCH_SCALE_PRUNE", "auto")
    if env in ("off", "none", ""):
        return None
    if env == "auto":
        return "auto"
    return int(env)


def percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[max(0, index)]


def request_for(system, request_id):
    template = system.templates[request_id % len(system.templates)]
    graph = template.graph
    stream_rate = 100.0
    return StreamRequest(
        request_id=request_id,
        function_graph=graph,
        qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, [500.0, 0.2]),
        node_requirements={
            i: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [4.0, 25.0])
            for i in range(len(graph))
        },
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, 2.0
        ),
        stream_rate=stream_rate,
    )


def measure_point(num_nodes: int, prune=None) -> dict:
    num_routers = max(800, math.ceil(num_nodes * 1.2))
    config = SystemConfig(
        num_routers=num_routers,
        num_nodes=num_nodes,
        seed=num_nodes,  # distinct but reproducible meshes along the curve
        router_cache_size=SCALE_ROUTER_CACHE,
        scorer_row_cache_size=SCALE_ROW_CACHE,
        candidate_prune_k=prune,
        neighborhood_cache_size=SCALE_NEIGHBORHOOD_CACHE,
    )
    build_start = time.perf_counter()
    system = build_system(config)
    build_seconds = time.perf_counter() - build_start

    context = system.composition_context(rng=random.Random(17))
    composer = ACPComposer(context, probing_ratio=0.3)
    latencies_ms = []
    successes = 0
    for request_id in range(COMPOSES_PER_POINT):
        request = request_for(system, request_id)
        compose_start = time.perf_counter()
        outcome = composer.compose(request)
        latencies_ms.append((time.perf_counter() - compose_start) * 1e3)
        context.allocator.cancel_transient(request.request_id)
        successes += bool(outcome.success)

    # the memory bounds actually held while composing
    assert system.router.cached_tree_count <= SCALE_ROUTER_CACHE
    index = context._neighborhood_index
    if index is not None:
        assert index.cached_entry_count <= SCALE_NEIGHBORHOOD_CACHE

    latencies_ms.sort()
    point = {
        "num_nodes": num_nodes,
        "num_routers": num_routers,
        "build_seconds": round(build_seconds, 3),
        "compose_p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "compose_p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "composes": COMPOSES_PER_POINT,
        "successes": successes,
        "prune_k": context.candidate_prune_k,
        "widen_retries": context.fast_scorer().widen_retries,
        "neighborhood_solves": 0 if index is None else index.solves,
        "neighborhood_memory_bytes": (
            0 if index is None else index.memory_footprint()["total"]
        ),
        "router_memory_bytes": system.router.memory_footprint()["total"],
        "scorer_memory_bytes": context.fast_scorer().memory_footprint()["total"],
        "global_state_memory_bytes": system.global_state.memory_footprint()[
            "total"
        ],
        "cached_trees": system.router.cached_tree_count,
        "tree_evictions": system.router.tree_evictions,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }

    # above the eager threshold, the all-pairs baseline must refuse loudly
    # rather than allocate two dense N×N float64 matrices
    if num_nodes > EAGER_ALLPAIRS_MAX_NODES:
        with pytest.raises(RoutingError, match="eager all-pairs"):
            OverlayRouter(system.network, incremental=False)

    # free the point's listeners/caches before the next, larger one
    if index is not None:
        index.close()
    system.router.close()
    system.global_state.close()
    return point


def test_scale_curve(results_dir):
    nodes, smoke = scale_points()
    prune = prune_spec()
    points = []
    for num_nodes in nodes:
        point = measure_point(num_nodes, prune=prune)
        assert REQUIRED_POINT_KEYS <= set(point)
        if smoke:
            assert point["successes"] > 0, (
                f"no composition succeeded at N={num_nodes}"
            )
        else:
            assert point["successes"] == point["composes"], (
                f"composition failed at N={num_nodes}: "
                f"{point['successes']}/{point['composes']}"
            )
        points.append(point)
        print(
            f"\nN={num_nodes} (prune_k={point['prune_k']}): "
            f"build {point['build_seconds']}s, "
            f"compose p50 {point['compose_p50_ms']}ms "
            f"p99 {point['compose_p99_ms']}ms, "
            f"widen {point['widen_retries']}, "
            f"router {point['router_memory_bytes'] / 1e6:.1f}MB, "
            f"rss {point['peak_rss_kb'] / 1024:.0f}MB"
        )

    payload = {
        "router_cache_size": SCALE_ROUTER_CACHE,
        "scorer_row_cache_size": SCALE_ROW_CACHE,
        "neighborhood_cache_size": SCALE_NEIGHBORHOOD_CACHE,
        "candidate_prune_k": "off" if prune is None else prune,
        "composes_per_point": COMPOSES_PER_POINT,
        "eager_allpairs_max_nodes": EAGER_ALLPAIRS_MAX_NODES,
        "points": points,
    }

    # prune-k ablation: what the locality pruning buys and what the
    # widen fallback costs, at a fixed mid-curve N
    if not smoke:
        ablation = []
        for label, spec in ABLATION_SPECS:
            entry = measure_point(ABLATION_NODES, prune=spec)
            entry["label"] = label
            entry["success_rate"] = entry["successes"] / entry["composes"]
            entry["widen_retry_rate"] = round(
                entry["widen_retries"] / entry["composes"], 3
            )
            ablation.append(entry)
            print(
                f"\nablation {label} (prune_k={entry['prune_k']}): "
                f"p50 {entry['compose_p50_ms']}ms, "
                f"success {entry['success_rate']:.2f}, "
                f"widen/compose {entry['widen_retry_rate']}"
            )
        payload["ablation"] = ablation

    name = "BENCH_scale_smoke.json" if smoke else "BENCH_scale.json"
    (results_dir / name).write_text(json.dumps(payload, indent=2) + "\n")

    # the curve actually reached the pruned-scoring frontier unless
    # smoke-overridden
    if not smoke:
        assert max(p["num_nodes"] for p in points) >= 50_000
