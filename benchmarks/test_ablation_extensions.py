"""Ablations for the future-work extensions.

* **Tuner comparison** — the paper's profile-based tuner vs the
  control-theoretic PID tuner (future-work direction 1) vs a fixed ratio,
  under the Fig. 8 dynamic workload.  Metric: mean shortfall below the
  target success rate, and probes spent.
* **Migration** — ACP with and without watermark-based component migration
  (future-work direction 3) under sustained load.  Migration should reduce
  hot-node failures at a small control-message cost.
"""

import random

import pytest

from repro.core import ACPComposer, PIDRatioTuner, ProbingRatioTuner
from repro.experiments import EVALUATION_DEPLOYMENT, FAST_SCALE
from repro.experiments.reporting import _align
from repro.placement.migration import ComponentMigrationManager, MigrationPolicy
from repro.simulation import (
    QOS_LEVELS,
    RateSchedule,
    StreamProcessingSimulator,
    SystemConfig,
    WorkloadGenerator,
    build_system,
)

SEED = 12
TARGET = 0.75


def dynamic_schedule(duration_s: float) -> RateSchedule:
    return RateSchedule.steps(
        (0.0, 40.0), (duration_s / 3.0, 80.0), (2.0 * duration_s / 3.0, 60.0)
    )


def run_adaptability(tuner=None, fixed_ratio=0.3):
    duration = FAST_SCALE.adaptability_duration_s
    config = SystemConfig(
        num_routers=FAST_SCALE.num_routers,
        num_nodes=400,
        deployment=EVALUATION_DEPLOYMENT,
        seed=SEED,
    )
    system = build_system(config)
    workload = WorkloadGenerator(
        system.templates,
        dynamic_schedule(duration),
        qos_level=QOS_LEVELS["normal"],
        num_client_routers=config.num_routers,
        seed=SEED + 1000,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(SEED + 17)),
        probing_ratio=fixed_ratio,
    )
    simulator = StreamProcessingSimulator(
        system,
        composer,
        workload,
        sampling_period_s=FAST_SCALE.sampling_period_s,
        tuner=tuner,
    )
    return simulator.run(duration)


def mean_shortfall(report, target=TARGET):
    shortfalls = [
        max(0.0, target - s.success_rate) for s in report.window_samples
    ]
    return sum(shortfalls) / len(shortfalls)


@pytest.fixture(scope="module")
def tuner_sweep():
    return {
        "fixed 0.3": run_adaptability(tuner=None),
        "profile tuner": run_adaptability(
            tuner=ProbingRatioTuner(target_success_rate=TARGET)
        ),
        "PID tuner": run_adaptability(
            tuner=PIDRatioTuner(target_success_rate=TARGET)
        ),
    }


def test_tuner_point_benchmark(benchmark, tuner_sweep):
    report = benchmark.pedantic(
        lambda: tuner_sweep["PID tuner"], rounds=1, iterations=1
    )
    assert report.total_requests > 0


def test_tuner_comparison(tuner_sweep, publish, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [["tuner", "success (%)", "mean shortfall (pts)", "probes/min"]]
    for name, report in tuner_sweep.items():
        rows.append(
            [
                name,
                f"{100 * report.success_rate:.1f}",
                f"{100 * mean_shortfall(report):.1f}",
                f"{report.probe_messages_per_min:.0f}",
            ]
        )
    publish("ablation_tuners", _align(rows))

    fixed = tuner_sweep["fixed 0.3"]
    profile = tuner_sweep["profile tuner"]
    pid = tuner_sweep["PID tuner"]
    # both adaptive tuners must track the target at least as well as the
    # fixed ratio (small tolerance for sampling noise)
    assert mean_shortfall(profile) <= mean_shortfall(fixed) + 0.02
    assert mean_shortfall(pid) <= mean_shortfall(fixed) + 0.02


@pytest.fixture(scope="module")
def migration_sweep():
    def run(migration):
        config = SystemConfig(
            num_routers=FAST_SCALE.num_routers,
            num_nodes=400,
            deployment=EVALUATION_DEPLOYMENT,
            seed=SEED,
        )
        system = build_system(config)
        manager = None
        if migration:
            manager = ComponentMigrationManager(
                system.network,
                system.registry,
                policy=MigrationPolicy(high_watermark=0.65, low_watermark=0.4),
                period_s=120.0,
            )
        workload = WorkloadGenerator(
            system.templates,
            RateSchedule.constant(80.0),
            qos_level=QOS_LEVELS["normal"],
            num_client_routers=config.num_routers,
            seed=SEED + 1000,
        )
        composer = ACPComposer(
            system.composition_context(rng=random.Random(SEED + 17)),
            probing_ratio=0.3,
        )
        simulator = StreamProcessingSimulator(
            system,
            composer,
            workload,
            sampling_period_s=FAST_SCALE.sampling_period_s,
            migration=manager,
        )
        report = simulator.run(FAST_SCALE.duration_s)
        return report, manager

    return {"off": run(False), "on": run(True)}


def test_migration_ablation(migration_sweep, publish, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [["migration", "success (%)", "migrations", "control msgs"]]
    for name, (report, manager) in migration_sweep.items():
        rows.append(
            [
                name,
                f"{100 * report.success_rate:.1f}",
                "0" if manager is None else str(manager.migration_count),
                "0" if manager is None else str(manager.migration_messages),
            ]
        )
    publish("ablation_migration", _align(rows))

    baseline, _ = migration_sweep["off"]
    with_migration, manager = migration_sweep["on"]
    # migration must not hurt success materially, and its mechanism must
    # actually engage under this load
    assert with_migration.success_rate >= baseline.success_rate - 0.03
    assert manager.migration_count > 0
