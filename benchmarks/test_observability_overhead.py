"""Overhead guard for the observability layer.

Every hot-path instrumentation site is gated on ``recorder.enabled``, so
with the default :data:`NULL_RECORDER` a compose pays only boolean guard
checks.  This benchmark proves that budget holds on the same operation
``bench-micro`` times (one ACP composition on the 800-router evaluation
system):

* measure the median compose latency with the null recorder and with a
  live :class:`TraceRecorder` (the *enabled* cost, reported for context);
* measure the cost of one ``if recorder.enabled:`` guard in isolation;
* bound the disabled-path overhead per compose as
  ``guarded sites per compose x guard cost`` — the site count is taken
  from a traced compose (every emitted event or counter bump crossed at
  least one guard, so the count is an upper bound) — and assert it is
  at most 5 % of the null-recorder compose median.

The guard-cost x site-count bound is deliberate: there is no
un-instrumented build to A/B against, and cross-run wall-clock diffs on
shared CI runners are noise.  Numbers land in
``benchmarks/results/BENCH_observability.json``.
"""

import json
import random
import statistics
from time import perf_counter

from repro.core import ACPComposer
from repro.experiments import EVALUATION_DEPLOYMENT
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSVector
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.observability import NULL_RECORDER, TraceRecorder
from repro.simulation import SystemConfig, build_system

ROUNDS = 40
MAX_DISABLED_OVERHEAD = 0.05


def _request_for(system, request_id=0):
    template = system.templates[2]
    graph = template.graph
    stream_rate = 100.0
    return StreamRequest(
        request_id=request_id,
        function_graph=graph,
        qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, [500.0, 0.2]),
        node_requirements={
            i: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [4.0, 25.0])
            for i in range(len(graph))
        },
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, 2.0
        ),
        stream_rate=stream_rate,
    )


def _median_compose_s(system, recorder=None):
    """Median latency of one ACP compose (+ transient cancel) in seconds."""
    context = system.composition_context(
        rng=random.Random(3), recorder=recorder
    )
    composer = ACPComposer(context, probing_ratio=0.3)
    request = _request_for(system)
    timings = []
    for _ in range(5):  # warm the fastscore caches before timing
        composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
    for _ in range(ROUNDS):
        start = perf_counter()
        outcome = composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        timings.append(perf_counter() - start)
        assert outcome.success
    return statistics.median(timings)


def _guard_cost_s():
    """Cost of one ``if recorder.enabled:`` check on the null recorder."""
    recorder = NULL_RECORDER
    n = 200_000
    best = float("inf")
    for _ in range(5):
        start = perf_counter()
        for _ in range(n):
            if recorder.enabled:
                raise AssertionError("null recorder must stay disabled")
        guarded = perf_counter() - start
        start = perf_counter()
        for _ in range(n):
            pass
        baseline = perf_counter() - start
        best = min(best, max(guarded - baseline, 0.0) / n)
    return best


def _guarded_sites_per_compose(system):
    """Upper bound on guard checks one compose executes.

    Every trace event and every counter increment a traced compose
    produces sits behind at least one ``recorder.enabled`` guard, so
    their combined count bounds the guards the disabled path crosses.
    """
    recorder = TraceRecorder()
    context = system.composition_context(
        rng=random.Random(3), recorder=recorder
    )
    composer = ACPComposer(context, probing_ratio=0.3)
    request = _request_for(system)
    composer.compose(request)  # warm-up: table rebuilds happen here
    context.allocator.cancel_transient(request.request_id)
    before_events = len(recorder.events)
    before_counts = sum(
        recorder.registry.snapshot()["counters"].values()
    )
    composer.compose(request)
    context.allocator.cancel_transient(request.request_id)
    events = len(recorder.events) - before_events
    counts = sum(
        recorder.registry.snapshot()["counters"].values()
    ) - before_counts
    assert events > 0, "traced compose emitted no events"
    return events + counts


def test_null_recorder_overhead_bound(results_dir):
    system = build_system(
        SystemConfig(
            num_routers=800,
            num_nodes=400,
            deployment=EVALUATION_DEPLOYMENT,
            seed=1,
        )
    )
    null_median = _median_compose_s(system)
    traced_median = _median_compose_s(system, recorder=TraceRecorder())
    guard_cost = _guard_cost_s()
    sites = _guarded_sites_per_compose(system)
    disabled_fraction = (sites * guard_cost) / null_median

    results = {
        "compose_null_median_s": null_median,
        "compose_traced_median_s": traced_median,
        "traced_overhead_ratio": traced_median / null_median,
        "guard_cost_ns": guard_cost * 1e9,
        "guarded_sites_per_compose": sites,
        "disabled_overhead_fraction": disabled_fraction,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    path = results_dir / "BENCH_observability.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"\nnull compose median {null_median * 1e3:.3f}ms, traced "
        f"{traced_median * 1e3:.3f}ms ({results['traced_overhead_ratio']:.2f}x); "
        f"disabled-path bound {disabled_fraction:.4%} "
        f"({sites} guards x {guard_cost * 1e9:.1f}ns)"
    )
    assert disabled_fraction <= MAX_DISABLED_OVERHEAD, (
        f"disabled observability path bound {disabled_fraction:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of the compose median"
    )
