"""Macro benchmark: proactive live migration vs recover-only.

The live-migration subsystem only earns its keep if moving sessions off
sustained-hot nodes measurably helps the *next* requests — fewer probes
dropped at saturated nodes, higher composition success, no worse setup
latency — after paying its own honestly-reported costs (paused-stream
time, slack aborts, probe traffic).  This harness runs the *same*
Fig. 8-style simulation (identical system, diurnal + regional-spike
workload, and light fault cocktail — every stream is seed-derived)
twice:

* **recover-only** — faults trigger re-composition, but sessions stay
  pinned to whatever nodes the spike heated up;
* **proactive+recover** — the same recovery policy plus the live
  rebalancing rounds of :data:`~repro.experiments.DEFAULT_MIGRATION_PLAN`.

It checks the proactive run strictly beats recover-only on success rate
with p99 setup latency no worse, that migration costs are actually paid
and recorded (the win must not be free), that a zero plan is
decision-identical to no plan at macro scale, and writes

    benchmarks/results/BENCH_migration.json

with the figures EXPERIMENTS.md quotes.

``BENCH_MIGRATION_DURATION`` (seconds) and ``BENCH_MIGRATION_NODES``
override the horizon and system size for smoke runs — CI uses a light
pair and the output lands in ``BENCH_migration_smoke.json`` so a smoke
run can never clobber the committed full result.  Smoke runs keep the
plumbing assertions but skip the win/cost margins (a short horizon may
see no sustained hotspot at all).
"""

from __future__ import annotations

import json
import os

from repro.experiments import (
    format_migration_table,
    migration_to_dict,
    run_migration,
)
from repro.experiments.config import ExperimentScale
from repro.middleware.migration import MigrationPlan

#: One macro point: the population substrate at a 30-minute horizon.
#: The diurnal curve at 0.75x load keeps the mesh moderately contended
#: (recover-only success ~0.59) while the 4x regional spike heats a
#: subset of nodes past the high watermark — the regime where proactive
#: migration has both a reason to fire and cool targets to fire at.
BENCH_CONFIG = dict(
    num_routers=800,
    num_nodes=400,
    duration_s=1800.0,
    sampling_period_s=60.0,
    seed=0,
    load_multiplier=0.75,
    spike_peak=4.0,
)


def bench_dimensions():
    """(duration_s, num_nodes, smoke?) — env-overridable for smoke runs."""
    duration = os.environ.get("BENCH_MIGRATION_DURATION")
    nodes = os.environ.get("BENCH_MIGRATION_NODES")
    smoke = duration is not None or nodes is not None
    return (
        float(duration) if duration else BENCH_CONFIG["duration_s"],
        int(nodes) if nodes else BENCH_CONFIG["num_nodes"],
        smoke,
    )


def _scale(duration_s: float) -> ExperimentScale:
    return ExperimentScale(
        name="migration-bench",
        num_routers=BENCH_CONFIG["num_routers"],
        duration_s=duration_s,
        adaptability_duration_s=duration_s,
        sampling_period_s=BENCH_CONFIG["sampling_period_s"],
        optimal_max_explored=30_000,
    )


def test_macro_migration(results_dir):
    duration_s, num_nodes, smoke = bench_dimensions()
    result = run_migration(
        scale=_scale(duration_s),
        num_nodes=num_nodes,
        seed=BENCH_CONFIG["seed"],
        load_multiplier=BENCH_CONFIG["load_multiplier"],
        spike_peak=BENCH_CONFIG["spike_peak"],
    )
    recover_only, proactive = result.recover_only, result.proactive

    # both arms saw the identical workload and stayed exercised
    assert recover_only.total_requests == proactive.total_requests > 0
    assert recover_only.sessions_disrupted > 0
    assert proactive.sessions_disrupted > 0
    # the recover-only arm never touches the migration machinery
    assert recover_only.sessions_migrated == 0
    assert recover_only.migration_probe_messages == 0

    if not smoke:
        # the win: strictly better success, p99 setup no worse
        assert proactive.success_rate > recover_only.success_rate
        assert (
            proactive.p99_setup_latency_ms <= recover_only.p99_setup_latency_ms
        )
        # ... and it was not free: sessions actually moved, streams
        # actually paused, and the slack gate actually rejected some
        # transfers (graceful degradation is exercised, not vestigial)
        assert proactive.sessions_migrated > 0
        assert proactive.migration_paused_stream_s > 0.0
        assert proactive.migrations_aborted_on_slack > 0
        assert proactive.migration_probe_messages > 0

    payload = migration_to_dict(result)
    payload["config"] = dict(
        BENCH_CONFIG, duration_s=duration_s, num_nodes=num_nodes
    )
    name = "BENCH_migration_smoke.json" if smoke else "BENCH_migration.json"
    (results_dir / name).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{format_migration_table(result)}\n")


def test_zero_migration_plan_is_invisible():
    """A zero plan must not perturb a run: same decisions, same report.

    This is the macro-scale guard behind the migration plumbing —
    threading the rebalance rounds and report counters through the
    simulator must leave migration-free runs byte-identical.
    (``tests/test_migration_live.py`` holds the unit-scale version.)
    """
    duration_s, num_nodes, _ = bench_dimensions()
    scale = _scale(min(duration_s, 600.0))
    kwargs = dict(
        scale=scale,
        num_nodes=min(num_nodes, 200),
        seed=BENCH_CONFIG["seed"],
        load_multiplier=BENCH_CONFIG["load_multiplier"],
        spike_peak=BENCH_CONFIG["spike_peak"],
        plan=MigrationPlan.none(),
    )
    zeroed = run_migration(**kwargs)
    # with a zero plan the "proactive" arm builds no migration manager,
    # so both arms of the same harness run must be byte-identical
    assert repr(zeroed.recover_only) == repr(zeroed.proactive)


def test_migration_run_is_deterministic():
    """Same seed + same plan => byte-identical proactive reports."""
    duration_s, num_nodes, _ = bench_dimensions()
    scale = _scale(min(duration_s, 600.0))
    kwargs = dict(
        scale=scale,
        num_nodes=min(num_nodes, 200),
        seed=BENCH_CONFIG["seed"],
        load_multiplier=BENCH_CONFIG["load_multiplier"],
        spike_peak=BENCH_CONFIG["spike_peak"],
    )
    first = run_migration(**kwargs)
    second = run_migration(**kwargs)
    assert repr(first.proactive) == repr(second.proactive)
    assert repr(first.recover_only) == repr(second.recover_only)
