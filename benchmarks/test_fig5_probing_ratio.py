"""Figure 5: composition success rate vs probing ratio.

5(a) sweeps the probing ratio under two request rates (50 and 100
req/min); 5(b) under two QoS stringency levels.  The paper's shapes to
verify: success rises steeply with α and saturates early; the saturation
level drops with workload and with QoS stringency.
"""

import pytest

from repro.experiments import (
    FAST_SCALE,
    format_figure_table,
    run_fig5a,
    run_fig5b,
)

#: trimmed ratio grid: dense where the curve bends, sparse at the plateau
RATIOS = (0.1, 0.2, 0.3, 0.5, 0.7, 1.0)


def _assert_rising_then_saturating(series):
    ys = series.ys()
    # the plateau end must not sit below the start of the curve
    assert ys[-1] >= ys[0] - 0.05, f"{series.label}: no rise ({ys})"
    # saturation: the last half of the grid moves less than the first half
    first_half = abs(ys[len(ys) // 2] - ys[0])
    second_half = abs(ys[-1] - ys[len(ys) // 2])
    assert second_half <= first_half + 0.10, f"{series.label}: no saturation"


def test_fig5a_success_vs_ratio_by_request_rate(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_fig5a(
            scale=FAST_SCALE,
            request_rates=(50.0, 100.0),
            probing_ratios=RATIOS,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    publish("fig5a", format_figure_table(result))

    light = result.series["50 reqs/min"]
    heavy = result.series["100 reqs/min"]
    _assert_rising_then_saturating(light)
    _assert_rising_then_saturating(heavy)
    # heavier workload saturates strictly lower (paper Fig. 5(a))
    assert max(heavy.ys()) < max(light.ys())
    # and is lower pointwise almost everywhere
    worse = sum(1 for l, h in zip(light.ys(), heavy.ys()) if h < l)
    assert worse >= len(RATIOS) - 1


def test_fig5b_success_vs_ratio_by_qos_level(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_fig5b(
            scale=FAST_SCALE,
            qos_levels=("high", "very_high"),
            request_rate=50.0,
            probing_ratios=RATIOS,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    publish("fig5b", format_figure_table(result))

    high = result.series["high QoS"]
    very_high = result.series["very_high QoS"]
    _assert_rising_then_saturating(high)
    # stricter QoS saturates lower (paper Fig. 5(b))
    assert max(very_high.ys()) < max(high.ys())
