"""Ablation: per-hop candidate ranking (risk vs congestion functions).

Section 3.5 ranks candidates by the risk function D(c) (Eq. 9) and breaks
near-ties with the congestion function W(c) (Eq. 10).  This ablation runs
ACP with each ranking in isolation:

* risk-only     — QoS-safe but load-blind: picks the lowest-risk hop even
  when an equally safe, idler one exists;
* congestion-only — load-aware but QoS-blind: happily walks into QoS dead
  ends under tight budgets;
* combined (the paper's scheme) — should dominate or match both.
"""

import random

import pytest

from repro.core import ACPComposer, RankingPolicy
from repro.experiments import EVALUATION_DEPLOYMENT, FAST_SCALE
from repro.experiments.reporting import _align
from repro.simulation import (
    QOS_LEVELS,
    RateSchedule,
    StreamProcessingSimulator,
    SystemConfig,
    WorkloadGenerator,
    build_system,
)

RATE = 80.0
SEED = 6


def run_point(ranking: RankingPolicy, qos_level="very_high"):
    config = SystemConfig(
        num_routers=FAST_SCALE.num_routers,
        num_nodes=400,
        deployment=EVALUATION_DEPLOYMENT,
        seed=SEED,
    )
    system = build_system(config)
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.constant(RATE),
        qos_level=QOS_LEVELS[qos_level],
        num_client_routers=config.num_routers,
        seed=SEED + 1000,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(SEED + 17)),
        probing_ratio=0.3,
    )
    composer.ranking_policy = ranking
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=FAST_SCALE.sampling_period_s
    )
    return simulator.run(FAST_SCALE.duration_s)


@pytest.fixture(scope="module")
def sweep():
    return {
        policy: run_point(policy)
        for policy in (
            RankingPolicy.RISK_THEN_CONGESTION,
            RankingPolicy.RISK_ONLY,
            RankingPolicy.CONGESTION_ONLY,
        )
    }


def test_ranking_point_benchmark(benchmark, sweep):
    report = benchmark.pedantic(
        lambda: sweep[RankingPolicy.RISK_THEN_CONGESTION],
        rounds=1,
        iterations=1,
    )
    assert report.total_requests > 0


def test_ranking_ablation(sweep, publish, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [["per-hop ranking", "success (%)", "mean phi", "qos failures"]]
    for policy, report in sweep.items():
        qos_failures = report.failure_reasons.get(
            "qos_violation", 0
        ) + report.failure_reasons.get("no_qualified_composition", 0)
        rows.append(
            [
                policy.value,
                f"{100 * report.success_rate:.1f}",
                "-" if report.mean_phi is None else f"{report.mean_phi:.2f}",
                str(qos_failures),
            ]
        )
    publish("ablation_selection", _align(rows))

    combined = sweep[RankingPolicy.RISK_THEN_CONGESTION]
    risk_only = sweep[RankingPolicy.RISK_ONLY]
    congestion_only = sweep[RankingPolicy.CONGESTION_ONLY]
    # the congestion tie-break must add value over risk alone
    assert combined.success_rate >= risk_only.success_rate - 0.03
    # congestion-only can match or beat the combined scheme when QoS
    # budgets are not the binding constraint (a real finding, recorded in
    # EXPERIMENTS.md) — but it must not dominate it by a wide margin
    assert combined.success_rate >= congestion_only.success_rate - 0.12
    # and the load-aware tie-break buys better balance than risk alone
    if combined.mean_phi is not None and risk_only.mean_phi is not None:
        assert combined.mean_phi <= risk_only.mean_phi + 0.15
