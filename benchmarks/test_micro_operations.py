"""Micro-benchmarks of the hot operations behind every figure.

These are classic pytest-benchmark timings (many rounds, statistics) of
the per-request building blocks: a single composition by each algorithm,
virtual-link routing queries, and φ(λ) evaluation.  They bound the cost of
scaling the simulation up and catch performance regressions in the core.
"""

import random

import pytest

from repro.core import (
    ACPComposer,
    CompositionEvaluator,
    OptimalComposer,
    RandomComposer,
)
from repro.experiments import EVALUATION_DEPLOYMENT
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSVector
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.simulation import SystemConfig, build_system


@pytest.fixture(scope="module")
def system():
    return build_system(
        SystemConfig(
            num_routers=800,
            num_nodes=400,
            deployment=EVALUATION_DEPLOYMENT,
            seed=1,
        )
    )


@pytest.fixture(scope="module")
def context(system):
    return system.composition_context(rng=random.Random(3))


def request_for(system, request_id=0):
    template = system.templates[2]
    graph = template.graph
    stream_rate = 100.0
    return StreamRequest(
        request_id=request_id,
        function_graph=graph,
        qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, [500.0, 0.2]),
        node_requirements={
            i: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [4.0, 25.0])
            for i in range(len(graph))
        },
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, 2.0
        ),
        stream_rate=stream_rate,
    )


def test_acp_compose_latency(benchmark, system, context):
    composer = ACPComposer(context, probing_ratio=0.3)
    request = request_for(system)

    def compose():
        outcome = composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        return outcome

    outcome = benchmark(compose)
    assert outcome.success


def test_acp_compose_latency_scalar(benchmark, system, context):
    """The scalar reference path of the same composition — its ratio to
    ``test_acp_compose_latency`` is the vectorised-scoring speedup."""
    composer = ACPComposer(context, probing_ratio=0.3, vectorized=False)
    request = request_for(system)

    def compose():
        outcome = composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        return outcome

    outcome = benchmark(compose)
    assert outcome.success


def test_optimal_compose_latency(benchmark, system, context):
    composer = OptimalComposer(context, max_explored=5000)
    request = request_for(system, request_id=1)

    def compose():
        outcome = composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        return outcome

    outcome = benchmark(compose)
    assert outcome.success


def test_random_compose_latency(benchmark, system, context):
    composer = RandomComposer(context)
    request = request_for(system, request_id=2)

    def compose():
        outcome = composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        return outcome

    benchmark(compose)


def test_virtual_link_query_latency(benchmark, system):
    router = system.router
    n = len(system.network)
    rng = random.Random(0)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(256)]

    def query():
        total = 0.0
        for a, b in pairs:
            total += router.virtual_link_qos(a, b)["delay"]
        return total

    assert benchmark(query) >= 0.0


def test_phi_evaluation_latency(benchmark, system, context):
    evaluator = CompositionEvaluator(context)
    request = request_for(system, request_id=3)
    outcome = ACPComposer(context, probing_ratio=0.5).compose(request)
    context.allocator.cancel_transient(request.request_id)
    assert outcome.success
    composition = outcome.composition

    result = benchmark(lambda: evaluator.phi(composition))
    assert result > 0.0


def test_global_state_update_path_latency(benchmark, system):
    node = system.network.node(0)
    amount = ResourceVector(DEFAULT_RESOURCE_SCHEMA, [1.0, 5.0])

    def churn():
        node.allocate(amount)
        node.release(amount)

    benchmark(churn)
