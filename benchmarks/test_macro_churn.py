"""Macro benchmark: a Fig. 8-style churn run, incremental vs eager routing.

The adaptability and scalability results (Figs. 7-8) run under continuous
node failure and recovery.  With the eager baseline every churn event
re-solves all-pairs shortest paths and flushes every derived cache; the
incremental router (lazy per-source trees + dirty-set invalidation)
re-solves only the trees the event can affect and keeps everyone else's
cached state — including ``fastscore``'s candidate-table columns — valid.

This harness times the *same* end-to-end simulation (dynamic 3-phase
workload plus stochastic crash/recovery rounds) both ways, checks the two
runs are decision-identical (same report, same failure events — the
incremental router must not change a single composition), and writes

    benchmarks/results/BENCH_macro.json

with the wall-clock figures.  The acceptance bar is a >= 2x speedup;
EXPERIMENTS.md quotes the recorded numbers.
"""

from __future__ import annotations

import json
import random
import time

from repro.core import ACPComposer
from repro.simulation import (
    FailureInjector,
    RateSchedule,
    StreamProcessingSimulator,
    WorkloadGenerator,
)
from repro.simulation.system import SystemConfig, build_system

#: One churn-heavy macro point: mid-size mesh, 3-phase load, a failure
#: round every 5 simulated seconds.  All seeds fixed — the eager and
#: incremental runs must see byte-identical systems and event streams.
MACRO_CONFIG = dict(
    num_routers=800,
    num_nodes=400,
    seed=11,
    duration_s=900.0,
    failure_period_s=5.0,
    fail_probability=0.02,
    recover_probability=0.5,
    probing_ratio=0.3,
)


def _run_churn(incremental: bool):
    config = SystemConfig(
        num_routers=MACRO_CONFIG["num_routers"],
        num_nodes=MACRO_CONFIG["num_nodes"],
        seed=MACRO_CONFIG["seed"],
        incremental_routing=incremental,
    )
    system = build_system(config)
    injector = FailureInjector(
        system.network,
        system.router,
        fail_probability=MACRO_CONFIG["fail_probability"],
        recover_probability=MACRO_CONFIG["recover_probability"],
        period_s=MACRO_CONFIG["failure_period_s"],
        rng=random.Random(7),
    )
    duration = MACRO_CONFIG["duration_s"]
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.steps(  # Fig. 8's 3-phase shape, scaled down
            (0.0, 6.0), (duration / 3.0, 12.0), (2.0 * duration / 3.0, 9.0)
        ),
        seed=13,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(9)),
        probing_ratio=MACRO_CONFIG["probing_ratio"],
    )
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=150.0, failures=injector
    )
    start = time.perf_counter()
    report = simulator.run(duration)
    elapsed = time.perf_counter() - start
    return elapsed, report, injector.events


def test_macro_churn_speedup(results_dir):
    eager_s, eager_report, eager_events = _run_churn(incremental=False)
    incremental_s, incremental_report, incremental_events = _run_churn(
        incremental=True
    )

    # the routing refactor must be invisible to the simulation: identical
    # churn trajectory, identical composition decisions, identical figures
    assert incremental_events == eager_events
    assert incremental_report == eager_report
    assert len(eager_events) > 50  # the run actually exercised churn

    speedup = eager_s / incremental_s
    payload = {
        "config": MACRO_CONFIG,
        "churn_events": len(eager_events),
        "total_requests": eager_report.total_requests,
        "eager_seconds": round(eager_s, 3),
        "incremental_seconds": round(incremental_s, 3),
        "speedup": round(speedup, 2),
    }
    (results_dir / "BENCH_macro.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\nmacro churn: eager {eager_s:.2f}s, incremental "
          f"{incremental_s:.2f}s, speedup {speedup:.2f}x\n")
    assert speedup >= 2.0
