"""Ablation: coarse-grain global state granularity.

DESIGN.md calls out the hybrid approach's central design choice — how
coarse the global state may be.  Two knobs:

* the threshold fraction that gates update messages (paper default 10 %),
  swept from near-precise (1 %) to very coarse (50 %);
* value quantization (bucketised availability) on top of the default
  threshold.

Expected trade-off: tighter thresholds buy little extra success but cost
many more state-update messages; very coarse state starts to erode ACP's
guidance. The sweep regenerates the numbers behind that claim.
"""

import random

import pytest

from repro.core import ACPComposer
from repro.experiments import EVALUATION_DEPLOYMENT, FAST_SCALE
from repro.experiments.reporting import _align
from repro.simulation import (
    QOS_LEVELS,
    RateSchedule,
    StreamProcessingSimulator,
    SystemConfig,
    WorkloadGenerator,
    build_system,
)

THRESHOLDS = (0.01, 0.1, 0.3, 0.5)
RATE = 80.0
SEED = 4


def run_point(threshold: float, quantization_levels=None):
    config = SystemConfig(
        num_routers=FAST_SCALE.num_routers,
        num_nodes=400,
        deployment=EVALUATION_DEPLOYMENT,
        state_threshold_fraction=threshold,
        seed=SEED,
    )
    system = build_system(config)
    if quantization_levels is not None:
        system.global_state.quantization_levels = quantization_levels
        system.global_state.force_refresh()
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.constant(RATE),
        qos_level=QOS_LEVELS["normal"],
        num_client_routers=config.num_routers,
        seed=SEED + 1000,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(SEED + 17)),
        probing_ratio=0.3,
    )
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=FAST_SCALE.sampling_period_s
    )
    return simulator.run(FAST_SCALE.duration_s)


@pytest.fixture(scope="module")
def sweep():
    return {threshold: run_point(threshold) for threshold in THRESHOLDS}


def test_threshold_point_benchmark(benchmark, sweep):
    report = benchmark.pedantic(lambda: sweep[0.1], rounds=1, iterations=1)
    assert report.total_requests > 0


def test_threshold_tradeoff(sweep, publish, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [["threshold", "success (%)", "state msgs/min", "probes/min"]]
    for threshold, report in sorted(sweep.items()):
        rows.append(
            [
                f"{threshold:g}",
                f"{100 * report.success_rate:.1f}",
                f"{report.state_messages_per_min:.0f}",
                f"{report.probe_messages_per_min:.0f}",
            ]
        )
    publish("ablation_state_threshold", _align(rows))

    # state maintenance overhead falls monotonically with the threshold
    messages = [sweep[t].state_messages_per_min for t in sorted(sweep)]
    assert messages == sorted(messages, reverse=True)
    assert messages[0] > 2.0 * messages[-1]

    # success degrades monotonically-ish and gracefully: even a 50% drift
    # threshold costs ~20 points, not a collapse (measured ≈0.74 → 0.54)
    success = [sweep[t].success_rate for t in sorted(sweep)]
    assert success[0] >= success[-1]
    assert max(success) - min(success) < 0.30


def test_quantization_on_top_of_threshold(publish, benchmark):
    exact = run_point(0.1)
    quantized = benchmark.pedantic(
        lambda: run_point(0.1, quantization_levels=4), rounds=1, iterations=1
    )
    rows = [
        ["global state values", "success (%)", "state msgs/min"],
        [
            "exact",
            f"{100 * exact.success_rate:.1f}",
            f"{exact.state_messages_per_min:.0f}",
        ],
        [
            "4-level buckets",
            f"{100 * quantized.success_rate:.1f}",
            f"{quantized.state_messages_per_min:.0f}",
        ],
    ]
    publish("ablation_state_quantization", _align(rows))
    # bucketised guidance must not collapse ACP (graceful degradation)
    assert quantized.success_rate > exact.success_rate - 0.10
