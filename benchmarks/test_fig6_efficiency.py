"""Figure 6: efficiency — success rate and overhead vs request rate.

400 nodes, α = 0.3, request rates 20–100 req/min, all six algorithms.
Shapes to verify against the paper:

* 6(a): success falls with the request rate for every algorithm, with the
  ordering Optimal ≥ ACP ≳ SP > RP > Random > Static;
* 6(b): the optimal algorithm's exhaustive-search overhead is at least an
  order of magnitude above ACP's (the paper reports "as much as 95 %"
  reduction), and ACP ≈ RP plus a small global-state increment.
"""

import pytest

from repro.experiments import (
    ALGORITHMS,
    FAST_SCALE,
    format_figure_table,
    run_fig6,
)

RATES = (20.0, 40.0, 60.0, 80.0, 100.0)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(scale=FAST_SCALE, request_rates=RATES, seed=0)


def test_fig6_runs_and_publishes(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_fig6(
            scale=FAST_SCALE, request_rates=(40.0,), algorithms=("ACP",), seed=1
        ),
        rounds=1,
        iterations=1,
    )
    # the single-point run only times one simulation; assertions use the
    # module-scoped full sweep below
    assert result[0].series["ACP"].points[0][1] > 0.0


class TestFig6a:
    def test_success_declines_with_load(self, fig6, publish, benchmark):
        success, _overhead = fig6
        benchmark.pedantic(
            lambda: format_figure_table(success), rounds=1, iterations=1
        )
        publish("fig6a", format_figure_table(success))
        for algorithm in ("Optimal", "ACP", "SP", "RP"):
            ys = success.series[algorithm].ys()
            assert ys[0] > ys[-1], f"{algorithm}: no decline {ys}"

    def test_algorithm_ordering(self, fig6, benchmark):
        success, _overhead = fig6
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

        def mean(algorithm):
            ys = success.series[algorithm].ys()
            return sum(ys) / len(ys)

        assert mean("Optimal") >= mean("ACP") - 0.02
        assert mean("ACP") > mean("RP")
        assert mean("SP") > mean("RP")
        assert mean("RP") > mean("Random")
        assert mean("Random") > mean("Static")

    def test_acp_tracks_optimal(self, fig6, benchmark):
        """ACP stays within ~12 points of the optimal algorithm at every
        rate (the paper's 'similar performance as the optimal')."""
        success, _overhead = fig6
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for (rate, optimal), (_r, acp) in zip(
            success.series["Optimal"].points, success.series["ACP"].points
        ):
            assert acp >= optimal - 0.12, f"gap too wide at rate {rate}"


class TestFig6b:
    def test_overhead_ordering_and_reduction(self, fig6, publish, benchmark):
        _success, overhead = fig6
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        publish("fig6b", format_figure_table(overhead, percent=False))
        optimal = overhead.series["Optimal"].ys()
        acp = overhead.series["ACP"].ys()
        rp = overhead.series["RP"].ys()
        for o, a in zip(optimal, acp):
            assert a < o / 10.0, "ACP must cut overhead by >90%"
        # hybrid: ACP pays only a modest premium over the fully
        # distributed RP (global-state maintenance messages)
        for a, r in zip(acp, rp):
            assert a < 3.0 * r + 100.0

    def test_overhead_grows_with_rate(self, fig6, benchmark):
        _success, overhead = fig6
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for algorithm in ("Optimal", "ACP"):
            ys = overhead.series[algorithm].ys()
            assert ys[-1] > ys[0]
