"""Unit tests for the component registry and deployment."""

import random

import pytest

from repro.discovery.deployment import ComponentDeployer, DeploymentProfile
from repro.discovery.registry import ComponentRegistry
from repro.model.functions import FunctionCatalog
from repro.topology.ip_network import IPNetwork
from repro.topology.overlay import build_overlay_network
from repro.topology.powerlaw import PowerLawTopologyGenerator
from tests.conftest import make_component


class TestRegistry:
    def test_register_and_candidates(self, catalog):
        registry = ComponentRegistry()
        c0 = make_component(0, catalog[0], 0)
        c1 = make_component(1, catalog[0], 1)
        registry.register(c0)
        registry.register(c1)
        assert registry.candidates(catalog[0]) == (c0, c1)
        assert registry.candidate_count(catalog[0]) == 2

    def test_duplicate_id_rejected(self, catalog):
        registry = ComponentRegistry([make_component(0, catalog[0], 0)])
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(make_component(0, catalog[1], 1))

    def test_missing_function_empty(self, catalog):
        registry = ComponentRegistry()
        assert registry.candidates(catalog[3]) == ()
        assert registry.candidate_count(catalog[3]) == 0

    def test_static_choice_is_first_registered(self, catalog):
        registry = ComponentRegistry()
        first = make_component(5, catalog[0], 2)
        registry.register(first)
        registry.register(make_component(6, catalog[0], 3))
        assert registry.static_choice(catalog[0]) is first

    def test_static_choice_none_when_undeployed(self, catalog):
        assert ComponentRegistry().static_choice(catalog[0]) is None

    def test_component_lookup(self, catalog):
        component = make_component(9, catalog[2], 4)
        registry = ComponentRegistry([component])
        assert registry.component(9) is component
        with pytest.raises(KeyError, match="unknown component"):
            registry.component(8)

    def test_functions_covered(self, catalog):
        registry = ComponentRegistry(
            [make_component(0, catalog[2], 0), make_component(1, catalog[5], 1)]
        )
        assert registry.functions_covered() == (2, 5)

    def test_replace_preserves_order(self, catalog):
        registry = ComponentRegistry(
            [make_component(0, catalog[0], 0), make_component(1, catalog[0], 1)]
        )
        moved = make_component(0, catalog[0], 5)
        old = registry.replace(moved)
        assert old.node_id == 0
        assert [c.component_id for c in registry.candidates(catalog[0])] == [0, 1]
        assert registry.component(0).node_id == 5

    def test_replace_function_mismatch_rejected(self, catalog):
        registry = ComponentRegistry([make_component(0, catalog[0], 0)])
        with pytest.raises(ValueError, match="must provide"):
            registry.replace(make_component(0, catalog[1], 5))

    def test_replace_unknown_id_rejected(self, catalog):
        registry = ComponentRegistry()
        with pytest.raises(KeyError):
            registry.replace(make_component(0, catalog[0], 5))


class TestDeployment:
    @pytest.fixture(scope="class")
    def network(self):
        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=100, seed=1).generate())
        return build_overlay_network(ip, 30, rng=random.Random(2))

    def test_every_function_covered(self, network):
        catalog = FunctionCatalog(size=20)
        deployer = ComponentDeployer(
            catalog, DeploymentProfile(components_per_node=(1, 2))
        )
        registry = deployer.deploy(network, rng=random.Random(3))
        assert registry.functions_covered() == tuple(range(20))

    def test_per_node_quota_respected(self):
        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=100, seed=4).generate())
        network = build_overlay_network(ip, 30, rng=random.Random(5))
        catalog = FunctionCatalog(size=10)
        profile = DeploymentProfile(components_per_node=(2, 2))
        ComponentDeployer(catalog, profile).deploy(network, rng=random.Random(6))
        for node in network.nodes:
            assert len(node.components) == 2

    def test_too_small_deployment_rejected(self, network):
        catalog = FunctionCatalog(size=80)
        deployer = ComponentDeployer(
            catalog, DeploymentProfile(components_per_node=(1, 1))
        )
        # 30 nodes * 1 component < 80 functions
        with pytest.raises(ValueError, match="deployment too small"):
            deployer.deploy(network, rng=random.Random(0))

    def test_deterministic_for_seed(self):
        catalog = FunctionCatalog(size=10)
        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=100, seed=7).generate())

        def deploy(seed):
            network = build_overlay_network(ip, 20, rng=random.Random(8))
            registry = ComponentDeployer(
                catalog, DeploymentProfile(components_per_node=(1, 2))
            ).deploy(network, rng=random.Random(seed))
            return [
                (c.component_id, c.function.function_id, c.node_id)
                for c in registry.components()
            ]

        assert deploy(1) == deploy(1)
        assert deploy(1) != deploy(2)

    def test_qos_within_profile_ranges(self, network):
        catalog = FunctionCatalog(size=10)
        profile = DeploymentProfile(
            components_per_node=(1, 1),
            processing_delay_ms=(5.0, 50.0),
            loss_rate=(0.001, 0.01),
        )
        # fresh network to avoid double hosting
        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=100, seed=9).generate())
        fresh = build_overlay_network(ip, 15, rng=random.Random(1))
        registry = ComponentDeployer(catalog, profile).deploy(
            fresh, rng=random.Random(2)
        )
        for component in registry.components():
            assert 5.0 <= component.qos["delay"] <= 50.0
            assert 0.001 <= component.qos["loss_rate"] <= 0.01

    def test_format_restriction_probability_zero_keeps_full_interface(self):
        catalog = FunctionCatalog(size=10)
        profile = DeploymentProfile(
            components_per_node=(1, 1), input_format_restriction_prob=0.0
        )
        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=100, seed=10).generate())
        network = build_overlay_network(ip, 15, rng=random.Random(3))
        registry = ComponentDeployer(catalog, profile).deploy(
            network, rng=random.Random(4)
        )
        for component in registry.components():
            assert component.input_formats == component.function.input_formats

    def test_invalid_profile(self):
        with pytest.raises(ValueError, match="components_per_node"):
            DeploymentProfile(components_per_node=(3, 2))
        with pytest.raises(ValueError, match="restriction_prob"):
            DeploymentProfile(input_format_restriction_prob=1.5)
