"""Unit tests for the probing ratio tuner (Section 3.4)."""

import pytest

from repro.core.tuning import ProbingRatioTuner


class TestConstruction:
    def test_defaults(self):
        tuner = ProbingRatioTuner()
        assert tuner.current_ratio() == pytest.approx(0.1)
        assert tuner.target_success_rate == 0.9

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target"):
            ProbingRatioTuner(target_success_rate=0.0)

    def test_invalid_ratio_ordering(self):
        with pytest.raises(ValueError, match="base_ratio"):
            ProbingRatioTuner(base_ratio=0.5, max_ratio=0.3)

    def test_invalid_step(self):
        with pytest.raises(ValueError, match="step"):
            ProbingRatioTuner(step=0.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            ProbingRatioTuner(tolerance=-0.1)


class TestControlLoop:
    def test_ratio_rises_on_shortfall(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9)
        ratio = tuner.record_sample(0.85)
        assert ratio > 0.1

    def test_large_shortfall_jumps_multiple_steps(self):
        """Fig. 8(b): a 35-point shortfall jumps the ratio by ~3 steps, not
        one."""
        tuner = ProbingRatioTuner(target_success_rate=0.9, base_ratio=0.2)
        ratio = tuner.record_sample(0.55)
        assert ratio >= 0.5 - 1e-9

    def test_float_shortfall_does_not_overshoot_grid(self):
        """A 30-point shortfall is exactly three 0.1-steps.  Float error
        makes ``0.9 - 0.6`` come out just above 0.3, and a naive ceil
        (``-(-shortfall // step)``) then overshoots to four steps."""
        tuner = ProbingRatioTuner(target_success_rate=0.9)
        ratio = tuner.record_sample(0.6)
        assert ratio == pytest.approx(0.4)

    def test_ratio_capped_at_max(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9, max_ratio=0.6)
        tuner.record_sample(0.1)
        assert tuner.current_ratio() <= 0.6

    def test_ratio_descends_when_above_target(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9, base_ratio=0.1)
        tuner.record_sample(0.3)  # jump up
        high = tuner.current_ratio()
        tuner.record_sample(0.99)
        assert tuner.current_ratio() == pytest.approx(high - 0.1)

    def test_never_descends_below_base(self):
        tuner = ProbingRatioTuner(target_success_rate=0.5, base_ratio=0.1)
        for _ in range(5):
            tuner.record_sample(0.99)
        assert tuner.current_ratio() == pytest.approx(0.1)

    def test_in_band_seeks_minimal_ratio(self):
        """Meeting the target is enough to probe a cheaper ratio when the
        profile has not yet shown that it misses (minimal-α principle)."""
        tuner = ProbingRatioTuner(target_success_rate=0.9, tolerance=0.02)
        tuner.record_sample(0.5)
        ratio = tuner.current_ratio()
        tuner.record_sample(0.905)
        assert tuner.current_ratio() == pytest.approx(ratio - 0.1)

    def test_in_band_holds_when_profile_blocks_descent(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9, tolerance=0.02)
        tuner.record_sample(0.7)  # profile[0.1] = 0.7 -> jumps to 0.3
        tuner.record_sample(0.2)  # reprofiles; profile[0.3] = 0.2 -> jump
        ratio = tuner.current_ratio()
        assert ratio > 0.3
        # profile now knows lower ratios miss; a just-in-band sample where
        # the step below was measured to miss must hold
        tuner._profile[round(ratio - 0.1, 10)] = 0.5
        tuner.record_sample(0.91)
        assert tuner.current_ratio() == pytest.approx(ratio)

    def test_profile_blocks_descent_that_would_miss_target(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9)
        # establish that 0.1 yields 0.5: profile knows it misses the target
        tuner.record_sample(0.50)  # at 0.1 -> jumps up to 0.5
        assert tuner.current_ratio() == pytest.approx(0.5)
        tuner.record_sample(0.95)  # descend one step to 0.4
        tuner.record_sample(0.95)  # 0.3
        tuner.record_sample(0.95)  # 0.2
        tuner.record_sample(0.95)  # would go to 0.1, but profile says 0.5 there
        assert tuner.current_ratio() == pytest.approx(0.2)


class TestProfiling:
    def test_profile_records_observations(self):
        tuner = ProbingRatioTuner()
        tuner.record_sample(0.7, time=10.0)
        assert tuner.predicted_success(0.1) == pytest.approx(0.7)

    def test_profile_smoothing(self):
        tuner = ProbingRatioTuner(target_success_rate=0.9, smoothing=0.5,
                                  tolerance=0.5)
        tuner.record_sample(0.8)
        ratio = tuner.current_ratio()
        tuner.record_sample(0.6)
        # with huge tolerance nothing reprofiles; EWMA of 0.8 and 0.6
        assert tuner.predicted_success(ratio) == pytest.approx(0.7)

    def test_reprofile_on_prediction_error(self):
        """When the measured rate diverges from the profile's prediction by
        more than δ, the stale profile is discarded (system conditions
        changed)."""
        tuner = ProbingRatioTuner(target_success_rate=0.9, tolerance=0.02)
        tuner.record_sample(0.92)  # profile[0.1] = 0.92, ratio stays
        assert tuner.reprofile_count == 0
        tuner.record_sample(0.60)  # prediction error 0.32 > δ
        assert tuner.reprofile_count == 1
        # profile was rebuilt from the fresh measurement
        assert tuner.predicted_success(0.1) == pytest.approx(0.60)

    def test_samples_recorded_for_fig8(self):
        tuner = ProbingRatioTuner()
        tuner.record_sample(0.8, time=300.0)
        tuner.record_sample(0.85, time=600.0)
        times = [s.time for s in tuner.samples]
        assert times == [300.0, 600.0]
        assert tuner.samples[0].ratio == pytest.approx(0.1)

    def test_profile_points_sorted(self):
        tuner = ProbingRatioTuner()
        tuner.record_sample(0.5)
        tuner.record_sample(0.7)
        points = tuner.profile_points()
        assert points == tuple(sorted(points))

    def test_invalid_sample_rejected(self):
        tuner = ProbingRatioTuner()
        with pytest.raises(ValueError, match="success rate"):
            tuner.record_sample(1.5)
