"""Unit tests for the Random and Static baselines."""

import random

import pytest

from repro.core.baselines import RandomComposer, StaticComposer
from repro.model.function_graph import FunctionGraph
from tests.conftest import make_request, rv


class TestStatic:
    def test_always_picks_first_registered(self, micro_context, micro_request):
        outcome = StaticComposer(micro_context).compose(micro_request)
        assert outcome.success
        # F1's first-registered candidate is c1 on v1
        assert outcome.composition.component(1).component_id == 1

    def test_deterministic_across_calls(self, micro_context, micro_request):
        composer = StaticComposer(micro_context)
        first = composer.compose(micro_request)
        micro_context.allocator.cancel_transient(micro_request.request_id)
        second = composer.compose(micro_request)
        assert [c.component_id for c in first.composition.components] == [
            c.component_id for c in second.composition.components
        ]

    def test_fails_when_fixed_choice_overloaded(self, micro_context, micro_request):
        micro_context.network.node(1).allocate(rv(49, 499))
        outcome = StaticComposer(micro_context).compose(micro_request)
        assert not outcome.success
        assert outcome.failure_reason == "node_resources"

    def test_fails_on_undeployed_function(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[5]])
        outcome = StaticComposer(micro_context).compose(make_request(graph))
        assert not outcome.success
        assert outcome.failure_reason == "no_candidates"


class TestRandom:
    def test_succeeds_on_micro(self, micro_context, micro_request):
        outcome = RandomComposer(micro_context).compose(micro_request)
        assert outcome.success
        assert outcome.setup_messages == 2

    def test_seeded_rng_reproducible(self, micro_network, micro_request):
        """Two contexts with equal seeds pick identical compositions."""
        from repro.allocation.allocator import ResourceAllocator
        from repro.core.composer import CompositionContext
        from repro.discovery.registry import ComponentRegistry
        from repro.state.global_state import GlobalStateManager
        from repro.state.local_state import LocalStateProvider
        from repro.topology.routing import OverlayRouter

        def compose_with_seed(seed):
            registry = ComponentRegistry()
            for node in micro_network.nodes:
                for component in node.components:
                    registry.register(component)
            router = OverlayRouter(micro_network)
            context = CompositionContext(
                network=micro_network,
                router=router,
                registry=registry,
                allocator=ResourceAllocator(micro_network, router),
                global_state=GlobalStateManager(micro_network),
                local_state=LocalStateProvider(micro_network),
                rng=random.Random(seed),
            )
            outcome = RandomComposer(context).compose(micro_request)
            context.allocator.cancel_transient(micro_request.request_id)
            return [c.component_id for c in outcome.composition.components]

        assert compose_with_seed(11) == compose_with_seed(11)

    def test_eventually_explores_both_candidates(self, micro_context, micro_request):
        composer = RandomComposer(micro_context)
        seen = set()
        for _ in range(30):
            outcome = composer.compose(micro_request)
            micro_context.allocator.cancel_transient(micro_request.request_id)
            if outcome.success:
                seen.add(outcome.composition.component(1).component_id)
        assert seen == {1, 2}

    def test_no_probe_messages(self, micro_context, micro_request):
        outcome = RandomComposer(micro_context).compose(micro_request)
        assert outcome.probe_messages == 0

    def test_interface_incompatibility_detected(self, micro_context, catalog):
        """A request whose stream rate exceeds every candidate's interface
        limit fails with incompatible_interfaces."""
        graph = FunctionGraph.path([catalog[0], catalog[1]])
        request = make_request(graph, stream_rate=5000.0, kbps_per_unit=0.01)
        outcome = RandomComposer(micro_context).compose(request)
        assert not outcome.success
        assert outcome.failure_reason == "incompatible_interfaces"
