"""Unit tests for the power-law topology generator."""

import random

import pytest

from repro.topology.powerlaw import (
    PowerLawTopologyGenerator,
    RouterGraph,
    RouterLink,
    sample_powerlaw_degrees,
)


class TestDegreeSampling:
    def test_even_sum(self):
        rng = random.Random(0)
        degrees = sample_powerlaw_degrees(rng, 101)
        assert sum(degrees) % 2 == 0

    def test_bounds_respected(self):
        rng = random.Random(1)
        degrees = sample_powerlaw_degrees(rng, 500, min_degree=2, max_degree=20)
        # the parity fix can bump the first entry by one
        assert all(2 <= d <= 21 for d in degrees)

    def test_heavy_tail(self):
        """A power law produces a max degree far above the median."""
        rng = random.Random(2)
        degrees = sample_powerlaw_degrees(rng, 3000, exponent=2.2)
        degrees.sort()
        assert degrees[-1] >= 10 * degrees[len(degrees) // 2]

    def test_low_degree_dominates(self):
        rng = random.Random(3)
        degrees = sample_powerlaw_degrees(rng, 3000, exponent=2.2)
        assert sum(1 for d in degrees if d == 1) > len(degrees) / 3

    def test_too_few_routers_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            sample_powerlaw_degrees(random.Random(0), 1)

    def test_bad_min_degree(self):
        with pytest.raises(ValueError, match="min_degree"):
            sample_powerlaw_degrees(random.Random(0), 10, min_degree=0)

    def test_bad_degree_range(self):
        with pytest.raises(ValueError, match="max_degree"):
            sample_powerlaw_degrees(random.Random(0), 10, min_degree=5, max_degree=3)


class TestGenerator:
    @pytest.fixture(scope="class")
    def graph(self):
        return PowerLawTopologyGenerator(num_routers=400, seed=7).generate()

    def test_connected(self, graph):
        assert graph.is_connected()

    def test_router_count(self, graph):
        assert graph.num_routers == 400

    def test_no_self_loops_or_duplicates(self, graph):
        seen = set()
        for link in graph.links:
            assert link.router_a != link.router_b
            pair = (link.router_a, link.router_b)
            assert pair not in seen
            assert link.router_a < link.router_b
            seen.add(pair)

    def test_link_attributes_in_range(self, graph):
        for link in graph.links:
            assert 1.0 <= link.delay_ms <= 10.0
            assert 50_000.0 <= link.bandwidth_kbps <= 200_000.0
            assert 0.0 <= link.loss_rate <= 0.001

    def test_deterministic(self):
        a = PowerLawTopologyGenerator(num_routers=200, seed=3).generate()
        b = PowerLawTopologyGenerator(num_routers=200, seed=3).generate()
        assert [(l.router_a, l.router_b, l.delay_ms) for l in a.links] == [
            (l.router_a, l.router_b, l.delay_ms) for l in b.links
        ]

    def test_seeds_differ(self):
        a = PowerLawTopologyGenerator(num_routers=200, seed=3).generate()
        b = PowerLawTopologyGenerator(num_routers=200, seed=4).generate()
        assert [(l.router_a, l.router_b) for l in a.links] != [
            (l.router_a, l.router_b) for l in b.links
        ]

    def test_degree_sequence_matches_adjacency(self, graph):
        total_degree = sum(graph.degree_sequence())
        assert total_degree == 2 * len(graph.links)

    def test_heavy_tailed_at_scale(self):
        graph = PowerLawTopologyGenerator(num_routers=2000, seed=11).generate()
        degrees = sorted(graph.degree_sequence())
        assert degrees[-1] > 20  # hubs exist
        assert degrees[len(degrees) // 2] <= 2  # most routers are leaves


class TestRouterGraph:
    def test_neighbors(self):
        links = (
            RouterLink(0, 0, 1, 1.0, 1000.0, 0.0),
            RouterLink(1, 1, 2, 1.0, 1000.0, 0.0),
        )
        graph = RouterGraph(3, links)
        assert set(graph.neighbors(1)) == {0, 2}
        assert graph.degree(0) == 1

    def test_disconnected_detected(self):
        graph = RouterGraph(3, (RouterLink(0, 0, 1, 1.0, 1000.0, 0.0),))
        assert not graph.is_connected()
