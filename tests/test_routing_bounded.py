"""Bounded router caches: decision-identity, eviction accounting, teardown.

The scale tentpole bounds the router's per-source tree/path/QoS caches
with an LRU so router memory is O(cache_size × N) instead of O(N²).  The
contract that makes the bound safe: **eviction is decision-invisible** —
delays are continuous so shortest paths are unique, and a re-solve of an
evicted source reproduces the identical tree.  The hypothesis property
here drives a router with the tiniest legal bound (2) through arbitrary
interleavings of queries and churn and demands answers identical to the
unbounded router's.

Also covered: eviction/hit counters landing in traces, the eager
all-pairs refusal above its size threshold, the listener-leak fix
(``close()`` on router and global state), and the LRU primitive itself.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.lru import LRUDict
from repro.observability import TraceRecorder
from repro.simulation import SystemConfig, build_system
from repro.state.global_state import GlobalStateManager
from repro.topology.routing import (
    EAGER_ALLPAIRS_MAX_NODES,
    OverlayRouter,
    RoutingError,
)
from tests.test_routing_differential import random_mesh
from tests.test_routing_incremental import (
    assert_routers_identical,
    random_churn_sequence,
)


class TestLRUDict:
    def test_bound_and_eviction_order(self):
        evicted = []
        lru = LRUDict(capacity=2, on_evict=lambda k, v: evicted.append(k))
        lru[1] = "a"
        lru[2] = "b"
        assert lru.get(1) == "a"  # 1 becomes MRU
        lru[3] = "c"  # evicts 2, the LRU
        assert evicted == [2]
        assert 2 not in lru and 1 in lru and 3 in lru
        assert lru.evictions == 1

    def test_peek_does_not_touch_recency(self):
        lru = LRUDict(capacity=2)
        lru[1] = "a"
        lru[2] = "b"
        assert lru.peek(1) == "a"  # must NOT promote 1
        lru[3] = "c"
        assert 1 not in lru  # 1 was still LRU, so it went

    def test_update_existing_key_does_not_evict(self):
        lru = LRUDict(capacity=2)
        lru[1] = "a"
        lru[2] = "b"
        lru[1] = "a2"
        assert len(lru) == 2 and lru.evictions == 0
        assert lru[1] == "a2"

    def test_pop_and_clear_skip_eviction_callback(self):
        evicted = []
        lru = LRUDict(capacity=4, on_evict=lambda k, v: evicted.append(k))
        lru[1] = "a"
        lru[2] = "b"
        assert lru.pop(1) == "a"
        lru.clear()
        assert evicted == [] and lru.evictions == 0

    def test_unbounded_when_capacity_none(self):
        lru = LRUDict()
        for i in range(10_000):
            lru[i] = i
        assert len(lru) == 10_000 and lru.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUDict(capacity=0)

    def test_keys_in_recency_order(self):
        lru = LRUDict(capacity=3)
        lru[1] = lru[2] = lru[3] = "x"
        lru.get(1)
        assert lru.keys() == [2, 3, 1]


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_tiny_lru_matches_unbounded_under_query_churn_interleaving(seed):
    """Any interleaving of compose-like queries and node churn with a
    size-2 tree cache answers identically to the unbounded router."""
    network = random_mesh(seed, num_nodes=12, extra_edges=8)
    bounded = OverlayRouter(network, incremental=True, tree_cache_size=2)
    unbounded = OverlayRouter(network, incremental=True)
    rng = random.Random(seed * 23 + 1)
    for down in random_churn_sequence(rng, len(network), steps=5):
        # interleaved queries keep the tiny cache thrashing (evicting and
        # re-solving) while the unbounded one never evicts
        for _ in range(6):
            source = rng.randrange(len(network))
            if source in down:
                continue
            bounded.virtual_link_rows(source)
            bounded.bottleneck_bandwidth_row(source)
            unbounded.virtual_link_rows(source)
        bounded.set_down_nodes(down)
        unbounded.set_down_nodes(down)
        assert_routers_identical(bounded, unbounded, network, down)
    assert bounded.cached_tree_count <= 2
    if len(network) > 2:
        assert bounded.tree_evictions > 0, "bound never exercised"


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_tiny_lru_matches_unbounded_under_link_churn(seed):
    network = random_mesh(seed, num_nodes=10, extra_edges=6)
    bounded = OverlayRouter(network, incremental=True, tree_cache_size=2)
    unbounded = OverlayRouter(network, incremental=True)
    rng = random.Random(seed * 19 + 5)
    down_links = set()
    for _ in range(5):
        for _ in range(5):
            source = rng.randrange(len(network))
            bounded.virtual_link_rows(source)
            bounded.bottleneck_bandwidth_row(source)
        flapped = rng.sample(range(len(network.links)), k=2)
        down_links ^= set(flapped)
        bounded.set_down_links(down_links)
        unbounded.set_down_links(down_links)
        assert_routers_identical(bounded, unbounded, network, set())


def test_path_and_qos_caches_stay_subset_of_trees():
    """The memory bound rests on the invariant that the path/QoS caches
    never hold a source whose tree was evicted."""
    network = random_mesh(3, num_nodes=12, extra_edges=8)
    router = OverlayRouter(network, tree_cache_size=3)
    rng = random.Random(17)
    for _ in range(60):
        a, b = rng.randrange(len(network)), rng.randrange(len(network))
        if a == b:
            continue
        router.overlay_path(a, b)
        router.virtual_link_qos(a, b)
        tree_sources = set(router._trees.keys())
        assert set(router._path_cache) <= tree_sources
        assert set(router._qos_cache) <= tree_sources
    assert router.tree_evictions > 0


def test_eviction_and_hit_counters_appear_in_traces():
    network = random_mesh(5, num_nodes=10, extra_edges=6)
    recorder = TraceRecorder()
    router = OverlayRouter(network, recorder=recorder, tree_cache_size=2)
    for source in range(len(network)):
        router.virtual_link_rows(source)  # cold solves + evictions
    router.virtual_link_rows(len(network) - 1)  # warm hit
    counters = recorder.registry.snapshot()["counters"]
    assert counters.get("router.tree_evictions", 0) > 0
    assert counters.get("router.tree_hit", 0) > 0
    assert counters.get("router.tree_solve", 0) == len(network)


def test_build_system_threads_cache_bound():
    config = SystemConfig(num_routers=120, num_nodes=40, seed=3, router_cache_size=5)
    system = build_system(config)
    assert system.router.tree_cache_capacity == 5
    for source in range(20):
        system.router.virtual_link_rows(source)
    assert system.router.cached_tree_count <= 5


class TestEagerGuard:
    def test_refuses_above_threshold(self):
        network = random_mesh(1, num_nodes=12, extra_edges=6)
        with pytest.raises(RoutingError, match="eager all-pairs"):
            OverlayRouter(network, incremental=False, eager_max_nodes=10)

    def test_refusal_names_the_escape_hatches(self):
        """The message must tell the operator exactly what to do: the
        config knob that avoids the dense solve and the cap override."""
        network = random_mesh(1, num_nodes=12, extra_edges=6)
        with pytest.raises(RoutingError) as excinfo:
            OverlayRouter(network, incremental=False, eager_max_nodes=10)
        message = str(excinfo.value)
        assert "SystemConfig(incremental_routing=True)" in message
        assert "EAGER_ALLPAIRS_MAX_NODES" in message
        assert "eager_max_nodes" in message
        assert "limit 10" in message
        assert "12 overlay nodes" in message

    def test_incremental_unaffected_by_threshold(self):
        network = random_mesh(1, num_nodes=12, extra_edges=6)
        router = OverlayRouter(network, incremental=True, eager_max_nodes=10)
        assert np.isfinite(router.delay(0, 5))

    def test_default_threshold_admits_paper_scale(self):
        assert EAGER_ALLPAIRS_MAX_NODES >= 600


class TestListenerTeardown:
    def test_router_close_removes_link_listeners(self):
        network = random_mesh(2, num_nodes=8, extra_edges=4)
        baseline = len(network.links[0]._listeners)
        routers = [OverlayRouter(network) for _ in range(3)]
        assert len(network.links[0]._listeners) == baseline + 3
        for router in routers:
            router.close()
            router.close()  # idempotent
        assert len(network.links[0]._listeners) == baseline

    def test_router_context_manager(self):
        network = random_mesh(2, num_nodes=8, extra_edges=4)
        baseline = len(network.links[0]._listeners)
        with OverlayRouter(network) as router:
            assert np.isfinite(router.delay(0, 3))
        assert len(network.links[0]._listeners) == baseline

    def test_closed_router_ignores_bandwidth_changes(self):
        network = random_mesh(2, num_nodes=8, extra_edges=4)
        router = OverlayRouter(network)
        live = OverlayRouter(network)
        link = network.links[0]
        router.close()
        link.allocate_bandwidth(1000.0)
        # the live router tracked the change; the closed one did not
        assert live._link_available[link.link_id] == link.available_kbps
        assert router._link_available[link.link_id] != link.available_kbps
        live.close()
        link.release_bandwidth(1000.0)

    def test_global_state_close_removes_listeners(self):
        network = random_mesh(4, num_nodes=8, extra_edges=4)
        node = network.nodes[0]
        link = network.links[0]
        node_baseline = len(node._listeners)
        link_baseline = len(link._listeners)
        managers = [GlobalStateManager(network) for _ in range(3)]
        assert len(node._listeners) == node_baseline + 3
        assert len(link._listeners) == link_baseline + 3
        for manager in managers:
            manager.close()
            manager.close()
        assert len(node._listeners) == node_baseline
        assert len(link._listeners) == link_baseline

    def test_remove_listener_absent_is_noop(self):
        network = random_mesh(4, num_nodes=8, extra_edges=4)
        network.nodes[0].remove_change_listener(lambda n: None)
        network.nodes[0].remove_liveness_listener(lambda n: None)
        network.links[0].remove_change_listener(lambda l: None)


class TestMemoryFootprint:
    def test_router_footprint_tracks_cache_bound(self):
        network = random_mesh(6, num_nodes=12, extra_edges=8)
        small = OverlayRouter(network, tree_cache_size=2)
        large = OverlayRouter(network)
        for source in range(len(network)):
            small.virtual_link_rows(source)
            large.virtual_link_rows(source)
        small_fp = small.memory_footprint()
        large_fp = large.memory_footprint()
        for key in ("trees", "path_cache", "qos_cache", "link_arrays", "total"):
            assert key in small_fp
        assert small_fp["trees"] < large_fp["trees"]
        assert small_fp["total"] == sum(
            v for k, v in small_fp.items() if k != "total"
        )

    def test_global_state_footprint(self):
        network = random_mesh(6, num_nodes=12, extra_edges=8)
        footprint = GlobalStateManager(network).memory_footprint()
        assert footprint["link_state"] >= len(network.links) * 8
        assert footprint["total"] == footprint["node_state"] + footprint["link_state"]
