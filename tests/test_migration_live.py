"""Unit tests for hotspot-driven live session migration.

Covers the three tentpole pieces — the sustained-hotspot detector, the
cost-priced planner/executor, and the session-state machinery
(``MIGRATING`` begin/commit/rollback) — plus the interleaving edges the
recovery sweep shares with migration rounds: a fault or lifetime expiry
mid-transfer must land the session in exactly one terminal path with no
double-release of allocations.
"""

import random

import pytest

from repro.core.acp import ACPComposer
from repro.middleware.migration import (
    HotspotDetector,
    LiveMigrationPolicy,
    LiveSessionMigrationManager,
    MigrationPlan,
)
from repro.middleware.session import (
    RecoveryPolicy,
    SessionError,
    SessionManager,
    SessionState,
)
from repro.observability import TraceRecorder


@pytest.fixture
def clock():
    """A mutable simulated clock the tests advance by hand."""
    return {"now": 0.0}


@pytest.fixture
def manager(micro_context, clock):
    composer = ACPComposer(micro_context, probing_ratio=1.0)
    return SessionManager(
        composer, micro_context.allocator, clock=lambda: clock["now"]
    )


@pytest.fixture
def recovering_manager(micro_context, clock):
    composer = ACPComposer(micro_context, probing_ratio=1.0)
    return SessionManager(
        composer,
        micro_context.allocator,
        clock=lambda: clock["now"],
        recovery=RecoveryPolicy(recovery_deadline_s=30.0, detection_delay_s=2.0),
    )


def _small_config():
    """A seeded end-to-end system small enough for spec-level tests."""
    from repro.discovery.deployment import DeploymentProfile
    from repro.simulation.system import SystemConfig

    return SystemConfig(
        num_routers=60,
        num_nodes=12,
        neighbors_per_node=3,
        catalog_size=10,
        num_templates=6,
        template_path_length=(2, 3),
        deployment=DeploymentProfile(components_per_node=(1, 3)),
        seed=5,
    )


def _live_manager(micro_context, sessions, policy=None, seed=3):
    plan = MigrationPlan(policy=policy or LiveMigrationPolicy())
    live = LiveSessionMigrationManager(
        micro_context, plan, rng=random.Random(seed)
    )
    live.bind_sessions(sessions)
    return live


def _f1_node(manager, session_id):
    """The node hosting the session's second placement (function F1)."""
    return manager.session(session_id).composition.component(1).node_id


def _heat(network, node_id, fraction=0.9):
    node = network.node(node_id)
    node.allocate(node.capacity.scaled(fraction))


class TestPolicyValidation:
    def test_defaults_valid(self):
        LiveMigrationPolicy()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(ewma_alpha=0.0), "ewma_alpha"),
            (dict(ewma_alpha=1.5), "ewma_alpha"),
            (dict(high_watermark=0.4, low_watermark=0.5), "watermark"),
            (dict(sustain_rounds=0), "sustain_rounds"),
            (dict(min_admission_pressure=1.5), "min_admission_pressure"),
            (
                dict(max_session_migrations_per_round=-1),
                "max_session_migrations_per_round",
            ),
            (dict(candidate_sample=0), "candidate_sample"),
            (dict(state_kb_per_unit=-0.1), "state_kb_per_unit"),
            (dict(transfer_kbps=0.0), "transfer_kbps"),
            (dict(pause_slack_fraction=0.0), "pause_slack_fraction"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LiveMigrationPolicy(**kwargs)

    def test_zero_plan(self):
        plan = MigrationPlan.none()
        assert plan.is_zero
        assert not MigrationPlan().is_zero
        with pytest.raises(ValueError, match="period_s"):
            MigrationPlan(period_s=0.0)


class TestHotspotDetector:
    def _nodes(self, micro_network, loads):
        for node_id, fraction in loads.items():
            _heat(micro_network, node_id, fraction)
        return micro_network.nodes

    def test_first_observation_seeds_ewma(self, micro_network):
        detector = HotspotDetector(LiveMigrationPolicy())
        detector.observe(self._nodes(micro_network, {0: 0.8}))
        assert detector.ewma(0) == pytest.approx(0.8)
        assert detector.ewma(1) == pytest.approx(0.0)

    def test_ewma_smooths_spikes(self, micro_network):
        policy = LiveMigrationPolicy(ewma_alpha=0.3, sustain_rounds=1)
        detector = HotspotDetector(policy)
        nodes = micro_network.nodes
        detector.observe(nodes)  # all idle: ewma 0
        _heat(micro_network, 0, 0.9)
        detector.observe(nodes)
        # one spike moves the ewma only alpha of the way
        assert detector.ewma(0) == pytest.approx(0.3 * 0.9)
        assert detector.hot_nodes() == []

    def test_sustained_hotspot_flags_after_k_rounds(self, micro_network):
        policy = LiveMigrationPolicy(sustain_rounds=3)
        detector = HotspotDetector(policy)
        nodes = self._nodes(micro_network, {0: 0.9})
        for round_index in range(3):
            assert detector.hot_nodes() == []
            detector.observe(nodes)
        assert detector.hot_nodes() == [0]

    def test_cooling_resets_streak(self, micro_network):
        policy = LiveMigrationPolicy(ewma_alpha=1.0, sustain_rounds=2)
        detector = HotspotDetector(policy)
        nodes = micro_network.nodes
        _heat(micro_network, 0, 0.9)
        detector.observe(nodes)
        # load drains: the streak must reset, not pause
        node = micro_network.node(0)
        node.release(node.capacity.scaled(0.9))
        detector.observe(nodes)
        _heat(micro_network, 0, 0.9)
        detector.observe(nodes)
        assert detector.hot_nodes() == []

    def test_pressure_gate_stalls_streaks(self, micro_network):
        policy = LiveMigrationPolicy(
            sustain_rounds=2, min_admission_pressure=0.2
        )
        detector = HotspotDetector(policy)
        nodes = self._nodes(micro_network, {0: 0.9})
        detector.observe(nodes, admission_pressure=0.5)
        # hot but unpressured: the streak neither grows nor resets
        detector.observe(nodes, admission_pressure=0.0)
        assert detector.hot_nodes() == []
        detector.observe(nodes, admission_pressure=0.5)
        assert detector.hot_nodes() == [0]

    def test_dead_node_forgets_state(self, micro_network):
        policy = LiveMigrationPolicy(ewma_alpha=1.0, sustain_rounds=1)
        detector = HotspotDetector(policy)
        nodes = self._nodes(micro_network, {0: 0.9})
        detector.observe(nodes)
        assert detector.hot_nodes() == [0]
        micro_network.node(0).fail()
        detector.observe(nodes)
        assert detector.hot_nodes() == []
        assert detector.ewma(0) == pytest.approx(0.0)

    def test_hot_nodes_ordered_hottest_first(self, micro_network):
        policy = LiveMigrationPolicy(ewma_alpha=1.0, sustain_rounds=1)
        detector = HotspotDetector(policy)
        nodes = self._nodes(micro_network, {0: 0.8, 2: 0.95})
        detector.observe(nodes)
        assert detector.hot_nodes() == [2, 0]

    def test_is_cool(self, micro_network):
        policy = LiveMigrationPolicy(ewma_alpha=1.0, sustain_rounds=1)
        detector = HotspotDetector(policy)
        detector.observe(self._nodes(micro_network, {0: 0.9, 1: 0.5}))
        assert not detector.is_cool(0)
        assert not detector.is_cool(1)  # above the 0.45 low watermark
        assert detector.is_cool(2)


class TestSessionMigrationStates:
    def test_begin_and_complete_migration(
        self, manager, micro_context, micro_request, clock
    ):
        session_id, outcome = manager.find(micro_request)
        composition = outcome.composition
        clock["now"] = 10.0
        assert manager.begin_migration(session_id, composition, 2.0)
        session = manager._sessions[session_id]
        assert session.state is SessionState.MIGRATING
        assert session.migrating_until == pytest.approx(12.0)
        assert manager.migrating_count == 1
        # the paused stream rejects every session operation
        with pytest.raises(SessionError, match="migrating"):
            manager.process(session_id, 1.0)
        with pytest.raises(SessionError, match="migrating"):
            manager.close(session_id)
        assert manager.complete_migration(session_id)
        session = manager.session(session_id)
        assert session.state is SessionState.COMPOSED
        assert session.migrating_until is None
        assert session.migrations == 1
        assert manager.sessions_migrated == 1
        # fully usable again
        assert manager.process(session_id, 10.0).units_out > 0.0

    def test_negative_pause_rejected(self, manager, micro_request):
        session_id, outcome = manager.find(micro_request)
        with pytest.raises(ValueError, match="pause_s"):
            manager.begin_migration(session_id, outcome.composition, -1.0)

    def test_complete_is_idempotent(self, manager, micro_request):
        session_id, outcome = manager.find(micro_request)
        manager.begin_migration(session_id, outcome.composition, 1.0)
        assert manager.complete_migration(session_id)
        assert not manager.complete_migration(session_id)
        assert manager.sessions_migrated == 1

    def test_admission_race_rolls_back(
        self, manager, micro_context, micro_request, monkeypatch
    ):
        from repro.allocation.allocator import AdmissionError

        session_id, outcome = manager.find(micro_request)
        before = [node.available for node in micro_context.network.nodes]
        original_commit = manager.allocator.commit
        calls = {"n": 0}

        def racy_commit(composition):
            calls["n"] += 1
            if calls["n"] == 1:
                raise AdmissionError("target filled up")
            return original_commit(composition)

        monkeypatch.setattr(manager.allocator, "commit", racy_commit)
        assert not manager.begin_migration(session_id, outcome.composition, 1.0)
        assert manager.migrations_rolled_back == 1
        session = manager.session(session_id)
        assert session.state is SessionState.COMPOSED
        assert session.migrating_until is None
        # the rollback re-admitted the exact old footprint
        after = [node.available for node in micro_context.network.nodes]
        assert before == after
        assert manager.process(session_id, 5.0).units_out > 0.0

    def test_fault_while_migrating_lands_in_recovering_once(
        self, recovering_manager, micro_context, micro_request, clock
    ):
        """A disruption mid-transfer supersedes the migration: the session
        lands in RECOVERING exactly once, all resources are released, and
        the pending commit no-ops."""
        session_id, outcome = recovering_manager.find(micro_request)
        assert recovering_manager.begin_migration(
            session_id, outcome.composition, 5.0
        )
        node_id = next(
            iter(
                recovering_manager._sessions[session_id].allocation.node_demands
            )
        )
        assert recovering_manager.terminate_sessions_using_node(node_id) == 1
        assert recovering_manager.recovering_count == 1
        assert recovering_manager.migrating_count == 0
        assert recovering_manager._sessions[session_id].migrating_until is None
        # every allocation released exactly once
        for node in micro_context.network.nodes:
            assert all(abs(v) < 1e-9 for v in node.allocated.values)
        # the scheduled commit arrives late and must no-op
        assert not recovering_manager.complete_migration(session_id)
        assert recovering_manager.sessions_migrated == 0
        # recovery then re-admits it like any disrupted session
        clock["now"] = 5.0
        assert recovering_manager.recover_pending() == 1
        assert (
            recovering_manager.session(session_id).state
            is SessionState.COMPOSED
        )

    def test_fault_while_migrating_without_policy_kills_once(
        self, manager, micro_context, micro_request
    ):
        session_id, outcome = manager.find(micro_request)
        manager.begin_migration(session_id, outcome.composition, 5.0)
        node_id = next(
            iter(manager._sessions[session_id].allocation.node_demands)
        )
        assert manager.terminate_sessions_using_node(node_id) == 1
        assert manager.sessions_killed == 1
        assert manager.active_session_count == 0
        for node in micro_context.network.nodes:
            assert all(abs(v) < 1e-9 for v in node.allocated.values)
        assert not manager.complete_migration(session_id)

    def test_lifetime_expiry_mid_migration_closes_cleanly(
        self, manager, micro_context, micro_request
    ):
        """The deadline-expiry edge: a MIGRATING session whose lifetime
        ends is closed normally (it holds exactly one set of resources);
        the pending commit finds nothing."""
        session_id, outcome = manager.find(micro_request)
        manager.begin_migration(session_id, outcome.composition, 5.0)
        assert manager.close_or_abandon(session_id) is True
        assert manager.active_session_count == 0
        assert manager.sessions_killed == 0
        for node in micro_context.network.nodes:
            assert all(abs(v) < 1e-9 for v in node.allocated.values)
        assert not manager.complete_migration(session_id)
        assert manager.sessions_migrated == 0


class TestLiveMigrationManager:
    def test_run_round_requires_bound_sessions(self, micro_context):
        live = LiveSessionMigrationManager(
            micro_context, MigrationPlan(), rng=random.Random(1)
        )
        with pytest.raises(RuntimeError, match="bind_sessions"):
            live.run_round(0.0)

    def test_migrates_victim_off_sustained_hot_node(
        self, manager, micro_context, micro_request
    ):
        session_id, _ = manager.find(micro_request)
        hot_node = _f1_node(manager, session_id)
        twin_node = 3 - hot_node  # F1's other instance (node 1 or 2)
        _heat(micro_context.network, hot_node)
        policy = LiveMigrationPolicy(sustain_rounds=2)
        live = _live_manager(micro_context, manager, policy)
        assert live.run_round(0.0) == []  # streak 1 of 2
        records = live.run_round(60.0)
        assert len(records) == 1
        record = records[0]
        assert record.session_id == session_id
        assert record.hot_node == hot_node
        assert record.moved == ((1, hot_node, twin_node),)
        assert record.pause_s > 0.0
        assert live.migrations_started == 1
        assert live.migration_paused_stream_s == pytest.approx(record.pause_s)
        assert live.migration_probe_messages > 0
        # the session is paused on its new placement until the commit
        assert manager.migrating_count == 1
        assert manager.complete_migration(session_id)
        session = manager.session(session_id)
        assert session.composition.component(1).node_id == twin_node

    def test_zero_budget_never_migrates(
        self, manager, micro_context, micro_request
    ):
        session_id, _ = manager.find(micro_request)
        _heat(micro_context.network, _f1_node(manager, session_id))
        live = _live_manager(
            micro_context,
            manager,
            LiveMigrationPolicy(
                sustain_rounds=1, max_session_migrations_per_round=0
            ),
        )
        for round_index in range(3):
            assert live.run_round(60.0 * round_index) == []
        assert live.migrations_started == 0
        assert manager.migrating_count == 0

    def test_slack_abort_is_graceful(
        self, manager, micro_context, micro_request, clock
    ):
        """A pause that would blow the QoS slack rejects the migration and
        leaves the session untouched — the graceful-degradation path."""
        session_id, _ = manager.find(micro_request)
        hot_node = _f1_node(manager, session_id)
        _heat(micro_context.network, hot_node)
        clock["now"] = 600.0  # accumulated state: 100 units/s * 600 s
        policy = LiveMigrationPolicy(sustain_rounds=1, state_kb_per_unit=10.0)
        live = _live_manager(micro_context, manager, policy)
        assert live.run_round(600.0) == []
        assert live.migrations_aborted_on_slack == 1
        assert live.migrations_started == 0
        session = manager.session(session_id)
        assert session.state is SessionState.COMPOSED
        assert manager.process(session_id, 1.0).units_out > 0.0

    def test_no_cool_target_skips(
        self, manager, micro_context, micro_request
    ):
        session_id, _ = manager.find(micro_request)
        hot_node = _f1_node(manager, session_id)
        twin_node = 3 - hot_node
        _heat(micro_context.network, hot_node)
        micro_context.network.node(twin_node).fail()
        live = _live_manager(
            micro_context, manager, LiveMigrationPolicy(sustain_rounds=1)
        )
        assert live.run_round(0.0) == []
        assert live.migrations_skipped_no_target == 1
        assert manager.session(session_id).state is SessionState.COMPOSED

    def test_trace_events_and_counters(
        self, manager, micro_context, micro_request
    ):
        session_id, _ = manager.find(micro_request)
        hot_node = _f1_node(manager, session_id)
        _heat(micro_context.network, hot_node)
        recorder = TraceRecorder()
        manager.recorder = recorder
        plan = MigrationPlan(policy=LiveMigrationPolicy(sustain_rounds=1))
        live = LiveSessionMigrationManager(
            micro_context, plan, rng=random.Random(3), recorder=recorder
        )
        live.detector.recorder = recorder
        live.bind_sessions(manager)
        records = live.run_round(0.0)
        assert len(records) == 1
        manager.complete_migration(session_id)
        kinds = [event.kind for event in recorder.events]
        assert "migration.plan" in kinds
        assert "migration.start" in kinds
        assert "migration.commit" in kinds
        plan_event = recorder.events_of("migration.plan")[0]
        assert plan_event.fields["hot_nodes"] == (hot_node,)
        assert recorder.registry.counter("migration.transfers").value == 1
        assert recorder.registry.counter("migration.sessions").value == 1

    def test_zero_plan_run_is_byte_identical(self):
        """``MigrationPlan.none()`` must be invisible: no manager is
        built, no rng stream is drawn, and the report matches a
        migration-free spec byte for byte (the unit-scale guard behind the
        macro benchmark's replay contract)."""
        from repro.experiments import RunSpec, run_spec
        from repro.simulation.workload import RateSchedule

        spec = RunSpec(
            algorithm="ACP",
            system=_small_config(),
            schedule=RateSchedule.constant(10.0),
            duration_s=600.0,
            sampling_period_s=150.0,
            workload_seed=1005,
        )
        plain = run_spec(spec)
        zeroed = run_spec(spec.with_migration(MigrationPlan.none()))
        assert repr(plain) == repr(zeroed)
        assert plain.sessions_migrated == 0
        assert plain.migrations_aborted_on_slack == 0
        assert plain.migration_paused_stream_s == 0.0
        assert plain.migration_probe_messages == 0

    def test_active_plan_run_is_deterministic(self):
        """Same seed + same plan ⇒ byte-identical migration reports."""
        from repro.experiments import RunSpec, run_spec
        from repro.simulation.workload import RateSchedule

        spec = RunSpec(
            algorithm="ACP",
            system=_small_config(),
            schedule=RateSchedule.constant(40.0),
            duration_s=600.0,
            sampling_period_s=150.0,
            workload_seed=1005,
        ).with_migration(
            MigrationPlan(
                policy=LiveMigrationPolicy(
                    high_watermark=0.3, low_watermark=0.2, sustain_rounds=2
                ),
                period_s=30.0,
            )
        )
        first = run_spec(spec)
        second = run_spec(spec)
        assert repr(first) == repr(second)

    def test_same_seed_same_decisions(
        self, micro_context, micro_request, clock
    ):
        """Two identically-seeded planners over identical state produce
        identical migration records."""
        moves = []
        for attempt in range(2):
            composer = ACPComposer(micro_context, probing_ratio=1.0)
            manager = SessionManager(
                composer, micro_context.allocator, clock=lambda: clock["now"]
            )
            session_id, _ = manager.find(micro_request)
            hot_node = _f1_node(manager, session_id)
            _heat(micro_context.network, hot_node)
            live = _live_manager(
                micro_context,
                manager,
                LiveMigrationPolicy(sustain_rounds=1),
                seed=99,
            )
            records = live.run_round(0.0)
            moves.append(tuple(r.moved for r in records))
            # unwind for the second attempt
            manager.complete_migration(session_id)
            manager.close(session_id)
            node = micro_context.network.node(hot_node)
            node.release(node.capacity.scaled(0.9))
        assert moves[0] == moves[1]
