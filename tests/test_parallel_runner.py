"""Parallel experiment runner: determinism and failure behaviour.

The contract of :func:`repro.experiments.runner.parallel_map` /
:func:`run_specs`: worker-pool execution returns exactly what the serial
loop returns (same values, same order), because every experiment point is
self-seeding and workers share no state; and a dying worker raises
:class:`ParallelExperimentError` instead of hanging or silently dropping
points.
"""

import os

import pytest

from repro.experiments import (
    ParallelExperimentError,
    default_spec,
    parallel_map,
    run_specs,
)
from repro.experiments.config import ExperimentScale

#: Small enough for test wall-clock, big enough that the simulations do
#: real composition work (non-trivial success rates, message counts).
TINY_SCALE = ExperimentScale(
    name="tiny",
    num_routers=160,
    duration_s=180.0,
    adaptability_duration_s=180.0,
    sampling_period_s=60.0,
    optimal_max_explored=5000,
)


def _square(value):
    return value * value


def _crash(value):
    os._exit(13)  # simulate a hard worker death (OOM kill, segfault)


def report_signature(report):
    return (
        report.success_rate,
        report.overhead_per_min,
        report.total_requests,
    )


def test_parallel_map_preserves_order():
    items = list(range(10))
    assert parallel_map(_square, items, workers=3) == [i * i for i in items]


def test_parallel_map_serial_fallback_runs_in_process():
    # workers<=1 must not spawn: a closure is not picklable, so this only
    # passes if the fallback is a plain in-process loop
    seen = []
    result = parallel_map(lambda x: seen.append(x) or x, [1, 2, 3], workers=1)
    assert result == [1, 2, 3]
    assert seen == [1, 2, 3]


def test_run_specs_parallel_matches_serial():
    specs = [
        default_spec(
            scale=TINY_SCALE, algorithm=algorithm, num_nodes=60,
            rate_per_min=40.0, seed=seed,
        )
        for algorithm, seed in (("ACP", 0), ("RP", 0), ("ACP", 2))
    ]
    serial = run_specs(specs)
    parallel = run_specs(specs, workers=2)
    assert [report_signature(r) for r in serial] == [
        report_signature(r) for r in parallel
    ]
    # the points genuinely differ, so order preservation is being tested
    assert report_signature(serial[0]) != report_signature(serial[2])


def test_worker_death_raises_instead_of_hanging():
    with pytest.raises(ParallelExperimentError, match="worker process died"):
        parallel_map(_crash, [1, 2], workers=2)
