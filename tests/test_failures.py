"""Tests for node failure injection and system resilience."""

import random

import pytest

from repro.core import ACPComposer, OptimalComposer, RandomComposer
from repro.middleware.session import SessionManager, SessionState
from repro.model.node import InsufficientResourcesError
from repro.simulation import (
    FailureInjector,
    FaultPlan,
    RateSchedule,
    StreamProcessingSimulator,
    WorkloadGenerator,
)
from tests.conftest import build_small_system, make_request, rv


class TestNodeLiveness:
    def test_nodes_start_alive(self, micro_network):
        assert all(node.alive for node in micro_network.nodes)

    def test_dead_node_rejects_allocation(self, micro_network):
        node = micro_network.node(0)
        node.fail()
        assert not node.can_allocate(rv(1, 1))
        with pytest.raises(InsufficientResourcesError, match="down"):
            node.allocate(rv(1, 1))
        node.recover()
        node.allocate(rv(1, 1))

    def test_release_still_works_while_down(self, micro_network):
        """Terminating sessions must be able to return resources even on a
        crashed node — bookkeeping survives the crash."""
        node = micro_network.node(0)
        node.allocate(rv(5, 50))
        node.fail()
        node.release(rv(5, 50))
        assert node.allocated == rv(0, 0)


class TestRoutingAroundFailures:
    def test_reroute_avoids_down_relay(self, micro_network, micro_router):
        # v0 -> v2 normally relays through v1 (20 ms < direct 25 ms)
        assert micro_router.overlay_path(0, 2) == (0, 1)
        micro_router.set_down_nodes({1})
        assert micro_router.overlay_path(0, 2) == (2,)  # the direct link
        assert micro_router.delay(0, 2) == pytest.approx(25.0)

    def test_recovery_restores_routes(self, micro_router):
        micro_router.set_down_nodes({1})
        micro_router.set_down_nodes(set())
        assert micro_router.overlay_path(0, 2) == (0, 1)

    def test_down_endpoint_unreachable(self, micro_router):
        micro_router.set_down_nodes({1})
        assert not micro_router.reachable(0, 1)


class TestComposersAvoidDeadNodes:
    def test_acp_routes_around_crash(self, micro_context, micro_request):
        """With the preferred twin (v2) crashed, ACP must pick v1."""
        micro_context.network.node(2).fail()
        micro_context.router.set_down_nodes({2})
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(
            micro_request
        )
        assert outcome.success
        assert outcome.composition.component(1).node_id == 1

    def test_optimal_routes_around_crash(self, micro_context, micro_request):
        micro_context.network.node(2).fail()
        micro_context.router.set_down_nodes({2})
        outcome = OptimalComposer(micro_context).compose(micro_request)
        assert outcome.success
        assert outcome.composition.component(1).node_id == 1

    def test_random_rejects_dead_assignment(self, micro_context, micro_request):
        """Random may draw the dead candidate; the compatibility check must
        catch it rather than compose onto a crashed node."""
        micro_context.network.node(1).fail()
        micro_context.network.node(2).fail()
        micro_context.router.set_down_nodes({1, 2})
        outcome = RandomComposer(micro_context).compose(micro_request)
        assert not outcome.success

    def test_all_candidates_dead_fails_cleanly(self, micro_context, micro_request):
        micro_context.network.node(1).fail()
        micro_context.network.node(2).fail()
        micro_context.router.set_down_nodes({1, 2})
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(
            micro_request
        )
        assert not outcome.success
        assert outcome.failure_reason in (
            "no_qualified_candidates",
            "probes_dropped",
        )


class TestFailureInjector:
    @pytest.fixture
    def harness(self):
        system = build_small_system(seed=4, num_nodes=12)
        context = system.composition_context(rng=random.Random(1))
        composer = ACPComposer(context, probing_ratio=1.0)
        sessions = SessionManager(composer, system.allocator)
        injector = FailureInjector(
            system.network,
            system.router,
            fail_probability=0.0,
            recover_probability=1.0,
            rng=random.Random(2),
        )
        return system, sessions, injector

    def test_crash_terminates_sessions_on_node(self, harness):
        system, sessions, injector = harness
        template = system.templates.sample(random.Random(3))
        request = make_request(
            template.graph, delay_budget=500.0, loss_budget=0.4
        )
        session_id, outcome = sessions.find(request)
        assert session_id is not None
        victim = outcome.composition.component(0).node_id
        event = injector.crash(victim, sessions=sessions, now=10.0)
        assert event.sessions_killed == 1
        assert sessions.active_session_count == 0
        # all resources released everywhere, including the dead node
        for node in system.network.nodes:
            assert all(abs(v) < 1e-6 for v in node.allocated.values)

    def test_crash_then_recover_roundtrip(self, harness):
        system, _sessions, injector = harness
        injector.crash(3)
        assert not system.network.node(3).alive
        assert 3 in system.router.down_nodes
        injector.recover(3)
        assert system.network.node(3).alive
        assert system.router.down_nodes == frozenset()

    def test_double_crash_rejected(self, harness):
        _system, _sessions, injector = harness
        injector.crash(3)
        with pytest.raises(ValueError, match="already down"):
            injector.crash(3)

    def test_recover_up_node_rejected(self, harness):
        _system, _sessions, injector = harness
        with pytest.raises(ValueError, match="not down"):
            injector.recover(3)

    def test_round_respects_concurrency_cap(self):
        system = build_small_system(seed=5, num_nodes=12)
        injector = FailureInjector(
            system.network,
            system.router,
            fail_probability=1.0,  # everything wants to crash
            recover_probability=0.01,
            max_concurrent_failures=2,
            rng=random.Random(3),
        )
        injector.run_round(now=0.0)
        assert len(injector.down_nodes) == 2

    def test_validation(self):
        system = build_small_system(seed=5, num_nodes=12)
        with pytest.raises(ValueError, match="fail_probability"):
            FailureInjector(system.network, system.router, fail_probability=2.0)
        with pytest.raises(ValueError, match="recover_probability"):
            FailureInjector(
                system.network, system.router, recover_probability=0.0
            )

    def test_simulation_under_churn(self):
        """A full run with stochastic crashes: the system keeps composing,
        conserves resources, and records killed sessions."""
        system = build_small_system(seed=6, num_nodes=12)
        injector = FailureInjector(
            system.network,
            system.router,
            fail_probability=0.05,
            recover_probability=0.5,
            period_s=60.0,
            rng=random.Random(7),
        )
        workload = WorkloadGenerator(
            system.templates, RateSchedule.constant(30.0), seed=8
        )
        composer = ACPComposer(
            system.composition_context(rng=random.Random(9)), probing_ratio=0.5
        )
        simulator = StreamProcessingSimulator(
            system, composer, workload, sampling_period_s=300.0,
            failures=injector,
        )
        report = simulator.run(1200.0)
        assert report.total_requests > 0
        assert len(injector.events) > 0
        # drain remaining sessions and verify conservation on alive nodes
        simulator.scheduler.run_until(1200.0 + 1000.0)
        system.allocator.expire_due(simulator.scheduler.now)
        for request_id in list(system.allocator.transient_request_ids):
            system.allocator.cancel_transient(request_id)
        assert simulator.sessions.active_session_count == 0
        for node in system.network.nodes:
            assert all(abs(v) < 1e-6 for v in node.allocated.values)
        for link in system.network.links:
            assert abs(link.allocated_kbps) < 1e-6


class TestFaultPlan:
    def test_zero_plan_injects_nothing(self):
        plan = FaultPlan.none()
        assert plan.is_zero
        assert not plan.injects_churn
        assert not plan.injects_control_faults

    def test_injection_flags(self):
        assert FaultPlan(node_fail_probability=0.1).injects_churn
        assert FaultPlan(link_fail_probability=0.1).injects_churn
        assert FaultPlan(probe_loss_probability=0.1).injects_control_faults
        assert FaultPlan(probe_delay_ms=1.0).injects_control_faults
        assert FaultPlan(
            state_update_loss_probability=0.1
        ).injects_control_faults
        assert not FaultPlan(probe_loss_probability=0.1).injects_churn

    def test_validation(self):
        with pytest.raises(ValueError, match="node_fail_probability"):
            FaultPlan(node_fail_probability=1.5)
        with pytest.raises(ValueError, match="link_recover_probability"):
            FaultPlan(link_recover_probability=0.0)
        with pytest.raises(ValueError, match="probe_loss_probability"):
            FaultPlan(probe_loss_probability=1.0)
        with pytest.raises(ValueError, match="probe_delay_ms"):
            FaultPlan(probe_delay_ms=-1.0)
        with pytest.raises(ValueError, match="max_probe_retries"):
            FaultPlan(max_probe_retries=-1)
        with pytest.raises(ValueError, match="max_concurrent_failures"):
            FaultPlan(max_concurrent_failures=0)
        with pytest.raises(ValueError, match="period_s"):
            FaultPlan(period_s=0.0)

    def test_injector_adopts_plan_knobs(self):
        system = build_small_system(seed=5, num_nodes=12)
        plan = FaultPlan(
            node_fail_probability=0.2,
            link_fail_probability=0.1,
            max_concurrent_failures=4,
            period_s=30.0,
        )
        injector = FailureInjector(system.network, system.router, plan=plan)
        assert injector.plan is plan
        assert injector.fail_probability == 0.2
        assert injector.link_fail_probability == 0.1
        assert injector.max_concurrent_failures == 4
        assert injector.period_s == 30.0


class TestLinkFaults:
    @pytest.fixture
    def harness(self):
        system = build_small_system(seed=4, num_nodes=12)
        injector = FailureInjector(
            system.network, system.router, rng=random.Random(2)
        )
        return system, injector

    def test_link_failure_reroutes(self, micro_router):
        # v0 -> v2 normally relays over e0+e1 (20 ms < direct 25 ms)
        assert micro_router.overlay_path(0, 2) == (0, 1)
        micro_router.set_down_links({0})
        assert micro_router.overlay_path(0, 2) == (2,)  # the direct link
        micro_router.set_down_links(set())
        assert micro_router.overlay_path(0, 2) == (0, 1)

    def test_fail_and_recover_links_roundtrip(self, harness):
        system, injector = harness
        before = system.router.epoch
        events = injector.fail_links([0, 3], now=1.0)
        assert [e.link_id for e in events] == [0, 3]
        assert all(e.kind == "link_down" for e in events)
        assert all(e.node_id == -1 for e in events)
        assert system.router.epoch == before + 1  # one batched update
        assert injector.down_links == frozenset({0, 3})
        assert system.router.down_links == frozenset({0, 3})
        events = injector.recover_links([0], now=2.0)
        assert events[0].kind == "link_up"
        assert events[0].link_id == 0
        assert injector.down_links == frozenset({3})
        assert system.router.down_links == frozenset({3})

    def test_link_batch_validation(self, harness):
        _system, injector = harness
        with pytest.raises(ValueError, match="duplicate"):
            injector.fail_links([1, 1])
        with pytest.raises(ValueError, match="unknown overlay link"):
            injector.fail_links([10_000])
        with pytest.raises(ValueError, match="unknown overlay link"):
            injector.fail_links([-1])
        injector.fail_links([1])
        with pytest.raises(ValueError, match="already down"):
            injector.fail_links([1])
        with pytest.raises(ValueError, match="not down"):
            injector.recover_links([2])
        with pytest.raises(ValueError, match="duplicate"):
            injector.recover_links([1, 1])

    def test_link_failure_disrupts_crossing_sessions(self, harness):
        system, injector = harness
        context = system.composition_context(rng=random.Random(1))
        sessions = SessionManager(
            ACPComposer(context, probing_ratio=1.0), system.allocator
        )
        template = system.templates.sample(random.Random(3))
        request = make_request(
            template.graph, delay_budget=500.0, loss_budget=0.4
        )
        session_id, _outcome = sessions.find(request)
        assert session_id is not None
        crossed = sorted(sessions.session(session_id).allocation.link_demands)
        assert crossed  # the composition spans at least one overlay link
        events = injector.fail_links([crossed[0]], sessions=sessions, now=5.0)
        assert events[0].sessions_killed == 1
        assert sessions.active_session_count == 0
        for node in system.network.nodes:
            assert all(abs(v) < 1e-6 for v in node.allocated.values)
        for link in system.network.links:
            assert abs(link.allocated_kbps) < 1e-6

    def test_round_cap_counts_nodes_and_links_combined(self):
        system = build_small_system(seed=5, num_nodes=12)
        injector = FailureInjector(
            system.network,
            system.router,
            rng=random.Random(3),
            plan=FaultPlan(
                node_fail_probability=1.0,  # everything wants to crash
                link_fail_probability=1.0,
                node_recover_probability=0.01,
                link_recover_probability=0.01,
                max_concurrent_failures=5,
            ),
        )
        injector.run_round(now=0.0)
        assert injector.concurrent_failures == 5
        assert len(injector.down_nodes) + len(injector.down_links) == 5

    def test_stochastic_link_round_records_events(self):
        system = build_small_system(seed=6, num_nodes=12)
        injector = FailureInjector(
            system.network,
            system.router,
            rng=random.Random(7),
            plan=FaultPlan(
                link_fail_probability=0.5,
                link_recover_probability=0.5,
                max_concurrent_failures=6,
            ),
        )
        injector.run_round(now=0.0)
        injector.run_round(now=60.0)
        kinds = {event.kind for event in injector.events}
        assert "link_down" in kinds
        assert all(
            event.link_id is not None
            for event in injector.events
            if event.kind in ("link_down", "link_up")
        )

    def test_node_only_plan_replays_legacy_churn_schedule(self):
        """A plan without link faults must draw the exact node-churn
        randomness the legacy constructor drew — no hidden link draws."""
        legacy_system = build_small_system(seed=8, num_nodes=12)
        legacy = FailureInjector(
            legacy_system.network,
            legacy_system.router,
            fail_probability=0.3,
            recover_probability=0.5,
            rng=random.Random(21),
        )
        planned_system = build_small_system(seed=8, num_nodes=12)
        planned = FailureInjector(
            planned_system.network,
            planned_system.router,
            rng=random.Random(21),
            plan=FaultPlan(
                node_fail_probability=0.3, node_recover_probability=0.5
            ),
        )
        for now in (0.0, 60.0, 120.0):
            legacy.run_round(now=now)
            planned.run_round(now=now)
        assert legacy.events == planned.events


class TestBatchedChurn:
    """Co-temporal crashes/recoveries must cost one routing update."""

    @pytest.fixture
    def harness(self):
        system = build_small_system(seed=4, num_nodes=12)
        injector = FailureInjector(
            system.network, system.router, rng=random.Random(2)
        )
        return system, injector

    def test_crash_many_issues_one_routing_update(self, harness):
        system, injector = harness
        before = system.router.epoch
        events = injector.crash_many([2, 5, 7], now=1.0)
        assert [e.node_id for e in events] == [2, 5, 7]
        assert all(e.kind == "crash" for e in events)
        assert system.router.epoch == before + 1
        assert injector.down_nodes == frozenset({2, 5, 7})
        assert all(not system.network.node(n).alive for n in (2, 5, 7))

    def test_recover_many_issues_one_routing_update(self, harness):
        system, injector = harness
        injector.crash_many([2, 5, 7])
        before = system.router.epoch
        events = injector.recover_many([5, 7], now=2.0)
        assert [e.node_id for e in events] == [5, 7]
        assert system.router.epoch == before + 1
        assert injector.down_nodes == frozenset({2})
        assert system.network.node(5).alive and system.network.node(7).alive

    def test_crash_batch_validated_before_any_mutation(self, harness):
        system, injector = harness
        injector.crash(2)
        before = system.router.epoch
        with pytest.raises(ValueError, match="already down"):
            injector.crash_many([3, 2])
        assert system.network.node(3).alive
        assert injector.down_nodes == frozenset({2})
        assert system.router.epoch == before

    def test_duplicate_ids_rejected(self, harness):
        _system, injector = harness
        with pytest.raises(ValueError, match="duplicate"):
            injector.crash_many([3, 3])
        injector.crash(3)
        with pytest.raises(ValueError, match="duplicate"):
            injector.recover_many([3, 3])

    def test_recover_batch_validated_before_any_mutation(self, harness):
        system, injector = harness
        injector.crash(2)
        before = system.router.epoch
        with pytest.raises(ValueError, match="not down"):
            injector.recover_many([2, 4])
        assert injector.down_nodes == frozenset({2})
        assert system.router.epoch == before

    def test_stochastic_round_issues_one_routing_update(self):
        system = build_small_system(seed=5, num_nodes=12)
        injector = FailureInjector(
            system.network,
            system.router,
            fail_probability=1.0,
            recover_probability=0.5,
            max_concurrent_failures=3,
            rng=random.Random(3),
        )
        before = system.router.epoch
        events = injector.run_round(now=0.0)
        assert len(events) == 3
        assert system.router.epoch == before + 1
        # a mixed round (recoveries + crashes) is still one update
        before = system.router.epoch
        injector.run_round(now=60.0)
        assert system.router.epoch <= before + 1

    def test_crash_many_kills_sessions(self):
        system = build_small_system(seed=4, num_nodes=12)
        context = system.composition_context(rng=random.Random(1))
        composer = ACPComposer(context, probing_ratio=1.0)
        sessions = SessionManager(composer, system.allocator)
        injector = FailureInjector(
            system.network, system.router, rng=random.Random(2)
        )
        template = system.templates.sample(random.Random(3))
        request = make_request(template.graph, delay_budget=500.0, loss_budget=0.4)
        session_id, outcome = sessions.find(request)
        assert session_id is not None
        used = set(outcome.composition.node_ids())
        events = injector.crash_many(sorted(used), sessions=sessions, now=5.0)
        assert sum(e.sessions_killed for e in events) == 1
        assert sessions.active_session_count == 0
