"""Integration tests: full simulations, cross-module invariants."""

import random

import pytest

from repro.core import (
    ACPComposer,
    OptimalComposer,
    RandomComposer,
    RandomProbingComposer,
    SelectiveProbingComposer,
    StaticComposer,
)
from repro.core.tuning import ProbingRatioTuner
from repro.simulation.simulator import StreamProcessingSimulator
from repro.simulation.workload import QOS_LEVELS, RateSchedule, WorkloadGenerator
from tests.conftest import build_small_system, rv

COMPOSER_MAKERS = {
    "ACP": lambda ctx: ACPComposer(ctx, probing_ratio=0.5),
    "Optimal": lambda ctx: OptimalComposer(ctx, max_explored=5000),
    "SP": lambda ctx: SelectiveProbingComposer(ctx, probing_ratio=0.5),
    "RP": lambda ctx: RandomProbingComposer(ctx, probing_ratio=0.5),
    "Random": lambda ctx: RandomComposer(ctx),
    "Static": lambda ctx: StaticComposer(ctx),
}


def run_simulation(name, duration_s=900.0, rate=20.0, seed=4, tuner=None):
    system = build_small_system(seed=seed, num_nodes=12)
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.constant(rate),
        qos_level=QOS_LEVELS["normal"],
        num_client_routers=system.config.num_routers,
        seed=seed + 50,
    )
    context = system.composition_context(rng=random.Random(seed))
    composer = COMPOSER_MAKERS[name](context)
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=300.0, tuner=tuner
    )
    report = simulator.run(duration_s)
    return system, simulator, report


class TestEndToEndRuns:
    @pytest.mark.parametrize("name", sorted(COMPOSER_MAKERS))
    def test_simulation_completes_and_accounts(self, name):
        system, simulator, report = run_simulation(name)
        assert report.algorithm == COMPOSER_MAKERS[name](
            system.composition_context()
        ).name
        assert report.total_requests > 0
        assert 0.0 <= report.success_rate <= 1.0
        assert report.successes == sum(
            1 for r in simulator.metrics.records if r.success
        )
        failures = report.total_requests - report.successes
        assert sum(report.failure_reasons.values()) == failures

    @pytest.mark.parametrize("name", ["ACP", "Optimal", "Random"])
    def test_no_resource_leaks_after_all_sessions_close(self, name):
        """After the horizon plus the longest session, every node and link
        must be back at full capacity."""
        system, simulator, _report = run_simulation(name, duration_s=600.0)
        # drain every pending session-close event
        simulator.scheduler.run_until(600.0 + 1000.0)
        system.allocator.expire_due(simulator.scheduler.now)
        assert simulator.sessions.active_session_count == 0
        for node in system.network.nodes:
            assert all(
                abs(v) < 1e-6 for v in node.allocated.values
            ), f"leak on {node!r}"
        for link in system.network.links:
            assert link.allocated_kbps == pytest.approx(0.0, abs=1e-6), (
                f"leak on {link!r}"
            )
        assert system.allocator.transient_request_ids == ()

    def test_same_seed_same_result(self):
        _, _, first = run_simulation("ACP", seed=6)
        _, _, second = run_simulation("ACP", seed=6)
        assert first.total_requests == second.total_requests
        assert first.successes == second.successes
        assert first.probe_messages == second.probe_messages

    def test_different_seeds_differ(self):
        _, _, first = run_simulation("ACP", seed=6)
        _, _, second = run_simulation("ACP", seed=7)
        assert (
            first.total_requests != second.total_requests
            or first.probe_messages != second.probe_messages
        )


class TestAlgorithmRelationships:
    def test_probing_algorithms_report_probe_overhead(self):
        for name in ("ACP", "SP", "RP", "Optimal"):
            _, _, report = run_simulation(name, duration_s=600.0)
            assert report.probe_messages > 0, name

    def test_one_shot_algorithms_send_no_probes(self):
        for name in ("Random", "Static"):
            _, _, report = run_simulation(name, duration_s=600.0)
            assert report.probe_messages == 0, name

    def test_optimal_overhead_dominates_acp(self):
        _, _, optimal = run_simulation("Optimal", duration_s=600.0)
        _, _, acp = run_simulation("ACP", duration_s=600.0)
        # the gap is modest on a 12-node system (k ≈ 2-3 candidates per
        # function) and grows with system size — Fig. 7(b)'s point
        assert optimal.probe_messages > acp.probe_messages

    def test_acp_beats_static_on_success(self):
        _, _, acp = run_simulation("ACP", duration_s=900.0, rate=30.0)
        _, _, static = run_simulation("Static", duration_s=900.0, rate=30.0)
        assert acp.success_rate > static.success_rate


class TestAdaptiveTuning:
    def test_tuner_drives_ratio_from_samples(self):
        tuner = ProbingRatioTuner(target_success_rate=0.99, base_ratio=0.1)
        _, simulator, report = run_simulation(
            "ACP", duration_s=1500.0, rate=40.0, tuner=tuner
        )
        assert len(tuner.samples) >= 4
        # under a 99% target with real load the tuner must have moved
        assert any(s.ratio > 0.1 for s in tuner.samples) or all(
            s.success_rate > 0.97 for s in tuner.samples
        )
        ratios = [s.probing_ratio for s in report.window_samples]
        assert all(r is not None for r in ratios)

    def test_tuner_requires_acp(self):
        system = build_small_system(seed=1)
        workload = WorkloadGenerator(
            system.templates, RateSchedule.constant(10.0), seed=0
        )
        composer = RandomComposer(system.composition_context())
        with pytest.raises(ValueError, match="ACP"):
            StreamProcessingSimulator(
                system, composer, workload, tuner=ProbingRatioTuner()
            )


class TestGlobalStateDuringSimulation:
    def test_state_updates_flow(self):
        system, _, report = run_simulation("ACP", duration_s=900.0, rate=30.0)
        assert report.state_update_messages > 0
        # drift is bounded by the threshold at reporting instants, but can
        # accumulate slightly between changes; sanity-bound it
        assert system.global_state.max_drift_fraction() <= 0.5

    def test_aggregation_rounds_ran(self):
        system, _, report = run_simulation("ACP", duration_s=1300.0)
        # default aggregation period is 600 s -> 2 rounds in 1300 s
        assert system.aggregation.rounds == 2
        assert report.aggregation_messages == 2 * (len(system.network) - 1)
