"""Property-based tests of cross-module invariants (hypothesis).

These complement the per-module unit tests with randomised invariants:

* the allocator conserves resources under arbitrary interleavings of
  reserve / cancel / expire / commit / release;
* φ(λ) is non-negative, monotone in load, and infinite exactly on
  saturation;
* the probing wavefront never exceeds its per-function probe budget and
  never returns an unqualified composition;
* the probing-ratio tuner keeps α on its grid, inside [base, max], and
  monotone non-decreasing under sustained shortfall;
* the metrics collector's window accounting loses no requests across
  arbitrary idle/busy window sequences.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation.allocator import AdmissionError, ResourceAllocator
from repro.core import ACPComposer, CompositionEvaluator, OptimalComposer
from repro.core.selection import probe_budget
from repro.core.tuning import ProbingRatioTuner
from repro.simulation.metrics import MetricsCollector, RequestRecord
from repro.model.function_graph import FunctionGraph
from repro.model.functions import FunctionCatalog
from repro.model.node import Node
from repro.topology.overlay import OverlayLink, OverlayNetwork
from repro.topology.routing import OverlayRouter
from tests.conftest import build_small_system, make_component, make_request, rv


# -- allocator conservation under random operation sequences -----------------


def fresh_micro():
    catalog = FunctionCatalog(size=4, num_formats=1)
    nodes = [Node(i, i, rv(100, 1000)) for i in range(3)]
    links = [
        OverlayLink(0, 0, 1, 10.0, 0.001, 10_000.0),
        OverlayLink(1, 1, 2, 10.0, 0.001, 10_000.0),
        OverlayLink(2, 0, 2, 25.0, 0.002, 10_000.0),
    ]
    network = OverlayNetwork(nodes, links)
    components = [
        make_component(i, catalog[i % 2], i % 3) for i in range(6)
    ]
    for component in components:
        network.node(component.node_id).host(component)
    router = OverlayRouter(network)
    return network, router, components


operation = st.tuples(
    st.sampled_from(["reserve", "cancel", "expire"]),
    st.integers(min_value=0, max_value=3),  # request id
    st.integers(min_value=0, max_value=5),  # component index
    st.floats(min_value=0.5, max_value=30.0),  # cpu amount
)


@given(st.lists(operation, max_size=40))
@settings(max_examples=60, deadline=None)
def test_allocator_conserves_resources(operations):
    network, router, components = fresh_micro()
    allocator = ResourceAllocator(network, router, transient_timeout_s=5.0)
    clock = 0.0
    for action, request_id, component_index, cpu in operations:
        clock += 1.0
        component = components[component_index]
        if action == "reserve":
            allocator.reserve_component(
                request_id, component, rv(cpu, cpu * 4), now=clock
            )
        elif action == "cancel":
            allocator.cancel_transient(request_id)
        else:
            allocator.expire_due(clock)
    # cancel everything and verify exact conservation
    for request_id in list(allocator.transient_request_ids):
        allocator.cancel_transient(request_id)
    for node in network.nodes:
        assert all(abs(v) < 1e-6 for v in node.allocated.values)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_commit_release_roundtrip_preserves_state(seed):
    network, router, components = fresh_micro()
    allocator = ResourceAllocator(network, router)
    rng = random.Random(seed)
    catalog_fns = [components[0].function, components[1].function]
    graph = FunctionGraph.path(catalog_fns)
    request = make_request(graph, request_id=seed, cpu=rng.uniform(1, 10))
    # any assignment respecting functions
    candidates0 = [c for c in components if c.function is catalog_fns[0]]
    candidates1 = [c for c in components if c.function is catalog_fns[1]]
    assignment = {0: rng.choice(candidates0), 1: rng.choice(candidates1)}
    if assignment[0].component_id == assignment[1].component_id:
        return
    links = {
        (0, 1): router.virtual_link(
            assignment[0].node_id, assignment[1].node_id
        )
    }
    from repro.model.component_graph import ComponentGraph

    composition = ComponentGraph(request, assignment, links)
    before_nodes = [node.available for node in network.nodes]
    before_links = [link.available_kbps for link in network.links]
    try:
        allocation = allocator.commit(composition)
    except AdmissionError:
        return
    allocator.release(allocation)
    assert [n.available for n in network.nodes] == before_nodes
    assert [l.available_kbps for l in network.links] == before_links


# -- φ properties ------------------------------------------------------------


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=20, deadline=None)
def test_phi_nonnegative_and_selected_compositions_feasible(seed):
    system = build_small_system(seed=seed % 7, num_nodes=10)
    context = system.composition_context(rng=random.Random(seed))
    evaluator = CompositionEvaluator(context)
    rng = random.Random(seed)
    template = system.templates.sample(rng)
    request = make_request(
        template.graph, request_id=seed, delay_budget=500.0, loss_budget=0.4
    )
    outcome = ACPComposer(context, probing_ratio=1.0).compose(request)
    context.allocator.cancel_transient(request.request_id)
    if not outcome.success:
        return
    assert outcome.phi >= 0.0
    ok, reason = evaluator.feasible(outcome.composition)
    assert ok, f"selected composition infeasible: {reason}"


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=15, deadline=None)
def test_optimal_never_worse_than_acp(seed):
    """On identical state, the exact optimum's φ lower-bounds ACP's pick."""
    system = build_small_system(seed=seed % 5, num_nodes=10)
    rng = random.Random(seed)
    template = system.templates.sample(rng)
    request = make_request(
        template.graph, request_id=seed, delay_budget=500.0, loss_budget=0.4
    )
    context = system.composition_context(rng=random.Random(seed))
    optimal = OptimalComposer(context).compose(request)
    context.allocator.cancel_transient(request.request_id)
    acp = ACPComposer(context, probing_ratio=1.0).compose(request)
    context.allocator.cancel_transient(request.request_id)
    if optimal.success and acp.success:
        assert optimal.phi <= acp.phi + 1e-6


# -- probe budget invariants ---------------------------------------------------


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=20, deadline=None)
def test_probe_messages_respect_budget(seed):
    """Total probe messages ≤ Σ_functions M_j + returning probes."""
    system = build_small_system(seed=seed % 5, num_nodes=10)
    context = system.composition_context(rng=random.Random(seed))
    rng = random.Random(seed)
    template = system.templates.sample(rng)
    request = make_request(
        template.graph, request_id=seed, delay_budget=500.0, loss_budget=0.4
    )
    ratio = rng.choice([0.1, 0.3, 0.5, 1.0])
    composer = ACPComposer(context, probing_ratio=ratio)
    outcome = composer.compose(request)
    context.allocator.cancel_transient(request.request_id)
    graph = request.function_graph
    bound = sum(
        probe_budget(ratio, context.registry.candidate_count(graph.node(i).function))
        for i in range(len(graph))
        if context.registry.candidate_count(graph.node(i).function) > 0
    )
    # + returning probes (≤ the last level's budget)
    assert outcome.probe_messages <= 2 * bound


# -- probing-ratio tuner invariants -------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_tuner_ratio_stays_on_grid_and_in_range(samples):
    """Whatever success rates arrive, α stays on the 0.1 grid and inside
    [base_ratio, max_ratio]."""
    tuner = ProbingRatioTuner(target_success_rate=0.9, max_ratio=0.8)
    for success_rate in samples:
        ratio = tuner.record_sample(success_rate)
        assert tuner.base_ratio - 1e-9 <= ratio <= tuner.max_ratio + 1e-9
        steps = ratio / tuner.step
        assert abs(steps - round(steps)) < 1e-6, f"off-grid ratio {ratio}"


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_tuner_monotone_under_sustained_shortfall(samples):
    """While every measurement misses the target, α never moves down."""
    tuner = ProbingRatioTuner(target_success_rate=0.9)
    previous = tuner.current_ratio()
    for success_rate in samples:
        ratio = tuner.record_sample(success_rate)
        assert ratio >= previous - 1e-9
        previous = ratio


# -- metrics window accounting -------------------------------------------------


window_sequence = st.lists(
    st.lists(st.booleans(), max_size=8), min_size=1, max_size=12
)


@given(window_sequence)
@settings(max_examples=100, deadline=None)
def test_metrics_window_accounting(windows):
    """Across arbitrary idle/busy window sequences: every request lands in
    exactly one window, busy windows report their own rate, and idle
    windows carry the previous rate forward (1.0 at the very start)."""
    collector = MetricsCollector()
    request_id = 0
    now = 0.0
    for outcomes in windows:
        for success in outcomes:
            collector.record(
                RequestRecord(
                    request_id=request_id,
                    arrival_time=now,
                    success=success,
                    probe_messages=1,
                    setup_messages=1,
                    explored=1,
                )
            )
            request_id += 1
        now += 300.0
        sample = collector.close_window(now)
        assert sample.requests == len(outcomes)
        if outcomes:
            assert sample.success_rate == pytest.approx(
                sum(outcomes) / len(outcomes)
            )
        else:
            previous = collector.window_samples[-2:-1]
            expected = previous[0].success_rate if previous else 1.0
            assert sample.success_rate == expected
    assert sum(s.requests for s in collector.window_samples) == request_id
    assert len(collector.records) == request_id
    assert collector.success_count() == sum(
        1 for r in collector.records if r.success
    )
