"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main

# every CLI test shrinks the workload far below even FAST_SCALE by
# narrowing the swept values; the fast scale handles the rest
TINY = ["--scale", "fast", "--nodes", "80", "--seed", "1"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(
            ["fig6", "--scale", "paper", "--seed", "7"]
        )
        assert args.scale == "paper"
        assert args.seed == 7

    def test_list_arguments_parse(self):
        args = build_parser().parse_args(
            ["fig5a", "--rates", "50,100", "--ratios", "0.1,0.5"]
        )
        assert args.rates == [50.0, 100.0]
        assert args.ratios == [0.1, 0.5]

    def test_fig7_counts(self):
        args = build_parser().parse_args(["fig7", "--counts", "200,400"])
        assert args.counts == [200, 400]

    def test_migrate_knobs(self):
        from repro.experiments import DEFAULT_MIGRATION_PLAN

        args = build_parser().parse_args(
            ["migrate", "--load", "1.5", "--spike-peak", "6",
             "--sustain", "4", "--round-cap", "2"]
        )
        assert args.load == 1.5
        assert args.spike_peak == 6.0
        assert args.sustain == 4
        assert args.round_cap == 2
        # unset knobs default to the experiment plan's policy
        defaults = build_parser().parse_args(["migrate"])
        policy = DEFAULT_MIGRATION_PLAN.policy
        assert defaults.high_watermark == policy.high_watermark
        assert defaults.sustain == policy.sustain_rounds
        assert defaults.round_cap == policy.max_session_migrations_per_round


class TestCommands:
    def test_compare_prints_summary(self, capsys):
        exit_code = main(
            ["compare", *TINY, "--rate", "20", "--algorithms", "ACP,Static"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "ACP" in out and "Static" in out
        assert "success (%)" in out

    def test_fig5a_single_point(self, capsys):
        exit_code = main(
            ["fig5a", *TINY, "--rates", "20", "--ratios", "0.5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 5a" in out
        assert "20 reqs/min" in out

    def test_trace_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "trace", *TINY, "--rate", "20", "--adaptive",
                "--duration", "400", "--trace-out", str(trace_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "events" in out
        assert trace_path.exists()
        # the exported trace summarises standalone
        exit_code = main(["trace-summary", str(trace_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "event counts" in out
        assert "tuner decisions" in out

    def test_output_file(self, tmp_path, capsys):
        sink = tmp_path / "out.txt"
        main(
            [
                "compare", "--scale", "fast", "--nodes", "80", "--seed", "1",
                "-o", str(sink), "--rate", "20", "--algorithms", "Static",
            ]
        )
        capsys.readouterr()
        assert "Static" in sink.read_text()
