"""End-to-end determinism: same seed, byte-identical results.

The companion to ``repro.analysis``'s static rules — the dynamic check
that the whole stack (topology build, deployment, workload, probing,
failures, adaptive tuning, reporting) is a pure function of the spec's
seeds.  ``repr`` on the report dataclasses captures every float bit, so
equality here is byte-identity of everything an experiment publishes.
"""

import dataclasses

from repro.discovery.deployment import DeploymentProfile
from repro.experiments.config import ExperimentScale, default_spec
from repro.experiments.reporting import format_report_summary
from repro.experiments.runner import run_spec
from repro.simulation.workload import RateSchedule

_SCALE = ExperimentScale(
    name="determinism-tiny",
    num_routers=120,
    duration_s=240.0,
    adaptability_duration_s=540.0,
    sampling_period_s=60.0,
    optimal_max_explored=3000,
)


def _spec(algorithm="ACP", seed=7, adaptive=False):
    spec = default_spec(
        scale=_SCALE,
        algorithm=algorithm,
        num_nodes=40,
        rate_per_min=30.0,
        seed=seed,
    )
    return dataclasses.replace(
        spec,
        adaptive=adaptive,
        system=dataclasses.replace(
            spec.system, deployment=DeploymentProfile(components_per_node=(2, 3))
        ),
    )


class TestSameSeedByteIdentical:
    def test_two_runs_produce_byte_identical_reports(self):
        first = run_spec(_spec())
        second = run_spec(_spec())
        assert repr(first) == repr(second)
        assert format_report_summary([first]) == format_report_summary([second])

    def test_adaptive_run_replays_exactly(self):
        # the tuner feedback loop folds measured rates back into decisions;
        # a single unseeded draw or unordered iteration anywhere upstream
        # would fan out into different probing ratios here
        spec = dataclasses.replace(
            _spec(adaptive=True),
            schedule=RateSchedule.steps(
                (0.0, 20.0), (120.0, 60.0), (300.0, 30.0)
            ),
        )
        first = run_spec(spec)
        second = run_spec(spec)
        assert repr(first) == repr(second)

    def test_different_seeds_actually_differ(self):
        # guard against the degenerate fix: everything pinned to one stream
        first = run_spec(_spec(seed=7))
        second = run_spec(_spec(seed=8))
        assert repr(first) != repr(second)
