"""End-to-end determinism: same seed, byte-identical results.

The companion to ``repro.analysis``'s static rules — the dynamic check
that the whole stack (topology build, deployment, workload, probing,
failures, adaptive tuning, reporting) is a pure function of the spec's
seeds.  ``repr`` on the report dataclasses captures every float bit, so
equality here is byte-identity of everything an experiment publishes.
"""

import dataclasses

from repro.discovery.deployment import DeploymentProfile
from repro.experiments.config import ExperimentScale, default_spec
from repro.experiments.reporting import format_report_summary
from repro.experiments.runner import run_spec
from repro.middleware.session import RecoveryPolicy
from repro.simulation.failures import FaultPlan
from repro.simulation.workload import RateSchedule

_SCALE = ExperimentScale(
    name="determinism-tiny",
    num_routers=120,
    duration_s=240.0,
    adaptability_duration_s=540.0,
    sampling_period_s=60.0,
    optimal_max_explored=3000,
)


def _spec(algorithm="ACP", seed=7, adaptive=False):
    spec = default_spec(
        scale=_SCALE,
        algorithm=algorithm,
        num_nodes=40,
        rate_per_min=30.0,
        seed=seed,
    )
    return dataclasses.replace(
        spec,
        adaptive=adaptive,
        system=dataclasses.replace(
            spec.system, deployment=DeploymentProfile(components_per_node=(2, 3))
        ),
    )


class TestSameSeedByteIdentical:
    def test_two_runs_produce_byte_identical_reports(self):
        first = run_spec(_spec())
        second = run_spec(_spec())
        assert repr(first) == repr(second)
        assert format_report_summary([first]) == format_report_summary([second])

    def test_adaptive_run_replays_exactly(self):
        # the tuner feedback loop folds measured rates back into decisions;
        # a single unseeded draw or unordered iteration anywhere upstream
        # would fan out into different probing ratios here
        spec = dataclasses.replace(
            _spec(adaptive=True),
            schedule=RateSchedule.steps(
                (0.0, 20.0), (120.0, 60.0), (300.0, 30.0)
            ),
        )
        first = run_spec(spec)
        second = run_spec(spec)
        assert repr(first) == repr(second)

    def test_different_seeds_actually_differ(self):
        # guard against the degenerate fix: everything pinned to one stream
        first = run_spec(_spec(seed=7))
        second = run_spec(_spec(seed=8))
        assert repr(first) != repr(second)


#: The full cocktail at unit-test scale: node and link churn, lossy and
#: delayed probes, and state-update loss, all drawing from seed-derived
#: streams.
_COCKTAIL = FaultPlan(
    node_fail_probability=0.05,
    node_recover_probability=0.5,
    link_fail_probability=0.03,
    link_recover_probability=0.5,
    probe_loss_probability=0.05,
    probe_delay_ms=1.0,
    max_probe_retries=2,
    state_update_loss_probability=0.10,
    period_s=30.0,
)


class TestFaultDeterminism:
    def test_fault_cocktail_replays_exactly(self):
        """Same seed + same FaultPlan ⇒ byte-identical run reports.

        Every fault stream (churn, probe loss, state-update loss) must be
        a pure function of the spec's seeds — one draw from a shared or
        unseeded stream anywhere would diverge here."""
        spec = _spec().with_faults(
            _COCKTAIL, RecoveryPolicy(recovery_deadline_s=20.0)
        )
        first = run_spec(spec)
        second = run_spec(spec)
        assert repr(first) == repr(second)
        assert first.sessions_disrupted > 0  # the cocktail actually bit

    def test_zero_fault_plan_is_decision_identical(self):
        """A zero FaultPlan must not wire anything: the run is
        byte-identical to a spec with no fault machinery at all (the
        CI-enforced differential of the fault-model expansion)."""
        plain = run_spec(_spec())
        zeroed = run_spec(_spec().with_faults(FaultPlan.none()))
        assert repr(plain) == repr(zeroed)

    def test_recovery_policy_changes_outcomes_not_determinism(self):
        """Recovery alters the trajectory (sessions survive) but each
        variant must itself replay exactly."""
        killed = run_spec(_spec().with_faults(_COCKTAIL))
        recovered = run_spec(
            _spec().with_faults(_COCKTAIL, RecoveryPolicy())
        )
        assert repr(killed) != repr(recovered)
        assert killed.sessions_recovered == 0
        assert recovered.sessions_killed <= killed.sessions_killed


class TestPopulationDeterminism:
    """The population layer draws from its own seed-derived streams
    (workload_seed + 43 and two internal sub-streams); same-seed runs
    must be byte-identical and different seeds must actually diverge."""

    @staticmethod
    def _population_spec(seed=7):
        from repro.simulation.population import (
            DiurnalCurve,
            PopulationProfile,
            TrafficEvent,
        )

        profile = PopulationProfile(
            mean_active_users=15.0,
            requests_per_user_per_min=2.0,
            diurnal=DiurnalCurve(((0.0, 0.5), (120.0, 1.5)), period_s=240.0),
            events=(
                TrafficEvent.regional_spike(
                    start_s=60.0, peak_multiplier=4.0, region=(0, 30),
                    ramp_s=10.0, plateau_s=60.0, decay_s=20.0,
                ),
            ),
        )
        return _spec(seed=seed).with_population(profile)

    def test_population_run_replays_exactly(self):
        first = run_spec(self._population_spec())
        second = run_spec(self._population_spec())
        assert repr(first) == repr(second)
        assert first.total_requests > 0

    def test_population_different_seeds_differ(self):
        first = run_spec(self._population_spec(seed=7))
        second = run_spec(self._population_spec(seed=8))
        assert repr(first) != repr(second)

    def test_population_independent_of_base_schedule(self):
        """spec.population overrides the RateSchedule entirely: changing
        the (ignored) schedule must not perturb a population run."""
        base = self._population_spec()
        rescheduled = dataclasses.replace(
            base, schedule=RateSchedule.constant(999.0)
        )
        assert repr(run_spec(base)) == repr(run_spec(rescheduled))
