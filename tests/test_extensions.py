"""Tests for the paper's future-work extensions.

Section 6 names three follow-on directions, all implemented here:
(1) control-theoretic probing-ratio tuning — :class:`PIDRatioTuner`,
(2) application-specific constraints (security level, software licence) —
    component capability tags and request ``required_attributes``,
(3) dynamic component migration — :class:`ComponentMigrationManager`.
"""

import dataclasses
import random

import pytest

from repro.core import ACPComposer, OptimalComposer, PIDRatioTuner, RandomComposer
from repro.discovery.deployment import ComponentDeployer, DeploymentProfile
from repro.model.function_graph import FunctionGraph
from repro.placement.migration import (
    ComponentMigrationManager,
    MigrationPolicy,
)
from tests.conftest import build_small_system, make_component, make_request, rv


# -- (1) PID ratio tuner ------------------------------------------------------


class TestPIDRatioTuner:
    def test_starts_at_base(self):
        tuner = PIDRatioTuner(target_success_rate=0.9)
        assert tuner.current_ratio() == 0.1

    def test_rises_below_target(self):
        tuner = PIDRatioTuner(target_success_rate=0.9)
        ratio = tuner.record_sample(0.5)
        assert ratio > 0.1

    def test_falls_above_target(self):
        tuner = PIDRatioTuner(target_success_rate=0.7)
        tuner.record_sample(0.3)  # push up
        high = tuner.current_ratio()
        for _ in range(4):
            tuner.record_sample(0.99)
        assert tuner.current_ratio() < high

    def test_bounds_respected(self):
        tuner = PIDRatioTuner(target_success_rate=0.99, max_ratio=0.8)
        for _ in range(20):
            tuner.record_sample(0.0)
        assert tuner.current_ratio() == 0.8
        descender = PIDRatioTuner(target_success_rate=0.5)
        descender.record_sample(0.0)  # push up first
        for _ in range(20):
            descender.record_sample(1.0)
        assert descender.current_ratio() == descender.base_ratio

    def test_integral_antiwindup(self):
        """An unreachable target must not poison later convergence."""
        tuner = PIDRatioTuner(target_success_rate=0.99, integral_limit=1.0)
        for _ in range(50):
            tuner.record_sample(0.2)  # rails at max, integral clamped
        assert abs(tuner.integral) <= 1.0
        # regime change: success above target -> ratio must come down fast
        for _ in range(5):
            tuner.record_sample(1.0)
        assert tuner.current_ratio() < 1.0

    def test_converges_on_synthetic_plant(self):
        """Against a synthetic monotone α→success plant, the controller
        settles near the α that meets the target."""
        tuner = PIDRatioTuner(target_success_rate=0.8, kp=0.8, ki=0.2, kd=0.1)

        def plant(alpha):
            return min(1.0, 0.4 + 0.5 * alpha)  # target met at alpha = 0.8

        ratio = tuner.current_ratio()
        for _ in range(60):
            ratio = tuner.record_sample(plant(ratio))
        assert plant(ratio) == pytest.approx(0.8, abs=0.07)

    def test_drives_acp_composer(self, micro_context):
        tuner = PIDRatioTuner(target_success_rate=0.9)
        composer = ACPComposer(micro_context, tuner=None)
        composer.attach_tuner(tuner)
        assert composer.current_probing_ratio() == tuner.current_ratio()
        tuner.record_sample(0.2)
        assert composer.current_probing_ratio() == tuner.current_ratio()

    def test_reset(self):
        tuner = PIDRatioTuner()
        tuner.record_sample(0.1)
        tuner.reset()
        assert tuner.current_ratio() == tuner.base_ratio
        assert tuner.integral == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            PIDRatioTuner(target_success_rate=0.0)
        with pytest.raises(ValueError, match="base_ratio"):
            PIDRatioTuner(base_ratio=0.9, max_ratio=0.5)
        with pytest.raises(ValueError, match="integral_limit"):
            PIDRatioTuner(integral_limit=0.0)
        with pytest.raises(ValueError, match="success rate"):
            PIDRatioTuner().record_sample(2.0)


# -- (2) attribute constraints ---------------------------------------------------


class TestAttributeConstraints:
    def test_component_tag_check(self, catalog):
        secure = make_component(0, catalog[0], 0)
        secure = dataclasses.replace(
            secure, attributes=frozenset({"security:high", "licence:apache"})
        )
        assert secure.satisfies_attributes(frozenset({"security:high"}))
        assert not secure.satisfies_attributes(frozenset({"security:top"}))
        assert secure.satisfies_attributes(frozenset())

    def _tagged_request(self, catalog, tags):
        graph = FunctionGraph.path([catalog[0], catalog[1]])
        request = make_request(graph)
        return dataclasses.replace(request, required_attributes=frozenset(tags))

    def test_acp_filters_untagged_candidates(self, micro_context, catalog):
        request = self._tagged_request(catalog, {"security:high"})
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(request)
        # micro components advertise no tags -> nothing qualifies
        assert not outcome.success

    def test_optimal_filters_untagged_candidates(self, micro_context, catalog):
        request = self._tagged_request(catalog, {"security:high"})
        outcome = OptimalComposer(micro_context).compose(request)
        assert not outcome.success

    def test_random_filters_untagged_candidates(self, micro_context, catalog):
        request = self._tagged_request(catalog, {"security:high"})
        outcome = RandomComposer(micro_context).compose(request)
        assert not outcome.success

    def test_tagged_candidates_compose(self, micro_context, catalog):
        # retrofit tags onto the deployed components via the registry
        for component_id in (0, 1, 2):
            old = micro_context.registry.component(component_id)
            tagged = dataclasses.replace(
                old, attributes=frozenset({"security:high"})
            )
            micro_context.registry.replace(tagged)
            node = micro_context.network.node(old.node_id)
            node.unhost(old.component_id)
            node.host(tagged)
        request = self._tagged_request(catalog, {"security:high"})
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(request)
        assert outcome.success

    def test_deployment_attribute_pool(self):
        system = build_small_system(seed=2)
        profile = DeploymentProfile(
            components_per_node=(1, 1),
            attribute_pool=(("security:high", 1.0), ("licence:gpl", 0.0)),
        )
        from repro.model.functions import FunctionCatalog
        from repro.topology.ip_network import IPNetwork
        from repro.topology.overlay import build_overlay_network
        from repro.topology.powerlaw import PowerLawTopologyGenerator

        ip = IPNetwork(PowerLawTopologyGenerator(num_routers=80, seed=3).generate())
        network = build_overlay_network(ip, 15, rng=random.Random(4))
        registry = ComponentDeployer(FunctionCatalog(size=10), profile).deploy(
            network, rng=random.Random(5)
        )
        for component in registry.components():
            assert "security:high" in component.attributes
            assert "licence:gpl" not in component.attributes

    def test_invalid_attribute_probability(self):
        with pytest.raises(ValueError, match="probability"):
            DeploymentProfile(attribute_pool=(("x", 1.5),))


# -- (3) component migration ------------------------------------------------------


class TestMigration:
    @pytest.fixture
    def loaded_system(self):
        """A small system with one node driven above the high watermark."""
        system = build_small_system(seed=8, num_nodes=12)
        # find a node hosting a component whose function has >1 instance
        for node in system.network.nodes:
            for component in node.components:
                if system.registry.candidate_count(component.function) > 1:
                    hot = node
                    capacity = hot.capacity
                    hot.allocate(capacity.scaled(0.9))
                    return system, hot
        pytest.skip("no replicated function in this seed")

    def test_round_moves_component_off_hot_node(self, loaded_system):
        system, hot = loaded_system
        manager = ComponentMigrationManager(system.network, system.registry)
        before = len(hot.components)
        records = manager.run_round(now=100.0)
        assert len(records) >= 1
        record = records[0]
        assert record.from_node == hot.node_id
        assert len(hot.components) == before - 1
        # the instance is hosted and registered at the target
        target = system.network.node(record.to_node)
        assert target.hosts(record.component_id)
        moved = system.registry.component(record.component_id)
        assert moved.node_id == record.to_node

    def test_registry_order_stable_across_migration(self, loaded_system):
        system, _hot = loaded_system
        order_before = [c.component_id for c in system.registry.components()]
        ComponentMigrationManager(system.network, system.registry).run_round()
        order_after = [c.component_id for c in system.registry.components()]
        assert order_before == order_after

    def test_idle_system_does_not_migrate(self):
        system = build_small_system(seed=8, num_nodes=12)
        manager = ComponentMigrationManager(system.network, system.registry)
        assert manager.run_round() == []
        assert manager.migration_count == 0

    def test_message_accounting(self, loaded_system):
        system, _hot = loaded_system
        manager = ComponentMigrationManager(system.network, system.registry)
        records = manager.run_round()
        assert manager.migration_messages == 2 * len(records)

    def test_target_below_low_watermark_only(self, loaded_system):
        system, hot = loaded_system
        # saturate every other node so no target qualifies
        for node in system.network.nodes:
            if node is not hot:
                node.allocate(node.capacity.scaled(0.6))
        manager = ComponentMigrationManager(system.network, system.registry)
        assert manager.run_round() == []

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="watermark"):
            MigrationPolicy(high_watermark=0.4, low_watermark=0.5)
        with pytest.raises(ValueError, match="max_migrations"):
            MigrationPolicy(max_migrations_per_round=0)

    def test_simulator_integration(self):
        """The simulator drives periodic migration rounds; composition keeps
        working on the migrated placement."""
        import random as _random

        from repro.simulation import (
            RateSchedule,
            StreamProcessingSimulator,
            WorkloadGenerator,
        )

        system = build_small_system(seed=9, num_nodes=12)
        manager = ComponentMigrationManager(
            system.network,
            system.registry,
            policy=MigrationPolicy(high_watermark=0.5, low_watermark=0.3),
            period_s=120.0,
        )
        workload = WorkloadGenerator(
            system.templates, RateSchedule.constant(30.0), seed=10
        )
        composer = ACPComposer(
            system.composition_context(rng=_random.Random(1)), probing_ratio=0.5
        )
        simulator = StreamProcessingSimulator(
            system, composer, workload, sampling_period_s=300.0,
            migration=manager,
        )
        report = simulator.run(900.0)
        assert report.total_requests > 0
        # hosting and registry stayed consistent through any migrations
        for node in system.network.nodes:
            for component in node.components:
                assert component.node_id == node.node_id
                assert (
                    system.registry.component(component.component_id)
                    is component
                )

    def test_instance_migration_is_traced(self, loaded_system):
        """Satellite of the live-migration PR: the instance-migration path
        emits guarded ``migration.instance`` events and a counter, so
        ``repro-experiments trace`` sees rebalancing."""
        from repro.observability import TraceRecorder

        system, hot = loaded_system
        recorder = TraceRecorder()
        manager = ComponentMigrationManager(
            system.network, system.registry, recorder=recorder
        )
        records = manager.run_round(now=50.0)
        assert len(records) >= 1
        events = recorder.events_of("migration.instance")
        assert len(events) == len(records)
        assert events[0].fields["from_node"] == hot.node_id
        assert events[0].fields["component_id"] == records[0].component_id
        assert (
            recorder.registry.counter("migration.instances").value
            == len(records)
        )


class TestMigrationTieBreaks:
    """Satellite of the live-migration PR: shed/target selection must be a
    pure function of system state — ordered by ``(coverage, component_id)``
    and ``(load, node_id)`` — not of node/hosting scan order."""

    def _build(self, host_order):
        from repro.discovery.registry import ComponentRegistry
        from repro.model.functions import FunctionCatalog
        from repro.model.node import Node
        from repro.topology.overlay import OverlayLink, OverlayNetwork

        catalog = FunctionCatalog(size=4, num_formats=2)
        fn_a, fn_b = catalog[0], catalog[1]
        network = OverlayNetwork(
            [
                Node(node_id, router_id=node_id, capacity=rv(100, 1000))
                for node_id in range(4)
            ],
            [
                OverlayLink(i, i, i + 1, delay_ms=10.0, loss_rate=0.001,
                            capacity_kbps=10_000.0)
                for i in range(3)
            ],
        )
        # node 0: one instance of each function; fn B is better covered
        # (3 instances) than fn A (2), and its node-0 instance has the
        # smallest component id hosted there
        components = {
            5: make_component(5, fn_a, 0),
            3: make_component(3, fn_b, 0),
            7: make_component(7, fn_a, 3),
            9: make_component(9, fn_b, 3),
            11: make_component(11, fn_b, 3),
        }
        registry = ComponentRegistry()
        for component_id in host_order:
            component = components[component_id]
            network.node(component.node_id).host(component)
            registry.register(component)
        # drive node 0 hot; nodes 1 and 2 stay idle at identical load
        hot = network.node(0)
        hot.allocate(hot.capacity.scaled(0.9))
        return network, registry

    @pytest.mark.parametrize(
        "host_order", [(5, 3, 7, 9, 11), (11, 9, 7, 3, 5), (3, 7, 11, 5, 9)]
    )
    def test_selection_is_hosting_order_independent(self, host_order):
        network, registry = self._build(host_order)
        manager = ComponentMigrationManager(network, registry)
        records = manager.run_round(now=0.0)
        assert len(records) == 1
        record = records[0]
        # shed: fn B wins on coverage (3 > 2); its hosted instance is c3
        assert record.component_id == 3
        # target: nodes 1 and 2 tie at zero load — the smaller id wins
        assert record.from_node == 0
        assert record.to_node == 1

    def test_shed_coverage_tie_breaks_on_component_id(self):
        network, registry = self._build((5, 3, 7, 9, 11))
        # give fn A a third instance so both functions tie at coverage 3
        extra = make_component(13, registry.component(5).function, 3)
        network.node(3).host(extra)
        registry.register(extra)
        manager = ComponentMigrationManager(network, registry)
        shed = manager._pick_component_to_shed(network.node(0))
        assert shed is not None
        assert shed.component_id == 3  # min id among equal-coverage picks
