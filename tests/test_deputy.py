"""Unit tests for deputy node selection."""

import numpy as np
import pytest

from repro.topology.deputy import DeputySelector
from repro.topology.ip_network import IPNetwork
from repro.topology.powerlaw import RouterGraph, RouterLink
from repro.model.node import Node
from repro.topology.overlay import OverlayLink, OverlayNetwork
from tests.conftest import rv


@pytest.fixture
def selector():
    """A 5-router line; overlay nodes sit on routers 0 and 4."""
    links = tuple(
        RouterLink(i, i, i + 1, delay_ms=1.0, bandwidth_kbps=1000.0, loss_rate=0.0)
        for i in range(4)
    )
    ip = IPNetwork(RouterGraph(5, links))
    nodes = [Node(0, 0, rv(10, 10)), Node(1, 4, rv(10, 10))]
    overlay = OverlayNetwork(
        nodes, [OverlayLink(0, 0, 1, 4.0, 0.0, 1000.0)]
    )
    return DeputySelector(ip, overlay)


class TestDeputySelection:
    def test_client_at_overlay_router_gets_that_node(self, selector):
        assert selector.deputy_for_router(0) == 0
        assert selector.deputy_for_router(4) == 1

    def test_midpoint_breaks_toward_closer_node(self, selector):
        # router 1 is 1ms from node 0's router, 3ms from node 1's
        assert selector.deputy_for_router(1) == 0
        assert selector.deputy_for_router(3) == 1

    def test_delay_to_deputy(self, selector):
        assert selector.delay_to_deputy(1) == pytest.approx(1.0)
        assert selector.delay_to_deputy(0) == 0.0

    def test_batch_lookup_matches_scalar(self, selector):
        batch = selector.deputies_for([0, 1, 3, 4])
        assert list(batch) == [0, 0, 1, 1]

    def test_unknown_router_rejected(self, selector):
        with pytest.raises(ValueError, match="unknown client router"):
            selector.deputy_for_router(99)

    def test_deputy_minimises_delay_on_generated_system(self, small_system):
        selector = small_system.deputy_selector
        routers = [node.router_id for node in small_system.network.nodes]
        delays = small_system.ip_network.delays_from(routers)
        for client in range(0, small_system.config.num_routers, 7):
            deputy = selector.deputy_for_router(client)
            assert delays[deputy, client] == pytest.approx(
                float(np.min(delays[:, client]))
            )
