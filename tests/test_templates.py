"""Unit tests for the application template library."""

import random

import pytest

from repro.model.functions import FunctionCatalog
from repro.model.templates import TemplateLibrary


@pytest.fixture
def catalog():
    # overrides the session default: DAG templates draw up to 12 distinct
    # functions (2 branches of 5 plus source and join)
    return FunctionCatalog(size=20, num_formats=2)


@pytest.fixture
def library(catalog):
    return TemplateLibrary(catalog, size=10, seed=3)


class TestGeneration:
    def test_size(self, library):
        assert len(library) == 10

    def test_default_paper_size(self):
        catalog = FunctionCatalog()
        assert len(TemplateLibrary(catalog)) == 20

    def test_deterministic_for_seed(self, catalog):
        a = TemplateLibrary(catalog, size=8, seed=5)
        b = TemplateLibrary(catalog, size=8, seed=5)
        for ta, tb in zip(a.templates, b.templates):
            assert ta.name == tb.name
            assert [n.function.function_id for n in ta.graph.nodes] == [
                n.function.function_id for n in tb.graph.nodes
            ]
            assert ta.graph.edges == tb.graph.edges

    def test_different_seeds_differ(self, catalog):
        a = TemplateLibrary(catalog, size=8, seed=5)
        b = TemplateLibrary(catalog, size=8, seed=6)
        assert any(
            ta.graph.edges != tb.graph.edges
            or [n.function.function_id for n in ta.graph.nodes]
            != [n.function.function_id for n in tb.graph.nodes]
            for ta, tb in zip(a.templates, b.templates)
        )

    def test_shapes_are_paths_or_two_branch_dags(self, catalog):
        library = TemplateLibrary(catalog, size=30, seed=1, dag_fraction=0.5)
        for template in library.templates:
            graph = template.graph
            if graph.is_path():
                continue
            # two-branch DAG: single source, single sink, join in-degree 2
            assert len(graph.sources()) == 1
            assert len(graph.sinks()) == 1
            sink = graph.sinks()[0]
            assert len(graph.predecessors(sink)) == 2

    def test_path_lengths_within_range(self, catalog):
        library = TemplateLibrary(
            catalog, size=40, seed=2, path_length_range=(2, 5), dag_fraction=0.0
        )
        for template in library.templates:
            assert 2 <= len(template.graph) <= 5

    def test_dag_only_library(self, catalog):
        library = TemplateLibrary(catalog, size=10, seed=2, dag_fraction=1.0)
        assert all(not t.graph.is_path() for t in library.templates)

    def test_distinct_functions_within_template(self, catalog):
        library = TemplateLibrary(catalog, size=20, seed=4)
        for template in library.templates:
            ids = [n.function.function_id for n in template.graph.nodes]
            assert len(set(ids)) == len(ids)


class TestValidation:
    def test_bad_size(self, catalog):
        with pytest.raises(ValueError, match="positive"):
            TemplateLibrary(catalog, size=0)

    def test_bad_length_range(self, catalog):
        with pytest.raises(ValueError, match="path_length_range"):
            TemplateLibrary(catalog, path_length_range=(3, 2))

    def test_bad_dag_fraction(self, catalog):
        with pytest.raises(ValueError, match="dag_fraction"):
            TemplateLibrary(catalog, dag_fraction=1.5)


class TestSampling:
    def test_sample_is_uniform_over_library(self, library):
        rng = random.Random(0)
        seen = {library.sample(rng).template_id for _ in range(500)}
        assert seen == set(range(10))

    def test_indexing(self, library):
        assert library[3].template_id == 3

    def test_functions_used_subset_of_catalog(self, library, catalog):
        used = library.functions_used()
        assert all(f.function_id < len(catalog) for f in used)
        assert len({f.function_id for f in used}) == len(used)
