"""Unit tests for function graphs."""

import pytest
from hypothesis import given, strategies as st

from repro.model.function_graph import FunctionGraph
from repro.model.functions import FunctionCatalog


@pytest.fixture
def path3(catalog):
    return FunctionGraph.path([catalog[0], catalog[1], catalog[2]])


@pytest.fixture
def dag(catalog):
    """source → (branch a: f1,f2 | branch b: f3) → join."""
    return FunctionGraph.two_branch(
        catalog[0], [catalog[1], catalog[2]], [catalog[3]], catalog[4]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FunctionGraph([], [])

    def test_unknown_edge_endpoint_rejected(self, catalog):
        with pytest.raises(ValueError, match="unknown node"):
            FunctionGraph([catalog[0]], [(0, 1)])

    def test_self_loop_rejected(self, catalog):
        with pytest.raises(ValueError, match="self-loop"):
            FunctionGraph([catalog[0], catalog[1]], [(0, 0)])

    def test_cycle_rejected(self, catalog):
        with pytest.raises(ValueError, match="cycle"):
            FunctionGraph(
                [catalog[0], catalog[1], catalog[2]], [(0, 1), (1, 2), (2, 0)]
            )

    def test_single_node_graph(self, catalog):
        graph = FunctionGraph([catalog[0]], [])
        assert graph.sources() == (0,)
        assert graph.sinks() == (0,)
        assert graph.is_path()


class TestPathShape:
    def test_path_structure(self, path3):
        assert path3.is_path()
        assert path3.edges == ((0, 1), (1, 2))
        assert path3.sources() == (0,)
        assert path3.sinks() == (2,)

    def test_topological_order(self, path3):
        assert path3.topological_order() == (0, 1, 2)

    def test_levels(self, path3):
        assert path3.levels() == ((0,), (1,), (2,))

    def test_all_paths(self, path3):
        assert path3.all_paths() == ((0, 1, 2),)


class TestDagShape:
    def test_two_branch_structure(self, dag):
        assert not dag.is_path()
        assert dag.sources() == (0,)
        # nodes: 0=source, 1,2=branch a, 3=branch b, 4=join
        assert dag.sinks() == (4,)
        assert set(dag.successors(0)) == {1, 3}
        assert set(dag.predecessors(4)) == {2, 3}

    def test_two_branch_paths(self, dag):
        assert set(dag.all_paths()) == {(0, 1, 2, 4), (0, 3, 4)}

    def test_topological_order_respects_edges(self, dag):
        order = dag.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for a, b in dag.edges:
            assert position[a] < position[b]

    def test_levels_group_by_depth(self, dag):
        levels = dag.levels()
        assert levels[0] == (0,)
        assert 4 in levels[-1]

    def test_empty_branch_rejected(self, catalog):
        with pytest.raises(ValueError, match="non-empty"):
            FunctionGraph.two_branch(catalog[0], [], [catalog[1]], catalog[2])


class TestStreamRates:
    def test_path_rates_apply_selectivity(self, catalog):
        # filtering (0.6) then aggregation (0.3)
        graph = FunctionGraph.path(
            [catalog.by_name("filtering-00"), catalog.by_name("aggregation-00")]
        )
        rates = graph.input_rates(100.0)
        assert rates[0] == 100.0
        assert rates[1] == pytest.approx(60.0)

    def test_edge_rates(self, catalog):
        graph = FunctionGraph.path(
            [catalog.by_name("filtering-00"), catalog.by_name("aggregation-00")]
        )
        assert graph.edge_rates(100.0)[(0, 1)] == pytest.approx(60.0)

    def test_fanout_duplicates_rate(self, dag):
        rates = dag.input_rates(100.0)
        source_out = dag.node(0).function.output_rate(100.0)
        assert rates[1] == pytest.approx(source_out)
        assert rates[3] == pytest.approx(source_out)

    def test_join_sums_rates(self, dag):
        rates = dag.input_rates(100.0)
        expected = dag.node(2).function.output_rate(
            rates[2]
        ) + dag.node(3).function.output_rate(rates[3])
        assert rates[4] == pytest.approx(expected)

    def test_nonpositive_rate_rejected(self, path3):
        with pytest.raises(ValueError, match="positive"):
            path3.input_rates(0.0)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
def test_random_dag_topological_order_is_valid(n, seed):
    """Random DAGs (edges only forward) always topo-sort consistently."""
    import random

    rng = random.Random(seed)
    catalog = FunctionCatalog(size=max(n, 2))
    functions = [catalog[i % len(catalog)] for i in range(n)]
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < 0.4
    ]
    graph = FunctionGraph(functions, edges)
    order = graph.topological_order()
    assert sorted(order) == list(range(n))
    position = {node: index for index, node in enumerate(order)}
    for a, b in graph.edges:
        assert position[a] < position[b]
    # levels partition the nodes
    flattened = [node for level in graph.levels() for node in level]
    assert sorted(flattened) == list(range(n))
