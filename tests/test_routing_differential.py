"""Differential tests: our routing vs networkx on random topologies.

The overlay router (scipy Dijkstra + predecessor walks + caches) is the
substrate every virtual link rests on; these tests cross-check it against
an independent implementation (networkx) on randomised meshes, including
after failure-driven recomputation.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.node import Node
from repro.topology.overlay import OverlayLink, OverlayNetwork
from repro.topology.routing import OverlayRouter
from tests.conftest import rv


def random_mesh(seed: int, num_nodes: int = 12, extra_edges: int = 10):
    """A connected random overlay with random delays."""
    rng = random.Random(seed)
    nodes = [Node(i, i, rv(10, 10)) for i in range(num_nodes)]
    pairs = set()
    order = list(range(1, num_nodes))
    rng.shuffle(order)
    previous = 0
    for node in order:  # random spanning tree for connectivity
        pairs.add((min(previous, node), max(previous, node)))
        previous = rng.choice([previous, node])
    while len(pairs) < num_nodes - 1 + extra_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b:
            pairs.add((min(a, b), max(a, b)))
    links = [
        OverlayLink(i, a, b, delay_ms=rng.uniform(1.0, 50.0), loss_rate=0.001,
                    capacity_kbps=10_000.0)
        for i, (a, b) in enumerate(sorted(pairs))
    ]
    return OverlayNetwork(nodes, links)


def to_networkx(network: OverlayNetwork, excluded=frozenset()) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(
        n.node_id for n in network.nodes if n.node_id not in excluded
    )
    for link in network.links:
        if link.node_a in excluded or link.node_b in excluded:
            continue
        graph.add_edge(link.node_a, link.node_b, weight=link.delay_ms)
    return graph


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_distances_match_networkx(seed):
    network = random_mesh(seed)
    router = OverlayRouter(network)
    reference = dict(nx.all_pairs_dijkstra_path_length(to_networkx(network)))
    for a in range(len(network)):
        for b in range(len(network)):
            assert router.delay(a, b) == pytest.approx(reference[a][b])


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_extracted_paths_have_optimal_length(seed):
    """The predecessor-walk path's total delay equals the distance."""
    network = random_mesh(seed)
    router = OverlayRouter(network)
    rng = random.Random(seed)
    for _ in range(10):
        a, b = rng.randrange(len(network)), rng.randrange(len(network))
        path = router.overlay_path(a, b)
        total = sum(network.link(i).delay_ms for i in path)
        assert total == pytest.approx(router.delay(a, b))
        # and the path is actually a walk from a to b
        position = a
        for link_id in path:
            position = network.link(link_id).other_end(position)
        assert position == b


@given(
    st.integers(min_value=0, max_value=300),
    st.sets(st.integers(min_value=0, max_value=20), max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_distances_match_networkx_after_link_failures(seed, down_links):
    """Per-link failures must route exactly like deleting those edges."""
    network = random_mesh(seed)
    router = OverlayRouter(network)
    down_links = {l for l in down_links if l < len(network.links)}
    router.set_down_links(down_links)
    graph = nx.Graph()
    graph.add_nodes_from(n.node_id for n in network.nodes)
    for link in network.links:
        if link.link_id not in down_links:
            graph.add_edge(link.node_a, link.node_b, weight=link.delay_ms)
    reference = dict(nx.all_pairs_dijkstra_path_length(graph))
    for a in range(len(network)):
        for b in range(len(network)):
            if b in reference.get(a, {}):
                assert router.delay(a, b) == pytest.approx(reference[a][b])
                if a != b:
                    path = router.overlay_path(a, b)
                    assert not set(path) & down_links
            else:
                assert not router.reachable(a, b)


@given(
    st.integers(min_value=0, max_value=300),
    st.sets(st.integers(min_value=0, max_value=11), max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_distances_match_networkx_after_failures(seed, down):
    network = random_mesh(seed)
    router = OverlayRouter(network)
    router.set_down_nodes(down)
    reference_graph = to_networkx(network, excluded=frozenset(down))
    reference = dict(nx.all_pairs_dijkstra_path_length(reference_graph))
    for a in range(len(network)):
        for b in range(len(network)):
            if a in down or b in down:
                if a != b:
                    assert not router.reachable(a, b)
                continue
            if b in reference.get(a, {}):
                assert router.delay(a, b) == pytest.approx(reference[a][b])
            else:
                assert not router.reachable(a, b)
