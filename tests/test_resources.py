"""Unit tests for resource vectors and congestion terms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.model.resources import (
    DEFAULT_RESOURCE_SCHEMA,
    ResourceSchema,
    ResourceSpec,
    ResourceVector,
    congestion_terms,
)


def rv(cpu, memory):
    return ResourceVector(DEFAULT_RESOURCE_SCHEMA, [cpu, memory])


class TestResourceSchema:
    def test_default_dimensions(self):
        assert DEFAULT_RESOURCE_SCHEMA.names == ("cpu", "memory")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ResourceSchema([ResourceSpec("cpu"), ResourceSpec("cpu")])

    def test_unknown_dimension(self):
        with pytest.raises(KeyError, match="unknown resource"):
            DEFAULT_RESOURCE_SCHEMA.index_of("gpu")


class TestResourceVector:
    def test_arity_checked(self):
        with pytest.raises(ValueError, match="expected 2"):
            ResourceVector(DEFAULT_RESOURCE_SCHEMA, [1.0])

    def test_add_subtract(self):
        total = rv(3, 10) + rv(2, 5)
        assert total.values == (5.0, 15.0)
        assert (total - rv(1, 1)).values == (4.0, 14.0)

    def test_scaled(self):
        assert rv(2, 10).scaled(0.5).values == (1.0, 5.0)

    def test_named_access(self):
        assert rv(3, 7)["memory"] == 7.0

    def test_negative_intermediate_allowed(self):
        residual = rv(1, 1) - rv(2, 2)
        assert not residual.is_nonnegative()

    def test_covers(self):
        assert rv(10, 100).covers(rv(10, 100))
        assert not rv(10, 100).covers(rv(10.1, 100))

    def test_schema_mismatch(self):
        other = ResourceVector(ResourceSchema([ResourceSpec("cpu")]), [1.0])
        with pytest.raises(ValueError, match="schema mismatch"):
            rv(1, 1) + other

    def test_zero(self):
        assert ResourceVector.zero().values == (0.0, 0.0)

    def test_equality_hash(self):
        assert rv(1, 2) == rv(1, 2)
        assert hash(rv(1, 2)) == hash(rv(1, 2))
        assert rv(1, 2) != rv(2, 1)


class TestCongestionTerms:
    def test_fig4_worked_example(self):
        """The paper's Fig. 4: memory requirements 20/10/40 MB against
        availabilities 50/60 MB contribute 20/50, 10/60, 40/60 — i.e.
        required/available per dimension (with zero-requirement dimensions
        contributing nothing)."""
        schema = ResourceSchema([ResourceSpec("memory")])
        req = lambda m: ResourceVector(schema, [m])
        avail = lambda m: ResourceVector(schema, [m])
        assert congestion_terms(req(20), avail(50)) == (pytest.approx(20 / 50),)
        assert congestion_terms(req(10), avail(60)) == (pytest.approx(10 / 60),)
        assert congestion_terms(req(40), avail(60)) == (pytest.approx(40 / 60),)

    def test_zero_requirement_contributes_zero(self):
        assert congestion_terms(rv(0, 0), rv(0, 100)) == (0.0, 0.0)

    def test_requirement_against_zero_availability_is_inf(self):
        assert congestion_terms(rv(1, 0), rv(0, 10)) == (math.inf, 0.0)

    def test_residual_identity(self):
        """r/(rr + r) with rr = available - required equals r/available."""
        required, available = rv(5, 20), rv(50, 200)
        residual = available - required
        expected = tuple(
            r / (res + r)
            for r, res in zip(required.values, residual.values)
        )
        assert congestion_terms(required, available) == pytest.approx(expected)


positive = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


@given(positive, positive, positive, positive)
def test_congestion_terms_bounded_by_one_when_feasible(r1, r2, extra1, extra2):
    """If availability covers the requirement, each term is in (0, 1]."""
    required = rv(r1, r2)
    available = rv(r1 + extra1, r2 + extra2)
    terms = congestion_terms(required, available)
    assert all(0.0 < t <= 1.0 for t in terms)


@given(positive, positive, positive)
def test_congestion_monotone_in_load(requirement, available, load):
    """Less availability (more load) strictly increases the term."""
    schema = ResourceSchema([ResourceSpec("cpu")])
    req = ResourceVector(schema, [requirement])
    high = ResourceVector(schema, [available + load])
    low = ResourceVector(schema, [available])
    assert congestion_terms(req, low)[0] >= congestion_terms(req, high)[0]
