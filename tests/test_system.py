"""Unit tests for system assembly."""

import pytest

from repro.simulation.system import SystemConfig, build_system
from tests.conftest import build_small_system


class TestBuildSystem:
    def test_component_counts(self, small_system):
        assert len(small_system.network) == 12
        assert len(small_system.registry) >= len(small_system.catalog)

    def test_full_function_coverage(self, small_system):
        covered = small_system.registry.functions_covered()
        assert covered == tuple(range(len(small_system.catalog)))

    def test_deterministic_build(self):
        a = build_small_system(seed=7)
        b = build_small_system(seed=7)
        assert [n.capacity for n in a.network.nodes] == [
            n.capacity for n in b.network.nodes
        ]
        assert [l.endpoints for l in a.network.links] == [
            l.endpoints for l in b.network.links
        ]
        assert [
            (c.component_id, c.node_id, c.function.function_id)
            for c in a.registry.components()
        ] == [
            (c.component_id, c.node_id, c.function.function_id)
            for c in b.registry.components()
        ]

    def test_seed_changes_build(self):
        a = build_small_system(seed=7)
        b = build_small_system(seed=8)
        assert [n.capacity for n in a.network.nodes] != [
            n.capacity for n in b.network.nodes
        ]

    def test_mean_candidates_per_function(self, small_system):
        mean = small_system.mean_candidates_per_function()
        assert mean == len(small_system.registry) / len(small_system.catalog)

    def test_composition_context_wiring(self, small_system):
        context = small_system.composition_context()
        assert context.network is small_system.network
        assert context.registry is small_system.registry
        assert context.allocator is small_system.allocator
        assert context.global_state is small_system.global_state

    def test_config_helpers(self):
        config = SystemConfig(num_nodes=100, seed=1)
        assert config.with_seed(9).seed == 9
        assert config.with_nodes(300).num_nodes == 300
        # originals untouched (frozen dataclass)
        assert config.seed == 1
        assert config.num_nodes == 100

    def test_overlay_connected(self, small_system):
        router = small_system.router
        n = len(small_system.network)
        assert all(router.reachable(0, i) for i in range(n))
