"""Unit tests for the population-scale workload model."""

import math
import random

import pytest

from repro.model.functions import FunctionCatalog
from repro.model.templates import TemplateLibrary
from repro.simulation.population import (
    FAR_FUTURE_S,
    DiurnalCurve,
    PopulationProfile,
    PopulationWorkload,
    TrafficEvent,
    poisson_sample,
)
from repro.simulation.workload import RateSchedule, WorkloadGenerator


@pytest.fixture(scope="module")
def templates():
    return TemplateLibrary(FunctionCatalog(size=20), size=6, seed=2)


def make_inner(templates, seed=0, num_client_routers=100):
    return WorkloadGenerator(
        templates,
        RateSchedule.constant(60.0),
        seed=seed,
        num_client_routers=num_client_routers,
    )


class TestPoissonSample:
    def test_zero_mean(self):
        assert poisson_sample(random.Random(0), 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            poisson_sample(random.Random(0), -1.0)

    @pytest.mark.parametrize("mean", [0.5, 3.0, 12.0, 50.0, 400.0])
    def test_sample_moments(self, mean):
        rng = random.Random(42)
        n = 4000
        samples = [poisson_sample(rng, mean) for _ in range(n)]
        assert all(s >= 0 for s in samples)
        observed_mean = sum(samples) / n
        assert observed_mean == pytest.approx(mean, rel=0.1)
        variance = sum((s - observed_mean) ** 2 for s in samples) / n
        # Poisson: variance == mean (the normal approximation keeps this)
        assert variance == pytest.approx(mean, rel=0.25)

    def test_deterministic_per_stream(self):
        a = [poisson_sample(random.Random(9), 7.5) for _ in range(50)]
        b = [poisson_sample(random.Random(9), 7.5) for _ in range(50)]
        assert a == b


class TestDiurnalCurve:
    def test_interpolates_between_points(self):
        curve = DiurnalCurve(((0.0, 1.0), (100.0, 3.0)), period_s=200.0)
        assert curve.multiplier_at(0.0) == 1.0
        assert curve.multiplier_at(50.0) == pytest.approx(2.0)
        assert curve.multiplier_at(100.0) == 3.0
        # wraps: 100 -> 200 interpolates back toward the first point
        assert curve.multiplier_at(150.0) == pytest.approx(2.0)

    def test_periodic(self):
        curve = DiurnalCurve.day_night()
        for t in (0.0, 3600.0, 50000.0):
            assert curve.multiplier_at(t) == pytest.approx(
                curve.multiplier_at(t + 86400.0)
            )

    def test_phase_before_first_point_wraps(self):
        curve = DiurnalCurve(((100.0, 2.0), (200.0, 4.0)), period_s=300.0)
        # at t=0 we are between the last point (200, 4.0) and the first
        # (100+300, 2.0): 100/200 of the way along
        assert curve.multiplier_at(0.0) == pytest.approx(3.0)

    def test_single_point_is_constant(self):
        curve = DiurnalCurve(((10.0, 1.5),), period_s=100.0)
        for t in (0.0, 10.0, 55.0, 99.0):
            assert curve.multiplier_at(t) == 1.5

    def test_day_night_shape(self):
        curve = DiurnalCurve.day_night(trough=0.2, peak=1.0)
        assert curve.multiplier_at(4.0 * 3600.0) == pytest.approx(0.2)
        assert curve.multiplier_at(15.0 * 3600.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            DiurnalCurve(())
        with pytest.raises(ValueError, match="strictly increasing"):
            DiurnalCurve(((10.0, 1.0), (10.0, 2.0)))
        with pytest.raises(ValueError, match="non-negative"):
            DiurnalCurve(((0.0, -0.5),))
        with pytest.raises(ValueError, match=r"\[0,"):
            DiurnalCurve(((90000.0, 1.0),), period_s=86400.0)


class TestTrafficEvent:
    def test_ramp_plateau_decay(self):
        event = TrafficEvent(
            start_s=100.0, ramp_s=50.0, plateau_s=100.0, decay_s=50.0,
            peak_multiplier=5.0,
        )
        assert event.multiplier_at(0.0) == 1.0
        assert event.multiplier_at(99.9) == 1.0
        assert event.multiplier_at(125.0) == pytest.approx(3.0)  # mid-ramp
        assert event.multiplier_at(150.0) == 5.0
        assert event.multiplier_at(200.0) == 5.0
        assert event.multiplier_at(275.0) == pytest.approx(3.0)  # mid-decay
        assert event.multiplier_at(300.0) == 1.0
        assert event.end_s == 300.0

    def test_factories(self):
        flash = TrafficEvent.flash_crowd(start_s=10.0, peak_multiplier=4.0)
        assert flash.region is None
        spike = TrafficEvent.regional_spike(
            start_s=10.0, peak_multiplier=4.0, region=(0, 50)
        )
        assert spike.region == (0, 50)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            TrafficEvent(0.0, 10.0, 10.0, 10.0, peak_multiplier=0.5)
        with pytest.raises(ValueError, match="positive duration"):
            TrafficEvent(0.0, 0.0, 0.0, 0.0, peak_multiplier=2.0)
        with pytest.raises(ValueError, match="region"):
            TrafficEvent(0.0, 10.0, 10.0, 10.0, 2.0, region=(5, 5))


class TestPopulationProfile:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            PopulationProfile(-1.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            PopulationProfile(10.0, 0.0)
        with pytest.raises(ValueError, match="poisson"):
            PopulationProfile(10.0, 1.0, distribution="zipf")

    def test_scaled(self):
        profile = PopulationProfile(25.0, 2.0)
        assert profile.scaled(10.0).mean_active_users == 250.0
        assert profile.scaled(10.0).requests_per_user_per_min == 2.0
        with pytest.raises(ValueError, match="positive"):
            profile.scaled(0.0)

    def test_mean_rate(self):
        assert PopulationProfile(25.0, 2.0).mean_rate_per_min == 50.0


class TestPopulationWorkload:
    def test_steady_rate_matches_expectation(self, templates):
        profile = PopulationProfile(
            mean_active_users=50.0, requests_per_user_per_min=1.2
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=3)
        now, count = 0.0, 0
        while True:
            now += workload.next_interarrival(now)
            if now > 1200.0:
                break
            count += 1
        # expected 50 users x 1.2 req/min x 20 min = 1200 arrivals
        assert count == pytest.approx(1200, rel=0.15)

    def test_user_counts_memoized_and_in_order(self, templates):
        profile = PopulationProfile(
            mean_active_users=20.0, requests_per_user_per_min=1.0
        )
        a = PopulationWorkload(make_inner(templates), profile, seed=5)
        b = PopulationWorkload(make_inner(templates), profile, seed=5)
        # query out of order on one; the counts must match in-order queries
        assert a.users_in_window(7) == b.users_in_window(7)
        out_of_order = [a.users_in_window(i) for i in (3, 0, 7, 5)]
        in_order = [b.users_in_window(i) for i in (3, 0, 7, 5)]
        assert out_of_order == in_order
        # repeated queries are stable
        assert a.users_in_window(3) == out_of_order[0]

    def test_fixed_distribution(self, templates):
        profile = PopulationProfile(
            mean_active_users=12.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=1)
        assert all(workload.users_in_window(i) == 12 for i in range(10))

    def test_normal_distribution_spread(self, templates):
        profile = PopulationProfile(
            mean_active_users=1000.0,
            requests_per_user_per_min=1.0,
            distribution="normal",
            std_active_users=50.0,
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=1)
        counts = [workload.users_in_window(i) for i in range(200)]
        assert sum(counts) / len(counts) == pytest.approx(1000.0, rel=0.05)
        assert len(set(counts)) > 10  # actually varies

    def test_zero_population_returns_sentinel(self, templates):
        profile = PopulationProfile(
            mean_active_users=0.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=1)
        assert workload.next_interarrival(0.0) == FAR_FUTURE_S

    def test_diurnal_modulates_arrivals(self, templates):
        curve = DiurnalCurve(
            ((60.0, 0.1), (360.0, 2.0)), period_s=600.0
        )
        profile = PopulationProfile(
            mean_active_users=100.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
            diurnal=curve,
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=4)
        now, trough_count, peak_count = 0.0, 0, 0
        while True:
            now += workload.next_interarrival(now)
            if now > 600.0:
                break
            if 30.0 <= now < 90.0:
                trough_count += 1
            elif 330.0 <= now < 390.0:
                peak_count += 1
        assert peak_count > 5 * trough_count

    def test_flash_crowd_surges(self, templates):
        event = TrafficEvent.flash_crowd(
            start_s=200.0, peak_multiplier=8.0,
            ramp_s=20.0, plateau_s=100.0, decay_s=30.0,
        )
        profile = PopulationProfile(
            mean_active_users=60.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
            events=(event,),
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=6)
        now, before, during = 0.0, 0, 0
        while True:
            now += workload.next_interarrival(now)
            if now > 350.0:
                break
            if now < 200.0:
                before += 1
            elif 220.0 <= now < 320.0:
                during += 1
        # plateau rate is 8x the base; windows are 200 s vs 100 s
        assert during > 2.0 * before

    def test_regional_spike_rewrites_client_router(self, templates):
        spike = TrafficEvent.regional_spike(
            start_s=0.0, peak_multiplier=9.0, region=(0, 10),
            ramp_s=1.0, plateau_s=500.0, decay_s=1.0,
        )
        profile = PopulationProfile(
            mean_active_users=100.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
            events=(spike,),
        )
        workload = PopulationWorkload(
            make_inner(templates, num_client_routers=1000), profile, seed=7
        )
        now, regional, total = 10.0, 0, 0
        for _ in range(400):
            now += workload.next_interarrival(now)
            request = workload.make_request(now)
            total += 1
            if request.client_router_id < 10:
                regional += 1
        # at multiplier 9, 8/9 of arrivals are the spike's own traffic;
        # a uniform draw over 1000 routers lands in [0, 10) ~1% of the time
        assert regional / total > 0.6

    def test_region_exceeding_routers_rejected(self, templates):
        spike = TrafficEvent.regional_spike(
            start_s=0.0, peak_multiplier=2.0, region=(0, 500)
        )
        profile = PopulationProfile(
            mean_active_users=10.0,
            requests_per_user_per_min=1.0,
            events=(spike,),
        )
        with pytest.raises(ValueError, match="client routers"):
            PopulationWorkload(
                make_inner(templates, num_client_routers=100), profile, seed=0
            )

    def test_same_seed_replays_byte_identically(self, templates):
        event = TrafficEvent.regional_spike(
            start_s=100.0, peak_multiplier=4.0, region=(0, 20),
            ramp_s=10.0, plateau_s=60.0, decay_s=20.0,
        )
        profile = PopulationProfile(
            mean_active_users=40.0,
            requests_per_user_per_min=1.5,
            diurnal=DiurnalCurve(((0.0, 0.5), (300.0, 1.5)), period_s=600.0),
            events=(event,),
        )

        def run(seed):
            workload = PopulationWorkload(
                make_inner(templates, seed=11), profile, seed=seed
            )
            trace, now = [], 0.0
            for _ in range(300):
                now += workload.next_interarrival(now)
                request = workload.make_request(now)
                trace.append((now, request.request_id, request.client_router_id))
            return trace

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_population_stream_does_not_perturb_inner(self, templates):
        """Attaching a population must not change what the inner generator
        draws for request attributes: same inner seed, same contents."""
        profile = PopulationProfile(
            mean_active_users=30.0, requests_per_user_per_min=2.0
        )
        plain = make_inner(templates, seed=20)
        wrapped_inner = make_inner(templates, seed=20)
        workload = PopulationWorkload(wrapped_inner, profile, seed=99)
        for i in range(50):
            a = plain.make_request(float(i))
            b = workload.make_request(float(i))
            assert a.stream_rate == b.stream_rate
            assert a.duration == b.duration
            assert a.qos_requirement == b.qos_requirement
            assert a.client_router_id == b.client_router_id

    def test_interarrival_walk_terminates_on_long_idle(self, templates):
        """A population that collapses to zero mid-run walks window
        boundaries without drawing and eventually yields the sentinel."""
        curve = DiurnalCurve(((0.0, 0.0),), period_s=600.0)  # always zero
        profile = PopulationProfile(
            mean_active_users=50.0,
            requests_per_user_per_min=1.0,
            distribution="fixed",
            diurnal=curve,
        )
        workload = PopulationWorkload(make_inner(templates), profile, seed=2)
        assert workload.next_interarrival(0.0) == FAR_FUTURE_S


class TestRunnerIntegration:
    def test_spec_population_drives_simulation(self):
        import dataclasses

        from repro.discovery.deployment import DeploymentProfile
        from repro.experiments.config import ExperimentScale, default_spec
        from repro.experiments.runner import run_spec

        scale = ExperimentScale(
            name="pop-tiny",
            num_routers=120,
            duration_s=240.0,
            adaptability_duration_s=240.0,
            sampling_period_s=60.0,
            optimal_max_explored=3000,
        )
        profile = PopulationProfile(
            mean_active_users=20.0, requests_per_user_per_min=1.5
        )
        spec = default_spec(
            scale=scale, num_nodes=40, rate_per_min=30.0, seed=3
        ).with_population(profile)
        spec = dataclasses.replace(
            spec,
            system=dataclasses.replace(
                spec.system,
                deployment=DeploymentProfile(components_per_node=(2, 3)),
            ),
        )
        report = run_spec(spec)
        # ~20 x 1.5 x 4 = 120 expected arrivals
        assert 40 < report.total_requests < 260
        assert len(report.window_samples) == 4
        assert report.peak_open_sessions > 0
        # successful runs must produce setup-latency percentiles
        if report.successes:
            assert report.p50_setup_latency_ms is not None
            assert report.p99_setup_latency_ms >= report.p50_setup_latency_ms
